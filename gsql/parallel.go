package gsql

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"

	"forwarddecay/internal/core"
	"forwarddecay/internal/faultinject"
)

// This file implements the sharded parallel runtime: the paper's two-level
// LFTA/HFTA architecture spread across cores instead of across a cheap
// low-level table and an expensive high-level one. N shard workers each run
// an independent low-level executor over a hash partition of the group
// space; on window close (or heartbeat, or Close) every shard's partial
// aggregates are folded into a single high-level result via the existing
// Aggregator.Merge path and emitted exactly as the serial Run would emit
// them.
//
// Routing hashes the evaluated non-temporal group-by values, so every
// logical group lives on exactly one shard and accumulates its tuples in
// arrival order — the merged output is then bit-identical to the serial
// path, including float aggregates and mergeable sketch UDAFs. Queries with
// no non-temporal group columns (global aggregates, purely temporal
// grouping) are routed round-robin instead; their per-group partials are
// combined with Merge, whose float reassociation may differ from serial
// evaluation in the last ulp (and whose sketch merges carry the documented
// additive error bounds).
//
// The runtime is fault-tolerant: shard workers recover panics (a panicking
// shard never deadlocks the drain barrier), an overload policy can shed
// load instead of blocking the producer, and the whole run checkpoints and
// restores through the same format as the serial Run (see checkpoint.go).

// OverloadPolicy selects what Push does when a shard's work queue is full.
type OverloadPolicy uint8

const (
	// OverloadBlock blocks the producer until the shard catches up
	// (backpressure; the default).
	OverloadBlock OverloadPolicy = iota
	// OverloadDropNewest drops the just-filled batch instead of blocking,
	// counting the shed tuples in RuntimeStats. Results then undercount
	// the dropped tuples — the classic load-shedding trade.
	OverloadDropNewest
)

// PanicPolicy selects how a recovered shard panic affects the run.
type PanicPolicy uint8

const (
	// PanicFail surfaces the panic as an error from the window flush and
	// poisons the run (the default). The drain barrier still completes.
	PanicFail PanicPolicy = iota
	// PanicRestart isolates the failure: the panicked shard's partial
	// window state is dropped and — when a checkpoint was taken in the
	// current window — refilled from that checkpoint, the shard restarts
	// clean for the next window, and the run continues. The panic is
	// reported on Errors() and counted in RuntimeStats; the closed
	// window's results may undercount the shard's post-checkpoint tuples.
	PanicRestart
)

// ParallelOptions configure a sharded parallel run.
type ParallelOptions struct {
	// Shards is the number of shard workers (goroutines); default
	// runtime.GOMAXPROCS(0).
	Shards int
	// BatchSize is the number of tuples shipped to a shard per channel send;
	// default 256.
	BatchSize int
	// BufferedBatches is the per-shard channel capacity in batches; the
	// producer blocks (or sheds, per Overload) once a shard falls this far
	// behind. Default 4.
	BufferedBatches int
	// Overload selects blocking backpressure or drop-newest shedding.
	Overload OverloadPolicy
	// OnPanic selects whether a recovered shard panic fails the run or
	// restarts the shard.
	OnPanic PanicPolicy
	// ErrorBuffer is the capacity of the Errors() channel; default 16.
	// When full, further error reports are dropped (the counters still
	// advance).
	ErrorBuffer int
	// Epoch enables the epoch-rollover supervisor, as Options.Epoch does for
	// the serial Run. Rollovers quiesce the shards: pending batches ship
	// first, then every shard applies the landmark shift at the same point
	// of its tuple sequence before any later tuple is stepped.
	Epoch *EpochConfig
}

// withDefaults resolves zero fields to their defaults.
func (o ParallelOptions) withDefaults() ParallelOptions {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.BufferedBatches <= 0 {
		o.BufferedBatches = 4
	}
	if o.ErrorBuffer <= 0 {
		o.ErrorBuffer = 16
	}
	return o
}

// tupleBatch is one unit of work shipped to a shard: n tuples of fixed
// width, stored flat (recycled via each worker's free list). gvals carries
// the coordinator's already-evaluated group values, one run of len(groupFns)
// Values per tuple: the coordinator evaluates every group expression for
// routing anyway, so shards reuse those bits instead of re-running the
// closures (same closures, same inputs — identical results by construction).
// A nil gvals (a batch from a producer that could not evaluate) makes the
// shard evaluate for itself, as it always used to.
type tupleBatch struct {
	vals  []Value
	gvals []Value
	n     int
}

// shardResult is a shard's reply to a drain request: its accumulated
// partial groups (ownership transfers to the coordinator) and its sticky
// error, if any.
type shardResult struct {
	groups map[string]*group
	err    error
}

// shardSnap is a shard's reply to a snapshot request: its partial groups
// serialized as checkpoint entries, taken without disturbing the shard.
type shardSnap struct {
	entries [][]byte
	err     error
}

// shardMsg is the single message type of a shard's work channel: a tuple
// batch, a snapshot request, a drain request, or an epoch (landmark shift)
// request. FIFO channel order guarantees a snapshot, drain or epoch request
// observes every batch sent before it — the epoch barrier that keeps shard
// rollovers aligned with the serial run's tuple interleaving.
type shardMsg struct {
	batch *tupleBatch
	snap  chan shardSnap
	drain chan shardResult
	epoch *epochReq
}

// epochReq asks a shard to roll every partial group onto a new landmark and
// reply when done (nil, or the first shift error).
type epochReq struct {
	newL  float64
	reply chan error
}

// shardWorker is one low-level executor: it owns a partial-group table keyed
// exactly like the serial high-level table and steps tuples into it.
type shardWorker struct {
	idx    int
	p      *plan
	width  int
	work   chan shardMsg
	free   chan *tupleBatch
	done   chan struct{}
	stats  *runtimeCounters
	report func(error)

	groups map[string]*group
	keyBuf []byte
	gv     Tuple
	args   []Value
	tuples uint64
	err    error

	// curL is the landmark newborn groups must be rebased onto after a
	// rollover (or an epoch-stamped restore); landmarkSet gates the shift so
	// unrolled runs pay nothing. It survives drains and shard restarts: the
	// frame outlives any one window's groups.
	curL        float64
	landmarkSet bool
}

// run is the worker goroutine body. Drain requests are always answered —
// even after a batch panicked — so the coordinator's flush barrier can
// never deadlock on a failed shard.
func (w *shardWorker) run() {
	defer close(w.done)
	for msg := range w.work {
		if b := msg.batch; b != nil {
			w.process(b)
			select {
			case w.free <- b:
			default:
			}
		}
		if msg.snap != nil {
			msg.snap <- w.snapshot()
		}
		if msg.epoch != nil {
			msg.epoch.reply <- w.shift(msg.epoch.newL)
		}
		if msg.drain != nil {
			msg.drain <- shardResult{groups: w.groups, err: w.err}
			// The coordinator now owns the groups and the error; the shard
			// restarts clean for the next window.
			w.groups = make(map[string]*group, 256)
			w.err = nil
		}
	}
}

// process steps one batch into the shard's tables, isolating panics: a
// panicking tuple (bad UDAF, poisoned input) marks the shard failed for
// this window but leaves the worker alive and answering drains.
func (w *shardWorker) process(b *tupleBatch) {
	if w.err != nil {
		return
	}
	defer func() {
		if rec := recover(); rec != nil {
			w.err = &ShardPanicError{Shard: w.idx, Value: rec, Stack: debug.Stack()}
			w.stats.shardPanics.Add(1)
			w.report(w.err)
		}
	}()
	gw := len(w.p.groupFns)
	for i := 0; i < b.n; i++ {
		t := Tuple(b.vals[i*w.width : (i+1)*w.width])
		var gv Tuple
		haveGV := gw == 0
		if b.gvals != nil {
			gv = Tuple(b.gvals[i*gw : (i+1)*gw])
			haveGV = true
		}
		if err := w.step(t, gv, haveGV); err != nil {
			w.err = err
			return
		}
	}
}

// snapshot serializes the shard's partial groups as checkpoint entries.
// Marshal-time panics (a corrupted UDAF) are isolated like step panics.
func (w *shardWorker) snapshot() (out shardSnap) {
	if w.err != nil {
		return shardSnap{err: w.err}
	}
	defer func() {
		if rec := recover(); rec != nil {
			out = shardSnap{err: &ShardPanicError{Shard: w.idx, Value: rec, Stack: debug.Stack()}}
		}
	}()
	entries := make([][]byte, 0, len(w.groups))
	for _, g := range w.groups {
		eb, err := appendGroupEntry(nil, w.p, g)
		if err != nil {
			return shardSnap{err: err}
		}
		entries = append(entries, eb)
	}
	return shardSnap{entries: entries}
}

// shift rolls every partial group onto a new landmark. A failed shard skips
// the shift (its groups are already condemned, and will be discarded or
// surfaced by the drain per the panic policy); a panic mid-shift marks the
// shard failed the same way a stepping panic does, so a partially shifted
// table can never reach the merge.
func (w *shardWorker) shift(newL float64) (err error) {
	// Track the frame even when this shard's window is already condemned:
	// after the failed groups are drained away, replacements must still be
	// born onto the rolled landmark.
	w.curL, w.landmarkSet = newL, true
	if w.err != nil {
		return nil
	}
	defer func() {
		if rec := recover(); rec != nil {
			w.err = &ShardPanicError{Shard: w.idx, Value: rec, Stack: debug.Stack()}
			w.stats.shardPanics.Add(1)
			w.report(w.err)
			err = nil
		}
	}()
	for _, g := range w.groups {
		if e := shiftAggs(g.aggs, newL); e != nil {
			return e
		}
	}
	return nil
}

// step folds one tuple into the shard's partial-group table. It mirrors the
// serial high-level path: same key encoding, same group-value capture, same
// aggregator stepping. When the coordinator shipped the tuple's evaluated
// group values (haveGV) they are used directly; otherwise the shard
// evaluates the group expressions itself.
func (w *shardWorker) step(t Tuple, gv Tuple, haveGV bool) error {
	if err := faultinject.Hit("gsql.shard.step"); err != nil {
		return err
	}
	w.tuples++
	if !haveGV {
		gv = w.gv
		for i, fn := range w.p.groupFns {
			v, err := fn(t)
			if err != nil {
				return err
			}
			gv[i] = v
		}
	}
	w.keyBuf = w.p.keyAppend(w.keyBuf[:0], gv)
	g := w.groups[string(w.keyBuf)]
	if g == nil {
		aggs := newAggs(w.p)
		if w.landmarkSet {
			if err := shiftAggs(aggs, w.curL); err != nil {
				return err
			}
		}
		g = &group{gv: append(Tuple(nil), gv...), aggs: aggs}
		w.groups[string(w.keyBuf)] = g
	}
	var err error
	w.args, err = stepAggs(w.p, g.aggs, t, w.args)
	return err
}

// ckptEntry is one serialized partial group retained by the producer for
// shard restart: the shard that held it and its checkpoint-entry bytes.
type ckptEntry struct {
	shard int
	data  []byte
}

// ParallelRun executes one prepared statement across shard workers: Push
// tuples from a single producer goroutine, then Close. Output rows are
// delivered to the sink — on the producer's goroutine — as time buckets
// close, each bucket's groups in the same deterministic (key-sorted) order
// as the serial Run.
//
// A ParallelRun is single-use. Push, Heartbeat, Checkpoint, RuntimeStats
// and Close must be called from one goroutine; Close must be called to
// release the shard workers. Errors() may be consumed from any goroutine.
type ParallelRun struct {
	p    *plan
	sink func(Tuple) error
	opts ParallelOptions

	workers []*shardWorker
	pending []*tupleBatch // per-shard batch being filled
	width   int
	hasKey  bool // at least one non-temporal group column → hash routing
	rr      int  // round-robin cursor when !hasKey

	bucketSet bool
	bucket    Value

	ep *epochState

	rec    Tuple
	gv     Tuple // scratch evaluated group values, shipped with each tuple
	tuples uint64
	err    error
	closed bool

	// bx is the coordinator's batch-executor scratch (PushBatch), allocated
	// on first use.
	bx *batchExec

	stats runtimeCounters
	errs  chan error

	// gen counts closed windows; a retained checkpoint is only valid for
	// shard restart while its generation matches.
	gen         uint64
	ckptGen     uint64
	ckptEntries []ckptEntry
	hasCkpt     bool
}

// routeSeed starts the group routing hash (shared by Push and restore).
const routeSeed = uint64(0x51_7c_c1_b7_27_22_0a_95)

// StartParallel begins a sharded execution run delivering output rows to
// sink. It fails if any of the statement's aggregates does not support
// partial merging (Statement.Mergeable), since the shard partials could not
// then be combined — the same precondition Gigascope imposes on its
// LFTA/HFTA split.
func (s *Statement) StartParallel(sink func(Tuple) error, opts ParallelOptions) (*ParallelRun, error) {
	pr, err := s.newParallelRun(sink, opts)
	if err != nil {
		return nil, err
	}
	pr.launch()
	return pr, nil
}

// newParallelRun builds the run and its workers without launching the
// worker goroutines, so restore can seed shard state first.
func (s *Statement) newParallelRun(sink func(Tuple) error, opts ParallelOptions) (*ParallelRun, error) {
	if !s.p.mergeable {
		return nil, fmt.Errorf("gsql: query has a non-mergeable aggregate; sharded (LFTA/HFTA) execution requires every aggregate to support merging: %s", s.text)
	}
	o := opts.withDefaults()
	pr := &ParallelRun{
		p:       s.p,
		sink:    sink,
		opts:    o,
		width:   len(s.p.schema.Cols),
		rec:     make(Tuple, len(s.p.groupFns)+len(s.p.aggSpecs)),
		gv:      make(Tuple, len(s.p.groupFns)),
		workers: make([]*shardWorker, o.Shards),
		pending: make([]*tupleBatch, o.Shards),
		errs:    make(chan error, o.ErrorBuffer),
	}
	ep, err := newEpochState(o.Epoch)
	if err != nil {
		return nil, err
	}
	pr.ep = ep
	for i := range s.p.groupFns {
		if i != s.p.temporalIdx {
			pr.hasKey = true
		}
	}
	for i := range pr.workers {
		pr.workers[i] = &shardWorker{
			idx:    i,
			p:      s.p,
			width:  pr.width,
			work:   make(chan shardMsg, o.BufferedBatches),
			free:   make(chan *tupleBatch, o.BufferedBatches+1),
			done:   make(chan struct{}),
			stats:  &pr.stats,
			report: pr.reportErr,
			groups: make(map[string]*group, 256),
			gv:     make(Tuple, len(s.p.groupFns)),
			args:   make([]Value, 0, 4),
		}
	}
	return pr, nil
}

// launch starts the worker goroutines.
func (pr *ParallelRun) launch() {
	for _, w := range pr.workers {
		go w.run()
	}
}

// hashValue mixes one group value into a routing hash. Unlike appendKey this
// needs no buffer: collisions only co-locate two groups on a shard, they
// never conflate them.
func hashValue(seed uint64, v Value) uint64 {
	var payload uint64
	switch v.T {
	case TString:
		payload = core.HashString(v.S)
	case TFloat:
		payload = math.Float64bits(v.F)
	default:
		payload = uint64(v.I)
	}
	return core.Hash2(seed, payload^uint64(v.T)*0x9e3779b97f4a7c15)
}

// routeGroup returns the shard a group with these evaluated group values
// lives on — the same placement Push computes tuple by tuple.
func (pr *ParallelRun) routeGroup(gv Tuple) int {
	if !pr.hasKey {
		shard := pr.rr
		pr.rr++
		if pr.rr == len(pr.workers) {
			pr.rr = 0
		}
		return shard
	}
	h := routeSeed
	for i, v := range gv {
		if i == pr.p.temporalIdx {
			continue
		}
		h = hashValue(h, v)
	}
	return int(h % uint64(len(pr.workers)))
}

// fail records the run's first error and returns it.
func (pr *ParallelRun) fail(err error) error {
	if pr.err == nil {
		pr.err = err
	}
	return err
}

// reportErr publishes an error on the Errors channel without ever
// blocking; when the consumer lags, reports are dropped (counters still
// advance). Safe from any goroutine.
func (pr *ParallelRun) reportErr(err error) {
	select {
	case pr.errs <- err:
	default:
	}
}

// Errors returns the run's asynchronous error channel: recovered shard
// panics (and restart notices) are published here as they happen, in
// addition to surfacing from the next flush under PanicFail. The channel
// is never closed; drain it with non-blocking receives or a goroutine.
func (pr *ParallelRun) Errors() <-chan error { return pr.errs }

// errClosed reports use after Close.
var errClosed = fmt.Errorf("gsql: ParallelRun used after Close")

// Push routes one input tuple to its shard. The tuple's values are copied
// into the outgoing batch, so the caller may reuse the backing slice
// immediately. Tuples carrying NaN or ±Inf floats are rejected with a
// *NonFiniteValueError. Errors raised inside shard workers (expression or
// aggregate failures) surface at the next window flush or at Close.
func (pr *ParallelRun) Push(t Tuple) error {
	if pr.err != nil {
		return pr.err
	}
	if pr.closed {
		return errClosed
	}
	pr.tuples++
	if len(t) != pr.width {
		return pr.fail(fmt.Errorf("gsql: tuple has %d values, schema %s has %d columns", len(t), pr.p.schema.Name, pr.width))
	}
	if err := checkTupleFinite(pr.p.schema, t); err != nil {
		return err
	}
	// As in the serial path, the epoch check precedes stepping so the tuple
	// crossing a period boundary lands in the new frame on every shard.
	if pr.ep != nil {
		if ts, ok := pr.ep.time(t); ok {
			if newL, roll := pr.ep.observe(ts); roll {
				if err := pr.rollTo(newL); err != nil {
					return pr.fail(err)
				}
			}
		}
	}
	return pr.routeTuple(t)
}

// routeTuple is the post-epoch body of Push: WHERE, group evaluation with
// window-close detection, routing, and the shard enqueue. The batch
// executor's scalar replay path calls it directly.
func (pr *ParallelRun) routeTuple(t Tuple) error {
	if pr.p.where != nil {
		ok, err := pr.p.where(t)
		if err != nil {
			return pr.fail(err)
		}
		if !ok.Truthy() {
			return nil
		}
	}

	// Evaluate the group-by expressions: the temporal one drives window
	// close detection (flush points are identical to the serial Run's, so
	// out-of-order inputs group and emit identically), the rest form the
	// routing hash. The evaluated values ship with the tuple so the shard
	// does not evaluate them again.
	h := routeSeed
	gv := pr.gv
	for i, fn := range pr.p.groupFns {
		v, err := fn(t)
		if err != nil {
			return pr.fail(err)
		}
		gv[i] = v
		if i == pr.p.temporalIdx {
			if !pr.bucketSet {
				pr.bucket, pr.bucketSet = v, true
			} else if pr.p.bucketAfter(v, pr.bucket) {
				if err := pr.flushAll(); err != nil {
					return pr.fail(err)
				}
				pr.bucket = v
			}
			continue
		}
		h = hashValue(h, v)
	}
	var shard int
	if pr.hasKey {
		shard = int(h % uint64(len(pr.workers)))
	} else {
		shard = pr.rr
		pr.rr++
		if pr.rr == len(pr.workers) {
			pr.rr = 0
		}
	}
	pr.enqueue(shard, t, gv)
	return nil
}

// enqueue copies t (and its evaluated group values) into the shard's pending
// batch, shipping the batch when full.
func (pr *ParallelRun) enqueue(shard int, t Tuple, gv Tuple) {
	b := pr.pendingFor(shard)
	copy(b.vals[b.n*pr.width:(b.n+1)*pr.width], t)
	if gw := len(pr.p.groupFns); gw > 0 {
		copy(b.gvals[b.n*gw:(b.n+1)*gw], gv)
	}
	b.n++
	pr.shipIfFull(shard)
}

// pendingFor returns the shard's pending batch, reusing one from the
// worker's free list or allocating.
func (pr *ParallelRun) pendingFor(shard int) *tupleBatch {
	b := pr.pending[shard]
	if b == nil {
		select {
		case b = <-pr.workers[shard].free:
			b.n = 0
		default:
			b = &tupleBatch{vals: make([]Value, pr.opts.BatchSize*pr.width)}
			if gw := len(pr.p.groupFns); gw > 0 {
				b.gvals = make([]Value, pr.opts.BatchSize*gw)
			}
		}
		pr.pending[shard] = b
	}
	return b
}

// shipIfFull ships the shard's pending batch once it reaches BatchSize.
// Under OverloadBlock the bounded work channel provides backpressure: a
// shard more than BufferedBatches behind blocks the producer. Under
// OverloadDropNewest a full shard sheds the batch instead, counting the
// dropped tuples.
func (pr *ParallelRun) shipIfFull(shard int) {
	b := pr.pending[shard]
	if b.n < pr.opts.BatchSize {
		return
	}
	pr.pending[shard] = nil
	w := pr.workers[shard]
	if pr.opts.Overload == OverloadDropNewest {
		select {
		case w.work <- shardMsg{batch: b}:
		default:
			pr.stats.batchesShed.Add(1)
			pr.stats.tuplesShed.Add(uint64(b.n))
			select {
			case w.free <- b:
			default:
			}
		}
		return
	}
	w.work <- shardMsg{batch: b}
}

// rollTo performs a coordinated rollover: ship pending batches, send every
// shard an epoch request (a barrier riding the FIFO work channels — each
// shard shifts after exactly the tuples pushed before the roll), await all
// replies, then advance the supervisor. A shift error (an aggregate whose
// decay function cannot shift) poisons the run.
func (pr *ParallelRun) rollTo(newL float64) error {
	// A retained checkpoint serialized state in the old frame; refilling a
	// restarted shard from it after the roll would merge across mismatched
	// landmarks. Invalidate it.
	pr.ckptEntries, pr.hasCkpt = nil, false
	pr.shipPending()
	replies := make([]chan error, len(pr.workers))
	for i, w := range pr.workers {
		replies[i] = make(chan error, 1)
		w.work <- shardMsg{epoch: &epochReq{newL: newL, reply: replies[i]}}
	}
	var firstErr error
	for i := range replies {
		if err := <-replies[i]; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if pr.ep != nil {
		pr.ep.advanced(newL)
	}
	return nil
}

// ShiftLandmark rolls every live aggregate on every shard onto a new
// landmark — the runtime-wide rollover, callable directly in addition to the
// epoch supervisor's automatic rolls.
func (pr *ParallelRun) ShiftLandmark(newL float64) error {
	if pr.err != nil {
		return pr.err
	}
	if pr.closed {
		return errClosed
	}
	if err := pr.rollTo(newL); err != nil {
		return pr.fail(err)
	}
	return nil
}

// shipPending flushes every partially filled batch to its shard
// (blocking: these sends carry window-boundary and checkpoint semantics,
// so they are never shed).
func (pr *ParallelRun) shipPending() {
	for i, b := range pr.pending {
		if b != nil && b.n > 0 {
			pr.workers[i].work <- shardMsg{batch: b}
		}
		pr.pending[i] = nil
	}
}

// flushAll closes the current window: it ships every pending batch, drains
// all shards (a barrier that always completes, panics included), merges
// their partial groups into one high-level table — the HFTA combine, via
// Aggregator.Merge — and emits the result in key-sorted order. Panicked
// shards are handled per the PanicPolicy.
func (pr *ParallelRun) flushAll() error {
	pr.shipPending()
	replies := make([]chan shardResult, len(pr.workers))
	for i, w := range pr.workers {
		replies[i] = make(chan shardResult, 1)
		w.work <- shardMsg{drain: replies[i]}
	}
	results := make([]shardResult, len(pr.workers))
	for i := range replies {
		results[i] = <-replies[i]
	}
	gen := pr.gen
	pr.gen++

	var firstErr error
	high := make(map[string]*group, 256)
	var keyBuf []byte

	// The coordinator-side combine runs UDAF Merge/Final code, so it gets
	// the same panic isolation as the shard workers.
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				err := &ShardPanicError{Shard: -1, Value: rec, Stack: debug.Stack()}
				pr.stats.shardPanics.Add(1)
				pr.reportErr(err)
				if firstErr == nil {
					firstErr = err
				}
			}
		}()
		addGroup := func(key string, g *group) {
			if dst := high[key]; dst == nil {
				high[key] = g
			} else if err := mergeAggs(dst.aggs, g.aggs); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for i, res := range results {
			var pe *ShardPanicError
			if errors.As(res.err, &pe) && pr.opts.OnPanic == PanicRestart {
				// Restart: discard the panicked shard's partial window and
				// refill from the last checkpoint if it was taken in this
				// window — only tuples since the checkpoint are lost.
				pr.stats.shardRestarts.Add(1)
				if pr.hasCkpt && pr.ckptGen == gen {
					for _, en := range pr.ckptEntries {
						if en.shard != i {
							continue
						}
						d := &ckptDec{b: en.data}
						g, err := readGroupEntry(d, pr.p)
						if err != nil {
							if firstErr == nil {
								firstErr = err
							}
							continue
						}
						keyBuf = keyBuf[:0]
						for _, v := range g.gv {
							keyBuf = v.appendKey(keyBuf)
						}
						addGroup(string(keyBuf), g)
					}
				}
				continue
			}
			if res.err != nil && firstErr == nil {
				firstErr = res.err
			}
			for k, g := range res.groups {
				addGroup(k, g)
			}
		}
		if firstErr != nil {
			return
		}
		firstErr = emitGroups(pr.p, high, pr.rec, pr.sink)
	}()
	if firstErr != nil {
		return firstErr
	}
	pr.stats.windowsClosed.Add(1)
	return nil
}

// Checkpoint serializes the run's full state — open window bucket and
// every shard's partial groups — without disturbing execution; pushing may
// continue afterwards. The bytes restore through Statement.Restore (serial)
// or Statement.RestoreParallel at any shard count. The producer also
// retains the checkpoint in decoded form: under PanicRestart, a shard that
// panics later in the same window is refilled from it.
func (pr *ParallelRun) Checkpoint() ([]byte, error) {
	if pr.closed {
		return nil, errClosed
	}
	if pr.err != nil {
		return nil, pr.err
	}
	if err := checkpointable(pr.p); err != nil {
		return nil, err
	}
	pr.shipPending()
	replies := make([]chan shardSnap, len(pr.workers))
	for i, w := range pr.workers {
		replies[i] = make(chan shardSnap, 1)
		w.work <- shardMsg{snap: replies[i]}
	}
	var entries []ckptEntry
	var firstErr error
	for i := range replies {
		res := <-replies[i]
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		for _, eb := range res.entries {
			entries = append(entries, ckptEntry{shard: i, data: eb})
		}
	}
	if firstErr != nil {
		// A failed shard makes the snapshot incomplete; the failure will
		// also surface at the next flush. Do not poison the run here.
		return nil, firstErr
	}
	b := appendCkptHeader(nil, pr.p, pr.bucketSet, pr.bucket, pr.tuples, pr.ep)
	b = ckU64(b, uint64(len(entries)))
	for _, en := range entries {
		b = append(b, en.data...)
	}
	pr.ckptEntries, pr.ckptGen, pr.hasCkpt = entries, pr.gen, true
	pr.stats.checkpoints.Add(1)
	return sealCkpt(b), nil
}

// RestoreParallel resumes a run from a checkpoint taken by Run.Checkpoint
// or ParallelRun.Checkpoint on the same statement, at any shard count:
// partial groups are routed to the shards their future tuples will hash
// to, the open window bucket is reinstated, and pushing the remainder of
// the stream yields the same results as an uninterrupted run (exact for
// the builtin aggregates, within documented error bounds for sketch
// UDAFs). Corrupt input returns an error and never a partial run.
func (s *Statement) RestoreParallel(ckpt []byte, sink func(Tuple) error, opts ParallelOptions) (*ParallelRun, error) {
	body, err := unsealCkpt(ckpt)
	if err != nil {
		return nil, err
	}
	pr, err := s.newParallelRun(sink, opts)
	if err != nil {
		return nil, err
	}
	d := &ckptDec{b: body}
	h, err := readCkptHeader(d, s.p)
	if err != nil {
		return nil, err
	}
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	if min := uint64(len(s.p.groupFns) + 8*len(s.p.aggSpecs)); min > 0 && n > uint64(len(d.b))/min {
		return nil, fmt.Errorf("gsql: checkpoint claims %d groups but only %d bytes remain", n, len(d.b))
	}
	var entries []ckptEntry
	var keyBuf []byte
	for i := uint64(0); i < n; i++ {
		before := d.b
		g, err := readGroupEntry(d, s.p)
		if err != nil {
			return nil, err
		}
		if err := verifyLandmark(g.aggs, h.epochSet, h.landmark); err != nil {
			return nil, err
		}
		raw := before[:len(before)-len(d.b)]
		shard := pr.routeGroup(g.gv)
		w := pr.workers[shard]
		keyBuf = keyBuf[:0]
		for _, v := range g.gv {
			keyBuf = v.appendKey(keyBuf)
		}
		if dst := w.groups[string(keyBuf)]; dst == nil {
			w.groups[string(keyBuf)] = g
		} else if err := mergeAggs(dst.aggs, g.aggs); err != nil {
			return nil, err
		}
		entries = append(entries, ckptEntry{shard: shard, data: raw})
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("gsql: %d trailing bytes in checkpoint", len(d.b))
	}
	pr.bucketSet, pr.bucket, pr.tuples = h.bucketSet, h.bucket, h.tuples
	if h.epochSet {
		for _, w := range pr.workers {
			w.curL, w.landmarkSet = h.landmark, true
		}
		if pr.ep != nil {
			pr.ep.restoreFrom(h.epoch, h.landmark)
		}
	}
	pr.ckptEntries, pr.ckptGen, pr.hasCkpt = entries, 0, true
	pr.stats.restores.Add(1)
	pr.launch()
	return pr, nil
}

// Heartbeat advances the temporal bucket without carrying data, exactly as
// Run.Heartbeat does: closing (and emitting) any buckets older than the one
// containing ts. It is ignored for non-temporal queries.
func (pr *ParallelRun) Heartbeat(ts Value) error {
	if pr.err != nil {
		return pr.err
	}
	if pr.closed {
		return errClosed
	}
	if pr.ep != nil {
		if newL, roll := pr.ep.observe(ts.AsFloat()); roll {
			if err := pr.rollTo(newL); err != nil {
				return pr.fail(err)
			}
		}
	}
	if pr.p.temporalIdx < 0 {
		return nil
	}
	b, err := pr.p.temporalOf(ts)
	if err != nil {
		return pr.fail(err)
	}
	if !pr.bucketSet {
		pr.bucket, pr.bucketSet = b, true
		return nil
	}
	if pr.p.bucketAfter(b, pr.bucket) {
		if err := pr.flushAll(); err != nil {
			return pr.fail(err)
		}
		pr.bucket = b
	}
	return nil
}

// Close flushes the final (still open) bucket and shuts the shard workers
// down. It must be called exactly once; afterwards Push and Heartbeat fail.
func (pr *ParallelRun) Close() error {
	if pr.closed {
		return pr.err
	}
	pr.closed = true
	var flushErr error
	if pr.err == nil {
		flushErr = pr.flushAll()
	}
	for _, w := range pr.workers {
		close(w.work)
	}
	for _, w := range pr.workers {
		<-w.done
	}
	if flushErr != nil {
		return pr.fail(flushErr)
	}
	return pr.err
}

// Shards returns the number of shard workers.
func (pr *ParallelRun) Shards() int { return len(pr.workers) }

// Stats reports the number of tuples pushed (before WHERE filtering), for
// symmetry with Run.Stats.
func (pr *ParallelRun) Stats() (tuples uint64) { return pr.tuples }

// RuntimeStats snapshots the run's fault-tolerance counters. Like Push it
// belongs to the producer goroutine (or any goroutine after Close).
func (pr *ParallelRun) RuntimeStats() RuntimeStats {
	s := pr.stats.snapshot()
	s.TuplesIn = pr.tuples
	if pr.ep != nil {
		s.EpochRollovers = pr.ep.rolls
		s.SentinelTrips = pr.ep.trips
	}
	return s
}

// ExecuteParallel runs the statement over a finite tuple source under the
// sharded runtime, collecting all output rows — the parallel counterpart of
// Execute, for tests and examples. next returns the next tuple and false
// when exhausted.
func (s *Statement) ExecuteParallel(next func() (Tuple, bool), opts ParallelOptions) ([]Tuple, error) {
	var out []Tuple
	pr, err := s.StartParallel(func(row Tuple) error {
		out = append(out, row)
		return nil
	}, opts)
	if err != nil {
		return nil, err
	}
	for {
		t, ok := next()
		if !ok {
			break
		}
		if err := pr.Push(t); err != nil {
			pr.Close()
			return out, err
		}
	}
	if err := pr.Close(); err != nil {
		return out, err
	}
	return out, nil
}
