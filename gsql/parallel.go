package gsql

import (
	"fmt"
	"math"
	"runtime"

	"forwarddecay/internal/core"
)

// This file implements the sharded parallel runtime: the paper's two-level
// LFTA/HFTA architecture spread across cores instead of across a cheap
// low-level table and an expensive high-level one. N shard workers each run
// an independent low-level executor over a hash partition of the group
// space; on window close (or heartbeat, or Close) every shard's partial
// aggregates are folded into a single high-level result via the existing
// Aggregator.Merge path and emitted exactly as the serial Run would emit
// them.
//
// Routing hashes the evaluated non-temporal group-by values, so every
// logical group lives on exactly one shard and accumulates its tuples in
// arrival order — the merged output is then bit-identical to the serial
// path, including float aggregates and mergeable sketch UDAFs. Queries with
// no non-temporal group columns (global aggregates, purely temporal
// grouping) are routed round-robin instead; their per-group partials are
// combined with Merge, whose float reassociation may differ from serial
// evaluation in the last ulp (and whose sketch merges carry the documented
// additive error bounds).

// ParallelOptions configure a sharded parallel run.
type ParallelOptions struct {
	// Shards is the number of shard workers (goroutines); default
	// runtime.GOMAXPROCS(0).
	Shards int
	// BatchSize is the number of tuples shipped to a shard per channel send;
	// default 256.
	BatchSize int
	// BufferedBatches is the per-shard channel capacity in batches; the
	// producer blocks once a shard falls this far behind (backpressure).
	// Default 4.
	BufferedBatches int
}

// withDefaults resolves zero fields to their defaults.
func (o ParallelOptions) withDefaults() ParallelOptions {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.BufferedBatches <= 0 {
		o.BufferedBatches = 4
	}
	return o
}

// tupleBatch is one unit of work shipped to a shard: n tuples of fixed
// width, stored flat so a batch is a single allocation (recycled via each
// worker's free list).
type tupleBatch struct {
	vals []Value
	n    int
}

// shardResult is a shard's reply to a drain request: its accumulated
// partial groups (ownership transfers to the coordinator) and its sticky
// error, if any.
type shardResult struct {
	groups map[string]*group
	tuples uint64
	err    error
}

// shardMsg is the single message type of a shard's work channel: a tuple
// batch, a drain request, or both. FIFO channel order guarantees a drain
// observes every batch sent before it.
type shardMsg struct {
	batch *tupleBatch
	drain chan shardResult
}

// shardWorker is one low-level executor: it owns a partial-group table keyed
// exactly like the serial high-level table and steps tuples into it.
type shardWorker struct {
	p     *plan
	width int
	work  chan shardMsg
	free  chan *tupleBatch
	done  chan struct{}

	groups map[string]*group
	keyBuf []byte
	gv     Tuple
	args   []Value
	tuples uint64
	err    error
}

// run is the worker goroutine body.
func (w *shardWorker) run() {
	defer close(w.done)
	for msg := range w.work {
		if b := msg.batch; b != nil {
			if w.err == nil {
				for i := 0; i < b.n; i++ {
					t := Tuple(b.vals[i*w.width : (i+1)*w.width])
					if err := w.step(t); err != nil {
						w.err = err
						break
					}
				}
			}
			select {
			case w.free <- b:
			default:
			}
		}
		if msg.drain != nil {
			msg.drain <- shardResult{groups: w.groups, tuples: w.tuples, err: w.err}
			w.groups = make(map[string]*group, 256)
		}
	}
}

// step folds one tuple into the shard's partial-group table. It mirrors the
// serial high-level path: same key encoding, same group-value capture, same
// aggregator stepping.
func (w *shardWorker) step(t Tuple) error {
	w.tuples++
	w.keyBuf = w.keyBuf[:0]
	for i, fn := range w.p.groupFns {
		v, err := fn(t)
		if err != nil {
			return err
		}
		w.gv[i] = v
		w.keyBuf = v.appendKey(w.keyBuf)
	}
	g := w.groups[string(w.keyBuf)]
	if g == nil {
		g = &group{gv: append(Tuple(nil), w.gv...), aggs: newAggs(w.p)}
		w.groups[string(w.keyBuf)] = g
	}
	var err error
	w.args, err = stepAggs(w.p, g.aggs, t, w.args)
	return err
}

// ParallelRun executes one prepared statement across shard workers: Push
// tuples from a single producer goroutine, then Close. Output rows are
// delivered to the sink — on the producer's goroutine — as time buckets
// close, each bucket's groups in the same deterministic (key-sorted) order
// as the serial Run.
//
// A ParallelRun is single-use. Push, Heartbeat and Close must be called from
// one goroutine; Close must be called to release the shard workers.
type ParallelRun struct {
	p    *plan
	sink func(Tuple) error
	opts ParallelOptions

	workers []*shardWorker
	pending []*tupleBatch // per-shard batch being filled
	width   int
	hasKey  bool // at least one non-temporal group column → hash routing
	rr      int  // round-robin cursor when !hasKey

	bucketSet bool
	bucket    Value

	rec    Tuple
	tuples uint64
	err    error
	closed bool
}

// StartParallel begins a sharded execution run delivering output rows to
// sink. It fails if any of the statement's aggregates does not support
// partial merging (Statement.Mergeable), since the shard partials could not
// then be combined — the same precondition Gigascope imposes on its
// LFTA/HFTA split.
func (s *Statement) StartParallel(sink func(Tuple) error, opts ParallelOptions) (*ParallelRun, error) {
	if !s.p.mergeable {
		return nil, fmt.Errorf("gsql: query has a non-mergeable aggregate; sharded (LFTA/HFTA) execution requires every aggregate to support merging: %s", s.text)
	}
	o := opts.withDefaults()
	pr := &ParallelRun{
		p:       s.p,
		sink:    sink,
		opts:    o,
		width:   len(s.p.schema.Cols),
		rec:     make(Tuple, len(s.p.groupFns)+len(s.p.aggSpecs)),
		workers: make([]*shardWorker, o.Shards),
		pending: make([]*tupleBatch, o.Shards),
	}
	for i := range s.p.groupFns {
		if i != s.p.temporalIdx {
			pr.hasKey = true
		}
	}
	for i := range pr.workers {
		w := &shardWorker{
			p:      s.p,
			width:  pr.width,
			work:   make(chan shardMsg, o.BufferedBatches),
			free:   make(chan *tupleBatch, o.BufferedBatches+1),
			done:   make(chan struct{}),
			groups: make(map[string]*group, 256),
			gv:     make(Tuple, len(s.p.groupFns)),
			args:   make([]Value, 0, 4),
		}
		pr.workers[i] = w
		go w.run()
	}
	return pr, nil
}

// hashValue mixes one group value into a routing hash. Unlike appendKey this
// needs no buffer: collisions only co-locate two groups on a shard, they
// never conflate them.
func hashValue(seed uint64, v Value) uint64 {
	var payload uint64
	switch v.T {
	case TString:
		payload = core.HashString(v.S)
	case TFloat:
		payload = math.Float64bits(v.F)
	default:
		payload = uint64(v.I)
	}
	return core.Hash2(seed, payload^uint64(v.T)*0x9e3779b97f4a7c15)
}

// fail records the run's first error and returns it.
func (pr *ParallelRun) fail(err error) error {
	if pr.err == nil {
		pr.err = err
	}
	return err
}

// errClosed reports use after Close.
var errClosed = fmt.Errorf("gsql: ParallelRun used after Close")

// Push routes one input tuple to its shard. The tuple's values are copied
// into the outgoing batch, so the caller may reuse the backing slice
// immediately. Errors raised inside shard workers (expression or aggregate
// failures) surface at the next window flush or at Close.
func (pr *ParallelRun) Push(t Tuple) error {
	if pr.err != nil {
		return pr.err
	}
	if pr.closed {
		return errClosed
	}
	pr.tuples++
	if len(t) != pr.width {
		return pr.fail(fmt.Errorf("gsql: tuple has %d values, schema %s has %d columns", len(t), pr.p.schema.Name, pr.width))
	}
	if pr.p.where != nil {
		ok, err := pr.p.where(t)
		if err != nil {
			return pr.fail(err)
		}
		if !ok.Truthy() {
			return nil
		}
	}

	// Evaluate the group-by expressions: the temporal one drives window
	// close detection (flush points are identical to the serial Run's, so
	// out-of-order inputs group and emit identically), the rest form the
	// routing hash.
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for i, fn := range pr.p.groupFns {
		v, err := fn(t)
		if err != nil {
			return pr.fail(err)
		}
		if i == pr.p.temporalIdx {
			if !pr.bucketSet {
				pr.bucket, pr.bucketSet = v, true
			} else if c, _ := compare(v, pr.bucket); c > 0 {
				if err := pr.flushAll(); err != nil {
					return pr.fail(err)
				}
				pr.bucket = v
			}
			continue
		}
		h = hashValue(h, v)
	}
	var shard int
	if pr.hasKey {
		shard = int(h % uint64(len(pr.workers)))
	} else {
		shard = pr.rr
		pr.rr++
		if pr.rr == len(pr.workers) {
			pr.rr = 0
		}
	}
	pr.enqueue(shard, t)
	return nil
}

// enqueue copies t into the shard's pending batch, shipping the batch when
// full. The bounded work channel provides backpressure: a shard more than
// BufferedBatches behind blocks the producer.
func (pr *ParallelRun) enqueue(shard int, t Tuple) {
	b := pr.pending[shard]
	if b == nil {
		select {
		case b = <-pr.workers[shard].free:
			b.n = 0
		default:
			b = &tupleBatch{vals: make([]Value, pr.opts.BatchSize*pr.width)}
		}
		pr.pending[shard] = b
	}
	copy(b.vals[b.n*pr.width:(b.n+1)*pr.width], t)
	b.n++
	if b.n == pr.opts.BatchSize {
		pr.workers[shard].work <- shardMsg{batch: b}
		pr.pending[shard] = nil
	}
}

// flushAll closes the current window: it ships every pending batch, drains
// all shards (a barrier), merges their partial groups into one high-level
// table — the HFTA combine, via Aggregator.Merge — and emits the result in
// key-sorted order.
func (pr *ParallelRun) flushAll() error {
	for i, b := range pr.pending {
		if b != nil && b.n > 0 {
			pr.workers[i].work <- shardMsg{batch: b}
		}
		pr.pending[i] = nil
	}
	replies := make([]chan shardResult, len(pr.workers))
	for i, w := range pr.workers {
		replies[i] = make(chan shardResult, 1)
		w.work <- shardMsg{drain: replies[i]}
	}
	var firstErr error
	high := make(map[string]*group, 256)
	for _, ch := range replies {
		res := <-ch
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		for k, g := range res.groups {
			if dst := high[k]; dst == nil {
				high[k] = g
			} else if err := mergeAggs(dst.aggs, g.aggs); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return emitGroups(pr.p, high, pr.rec, pr.sink)
}

// Heartbeat advances the temporal bucket without carrying data, exactly as
// Run.Heartbeat does: closing (and emitting) any buckets older than the one
// containing ts. It is ignored for non-temporal queries.
func (pr *ParallelRun) Heartbeat(ts Value) error {
	if pr.err != nil {
		return pr.err
	}
	if pr.closed {
		return errClosed
	}
	if pr.p.temporalIdx < 0 {
		return nil
	}
	b, err := pr.p.temporalOf(ts)
	if err != nil {
		return pr.fail(err)
	}
	if !pr.bucketSet {
		pr.bucket, pr.bucketSet = b, true
		return nil
	}
	if c, _ := compare(b, pr.bucket); c > 0 {
		if err := pr.flushAll(); err != nil {
			return pr.fail(err)
		}
		pr.bucket = b
	}
	return nil
}

// Close flushes the final (still open) bucket and shuts the shard workers
// down. It must be called exactly once; afterwards Push and Heartbeat fail.
func (pr *ParallelRun) Close() error {
	if pr.closed {
		return pr.err
	}
	pr.closed = true
	var flushErr error
	if pr.err == nil {
		flushErr = pr.flushAll()
	}
	for _, w := range pr.workers {
		close(w.work)
	}
	for _, w := range pr.workers {
		<-w.done
	}
	if flushErr != nil {
		return pr.fail(flushErr)
	}
	return pr.err
}

// Shards returns the number of shard workers.
func (pr *ParallelRun) Shards() int { return len(pr.workers) }

// Stats reports the number of tuples pushed (before WHERE filtering), for
// symmetry with Run.Stats.
func (pr *ParallelRun) Stats() (tuples uint64) { return pr.tuples }

// ExecuteParallel runs the statement over a finite tuple source under the
// sharded runtime, collecting all output rows — the parallel counterpart of
// Execute, for tests and examples. next returns the next tuple and false
// when exhausted.
func (s *Statement) ExecuteParallel(next func() (Tuple, bool), opts ParallelOptions) ([]Tuple, error) {
	var out []Tuple
	pr, err := s.StartParallel(func(row Tuple) error {
		out = append(out, row)
		return nil
	}, opts)
	if err != nil {
		return nil, err
	}
	for {
		t, ok := next()
		if !ok {
			break
		}
		if err := pr.Push(t); err != nil {
			pr.Close()
			return out, err
		}
	}
	if err := pr.Close(); err != nil {
		return out, err
	}
	return out, nil
}
