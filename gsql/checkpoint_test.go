package gsql_test

import (
	"strings"
	"testing"

	"forwarddecay/gsql"
	"forwarddecay/internal/faultinject"
	"forwarddecay/sketch"
)

// ckptQueryExact uses only order-insensitive aggregates (count, integer
// sum, min, max), so results are bit-identical regardless of how partial
// states were split and re-merged across a checkpoint boundary.
const ckptQueryExact = `select tb, dstIP, count(*), sum(len), min(len), max(len)
  from TCP group by time/60 as tb, dstIP`

// ckptQueryFloat adds float accumulation (avg, weighted float sum) whose
// value may depend on merge association; the keyed parallel path still
// reproduces it bit-identically because every group lives on one shard.
const ckptQueryFloat = `select tb, dstIP, count(*), avg(float(len)),
  sum(float(len)*(time % 60)*(time % 60))/3600
  from TCP group by time/60 as tb, dstIP`

// killRecoverSerial runs the statement serially, checkpoints after
// tuples[:cut], abandons the run (simulating a crash — rows emitted after
// the checkpoint are discarded, exactly what a restarted consumer would
// see), restores, and replays the remainder. Returns the combined rows.
func killRecoverSerial(t *testing.T, st *gsql.Statement, tuples []gsql.Tuple, cut int, opts gsql.Options) []gsql.Tuple {
	t.Helper()
	var rows []gsql.Tuple
	run := st.Start(func(row gsql.Tuple) error { rows = append(rows, row); return nil }, opts)
	for _, tp := range tuples[:cut] {
		if err := run.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := run.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	mark := len(rows)
	// Simulate the crash: keep pushing into the doomed run (its output past
	// the checkpoint is discarded), then throw it away without Close.
	for _, tp := range tuples[cut:min(cut+100, len(tuples))] {
		if err := run.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	rows = rows[:mark]

	restored, err := gsql.RestoreStatement(st, ckpt, func(row gsql.Tuple) error { rows = append(rows, row); return nil }, opts)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, tp := range tuples[cut:] {
		if err := restored.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestCheckpointRestoreSerial: a kill-and-recover cycle through the serial
// runtime reproduces the uninterrupted run's output — bit-identically for
// the order-insensitive aggregates, in both the two-level and flat
// configurations, at checkpoint cuts inside and at the edges of windows.
func TestCheckpointRestoreSerial(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(ckptQueryExact)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(12_000, 0, 7)
	for _, opts := range []gsql.Options{{}, {DisableTwoLevel: true}} {
		want := serialRows(t, st, tuples, opts)
		if len(want) == 0 {
			t.Fatal("workload produced no rows")
		}
		for _, cut := range []int{1, 500, 6_000, len(tuples) - 1} {
			got := killRecoverSerial(t, st, tuples, cut, opts)
			requireIdentical(t, want, got, "serial kill/recover")
		}
	}
}

// TestCheckpointRestoreSerialFloatFlat: with the two-level split disabled
// each group has exactly one partial, so restore performs no re-merging and
// even float aggregates come back bit-identical across the kill.
func TestCheckpointRestoreSerialFloatFlat(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(ckptQueryFloat)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(10_000, 0, 13)
	opts := gsql.Options{DisableTwoLevel: true}
	want := serialRows(t, st, tuples, opts)
	got := killRecoverSerial(t, st, tuples, 4_321, opts)
	requireIdentical(t, want, got, "serial float kill/recover")
}

// killRecoverParallel is killRecoverSerial through the sharded runtime,
// restoring at a (possibly different) shard count.
func killRecoverParallel(t *testing.T, st *gsql.Statement, tuples []gsql.Tuple, cut int, shards, restoreShards int) []gsql.Tuple {
	t.Helper()
	var rows []gsql.Tuple
	pr, err := st.StartParallel(func(row gsql.Tuple) error { rows = append(rows, row); return nil },
		gsql.ParallelOptions{Shards: shards, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples[:cut] {
		if err := pr.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := pr.Checkpoint()
	if err != nil {
		t.Fatalf("parallel checkpoint: %v", err)
	}
	mark := len(rows)
	for _, tp := range tuples[cut:min(cut+100, len(tuples))] {
		if err := pr.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := pr.Close(); err != nil { // release the doomed run's workers
		t.Fatal(err)
	}
	rows = rows[:mark]

	restored, err := st.RestoreParallel(ckpt, func(row gsql.Tuple) error { rows = append(rows, row); return nil },
		gsql.ParallelOptions{Shards: restoreShards, BatchSize: 16})
	if err != nil {
		t.Fatalf("parallel restore: %v", err)
	}
	for _, tp := range tuples[cut:] {
		if err := restored.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestCheckpointRestoreParallel: kill-and-recover through the sharded
// runtime, including restores at a different shard count than the
// checkpointing run. A keyed query keeps every group on one shard, so even
// the float aggregates reproduce bit-identically.
func TestCheckpointRestoreParallel(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(ckptQueryFloat)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(12_000, 0, 17)
	want := serialRows(t, st, tuples, gsql.Options{DisableTwoLevel: true})
	for _, shape := range []struct{ run, restore int }{{4, 4}, {4, 2}, {2, 7}, {3, 1}} {
		got := killRecoverParallel(t, st, tuples, 5_000, shape.run, shape.restore)
		requireIdentical(t, want, got, "parallel kill/recover")
	}
}

// TestCheckpointCrossRuntime: a checkpoint taken by the serial runtime
// restores into the sharded runtime and vice versa — the format is
// runtime-independent, as the partial states are (§VI-B mergeability).
func TestCheckpointCrossRuntime(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(ckptQueryExact)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(10_000, 0, 29)
	want := serialRows(t, st, tuples, gsql.Options{})
	cut := 4_000

	// Serial first half → parallel second half.
	var rows []gsql.Tuple
	run := st.Start(func(row gsql.Tuple) error { rows = append(rows, row); return nil }, gsql.Options{})
	for _, tp := range tuples[:cut] {
		if err := run.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := run.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := st.RestoreParallel(ckpt, func(row gsql.Tuple) error { rows = append(rows, row); return nil },
		gsql.ParallelOptions{Shards: 3, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples[cut:] {
		if err := pr.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, rows, "serial→parallel")

	// Parallel first half → serial second half.
	rows = nil
	pr2, err := st.StartParallel(func(row gsql.Tuple) error { rows = append(rows, row); return nil },
		gsql.ParallelOptions{Shards: 4, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples[:cut] {
		if err := pr2.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ckpt2, err := pr2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := pr2.Close(); err != nil {
		t.Fatal(err)
	}
	rows = nil
	run2, err := st.Restore(ckpt2, func(row gsql.Tuple) error { rows = append(rows, row); return nil }, gsql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples[cut:] {
		if err := run2.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := run2.Close(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, rows, "parallel→serial")
}

// TestCheckpointUDAF: mergeable sketch UDAFs ride through checkpoint and
// restore via their own binary encodings; restored state is bit-identical
// to saved state, so the resumed run's answers match the uninterrupted run
// exactly here (same sketch state, same inputs).
func TestCheckpointUDAF(t *testing.T) {
	e := parallelEngine(t)
	registerCkptUDAFs(t, e)
	st, err := e.Prepare(`select tb, proto, sshhtop(dstIP, 1.0) from TCP group by time/60 as tb, proto`)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpointable(); err != nil {
		t.Fatalf("sketch UDAF not checkpointable: %v", err)
	}
	tuples := trace(8_000, 0, 37)
	want := serialRows(t, st, tuples, gsql.Options{DisableTwoLevel: true})
	got := killRecoverSerial(t, st, tuples, 3_500, gsql.Options{DisableTwoLevel: true})
	requireIdentical(t, want, got, "UDAF kill/recover")
}

// TestCheckpointableRejectsUnsupported: a statement with an aggregate that
// lacks the binary marshaling pair reports it by name, and Checkpoint
// fails rather than writing a partial state.
func TestCheckpointableRejectsUnsupported(t *testing.T) {
	e := parallelEngine(t)
	if err := e.RegisterUDAF(gsql.AggSpec{
		Name: "opaque", MinArgs: 1, MaxArgs: 1, Mergeable: true,
		New: func() gsql.Aggregator { return &opaqueAgg{} },
	}); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`select tb, opaque(len) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpointable(); err == nil {
		t.Fatal("Checkpointable accepted an unmarshalable aggregate")
	} else if !strings.Contains(err.Error(), "opaque") {
		t.Fatalf("error does not name the aggregate: %v", err)
	}
	run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
	if _, err := run.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded for an unmarshalable aggregate")
	}
}

// opaqueAgg is mergeable but deliberately not binary-marshalable.
type opaqueAgg struct{ n int64 }

func (a *opaqueAgg) Step(args []gsql.Value) error { a.n++; return nil }
func (a *opaqueAgg) Final() gsql.Value            { return gsql.Int(a.n) }
func (a *opaqueAgg) Merge(o gsql.Aggregator) error {
	a.n += o.(*opaqueAgg).n
	return nil
}

// TestRestoreRejectsWrongStatement: a checkpoint can only be restored into
// the statement (query text + schema) that wrote it.
func TestRestoreRejectsWrongStatement(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(ckptQueryExact)
	if err != nil {
		t.Fatal(err)
	}
	other, err := e.Prepare(`select tb, count(*) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
	for _, tp := range trace(500, 0, 3) {
		if err := run.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := run.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Restore(ckpt, func(gsql.Tuple) error { return nil }, gsql.Options{}); err == nil {
		t.Fatal("checkpoint restored into a different statement")
	} else if !strings.Contains(err.Error(), "different statement") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestCorruptCheckpointAlwaysErrors: flipping any single byte of a valid
// checkpoint — or truncating it anywhere — must make restore return an
// error, never panic and never silently succeed. The trailing integrity
// hash is what makes this total: payload bytes carry no internal
// redundancy of their own.
func TestCorruptCheckpointAlwaysErrors(t *testing.T) {
	e := parallelEngine(t)
	registerCkptUDAFs(t, e)
	st, err := e.Prepare(`select tb, dstIP, count(*), sum(len), avg(float(len)), sshhtop(srcIP, 1.0)
	  from TCP group by time/60 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
	for _, tp := range trace(2_000, 0, 5) {
		if err := run.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := run.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sink := func(gsql.Tuple) error { return nil }

	// The pristine bytes restore.
	if _, err := st.Restore(ckpt, sink, gsql.Options{}); err != nil {
		t.Fatalf("pristine checkpoint failed to restore: %v", err)
	}

	// Single-byte corruption at seeded positions (CorruptByte spreads the
	// positions across the whole blob, including the hash itself).
	for seed := uint64(0); seed < 500; seed++ {
		bad := faultinject.CorruptByte(ckpt, seed)
		if _, err := st.Restore(bad, sink, gsql.Options{}); err == nil {
			t.Fatalf("corrupt checkpoint (seed %d) restored without error", seed)
		}
		if _, err := st.RestoreParallel(bad, sink, gsql.ParallelOptions{Shards: 2}); err == nil {
			t.Fatalf("corrupt checkpoint (seed %d) parallel-restored without error", seed)
		}
	}

	// Every truncation fails too.
	for cut := 0; cut < len(ckpt); cut += 7 {
		if _, err := st.Restore(ckpt[:cut], sink, gsql.Options{}); err == nil {
			t.Fatalf("truncated checkpoint (%d bytes) restored without error", cut)
		}
	}
}

// ssTopCkptAgg is a checkpointable SpaceSaving UDAF: weighted updates,
// top-key result, and binary marshaling delegated to the sketch's own
// encoding — the pattern the udaf package uses for sshh.
type ssTopCkptAgg struct{ ss *sketch.SpaceSaving }

func (a *ssTopCkptAgg) Step(args []gsql.Value) error {
	a.ss.Update(uint64(args[0].AsInt()), args[1].AsFloat())
	return nil
}

func (a *ssTopCkptAgg) Final() gsql.Value {
	top := a.ss.Top(1)
	if len(top) == 0 {
		return gsql.Null
	}
	return gsql.Int(int64(top[0].Key))
}

func (a *ssTopCkptAgg) Merge(o gsql.Aggregator) error {
	a.ss.Merge(o.(*ssTopCkptAgg).ss)
	return nil
}

func (a *ssTopCkptAgg) MarshalBinary() ([]byte, error) { return a.ss.MarshalBinary() }
func (a *ssTopCkptAgg) UnmarshalBinary(b []byte) error { return a.ss.UnmarshalBinary(b) }

// registerCkptUDAFs installs the checkpointable sketch UDAF used by the
// checkpoint tests.
func registerCkptUDAFs(t *testing.T, e *gsql.Engine) {
	t.Helper()
	if err := e.RegisterUDAF(gsql.AggSpec{
		Name: "sshhtop", MinArgs: 2, MaxArgs: 2, Mergeable: true,
		New: func() gsql.Aggregator { return &ssTopCkptAgg{ss: sketch.NewSpaceSavingK(64)} },
	}); err != nil {
		t.Fatal(err)
	}
}
