package gsql

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"forwarddecay/gsql/analyzer"
)

// Multi-query runtime: one pass over the stream for many standing queries.
//
// A MultiRun registers any number of prepared statements against a single
// ingest feed and evaluates the shared parts of their plans once per tuple
// (once per batch segment in the columnar path) instead of once per query:
//
//   - Plan-time CSE: every non-trivial tuple-level subexpression (WHERE,
//     group-by, aggregate arguments) is hash-consed by its canonical AST
//     string into a shared slot. Two queries writing the same subexpression
//     — in any formatting — compile to the same slot, and the slot's value
//     is computed once per tuple and memoized for every later reader.
//   - Predicate classes: queries are grouped by canonical WHERE clause. The
//     class predicate runs once per tuple; when it rejects, every member is
//     skipped in one branch. In the batch path the class evaluates its
//     filter as one vectorized selection bitmap shared by all members, and
//     a segment with no surviving rows skips the members outright.
//   - Statement dedup: attaching the same query text twice shares one
//     compiled plan (see analyzer.Catalog); each attach still owns an
//     independent Run, so results, cursors and checkpoints stay per-query.
//
// The per-tuple cost of N queries over a shared-heavy workload is therefore
// one shared pass plus the per-query fold of only the queries whose filter
// passes — the Gigascope observation that a thousand LFTAs over one NIC
// should cost one scan, applied at the expression level.
//
// Catalog-scale operations (attach/detach churn, hostile queries):
//
//   - Incremental rebuild: every attach and detach updates predicate
//     classes, shared-slot refcounts and the analyzer's interner in place —
//     membership lists use swap-remove via stored positions, slot retains
//     are recorded per compiled artifact and released when its last
//     reference drops — so attach/detach latency is O(query), independent
//     of the catalog size.
//   - Fault isolation (Options.Isolate): a query whose private expressions
//     panic, whose error rate trips a per-query breaker, or whose group
//     table exceeds a cardinality cap is fenced into a Quarantined state.
//     Its shared slots and class membership are released and its last
//     checkpoint retained for an operator-initiated Revive; every other
//     query continues bit-for-bit as if the offender were never attached.
//   - Admission control (Options.Isolate.AdmitBudget): Attach estimates the
//     per-tuple cost of the candidate's private (non-shared) expressions
//     against a catalog-wide budget and rejects with a typed
//     *AdmissionError before touching any catalog state.
//
// Sharing safety invariants (the reasons the memo is correct):
//
//   - Single producer. A MultiRun, like a Run, is driven by one goroutine;
//     the memo generation counter and slot values are unsynchronized.
//   - Sharded members evaluate WHERE and group expressions on the producer
//     goroutine (the ParallelRun coordinator) so those share slots, but
//     their aggregate arguments run on shard workers — those are compiled
//     without the hook (planHooks.plainArgs).
//   - The memo is only live during the shared scalar pass (m.share). The
//     per-query scalar replay of a batch segment and the per-query solo
//     pushes of crash-recovery replay evaluate slots plainly, which is
//     always correct, just unshared.
//   - Slots are value-transparent: a slot evaluator produces exactly what
//     structural compilation of the subtree would, errors included. The
//     memo stores the error too, so every member of a tuple observes the
//     same failure the first evaluator hit.
//   - Epoch rollovers are runtime-wide: one shared supervisor observes the
//     stream clock once per tuple and shifts every member's landmark at the
//     same point of the sequence, so decay state never straddles landmarks
//     across members (sharded members run their own supervisor over the
//     same configuration, which rolls at the same stream times).
type MultiRun struct {
	eng    *Engine
	schema *Schema
	opts   Options
	iso    *IsolateConfig // normalized copy of opts.Isolate; nil = legacy

	// Plan-time identity: expression interner and per-mode statement
	// catalogs (serial and sharded plans compile differently, so the same
	// text maps to different artifacts per mode).
	in   *analyzer.Interner
	scat *analyzer.Catalog // serial statements by exact text
	pcat *analyzer.Catalog // sharded statements by exact text
	env  *compileEnv       // slot compiler; env.shared is self-referential

	// Shared slot table, indexed by interner slot id. A nil entry is a slot
	// whose compilation is in flight or failed; the hook declines those and
	// structural compilation takes over (reproducing the compile error).
	slots []*sharedSlot

	// recording, when non-nil, collects the slot ids retained by the shared
	// hook during one compile scope; the scope owner stores the list with
	// the compiled artifact and releases it with the artifact.
	recording *[]int

	// Memo protocol: gen advances once per shared tuple and never moves
	// backwards (a reset could collide with a stale slot generation); share
	// gates memoization so unshared evaluation paths need no generation
	// discipline at all.
	gen   uint64
	share bool

	memoHits, memoMisses uint64

	classes    []*predClass
	classByKey map[string]*predClass
	parallel   []*multiEntry // sharded members; order changes under churn

	entries map[uint64]*multiEntry
	nextID  uint64

	// admitUsed is the summed private-cost estimate of every admitted query
	// (quarantined ones excluded), checked against iso.AdmitBudget.
	admitUsed float64

	// tuples is the shared feed position: every attached member has seen
	// every tuple since its attach point. Per-run counters are derived
	// lazily (r.tuples = m.tuples + entry offset) at checkpoint and stats
	// time, so the hot path pays one increment for N queries.
	tuples uint64

	ep          *epochState
	curL        float64
	landmarkSet bool

	// Batch scratch: the finite bitmap, epoch segmentation state, a solo
	// selection bitmap for per-query replay, and a row buffer for scalar
	// class fallback.
	valid   []uint64
	soloSel []uint64
	mbx     *batchExec
	row     Tuple
}

// IsolateConfig tunes per-query fault isolation and admission control in a
// MultiRun. The zero value of each field selects a sane default where one
// exists; a nil *IsolateConfig in Options disables isolation entirely.
type IsolateConfig struct {
	// BreakerErrors quarantines a query after this many consecutive
	// failed folds (its private expressions, aggregate steps or sink
	// erroring tuple after tuple). 0 disables the breaker; transient
	// errors then only count toward QueryStats.Errors.
	BreakerErrors int
	// MaxGroups quarantines a serial query whose live group population
	// (current bucket) exceeds the cap — the group-key cardinality bomb.
	// 0 disables the cap. Sharded members are not capped: their group
	// state lives on shard workers where counting it would need a barrier.
	MaxGroups int
	// AdmitBudget is the catalog-wide budget for estimated private-
	// expression cost, in estimated ns/tuple (the same unit QueryStats
	// reports). Attach rejects with *AdmissionError when the candidate's
	// estimate would push the catalog over. 0 disables admission control.
	AdmitBudget float64
	// EWMAAlpha is the smoothing factor of the measured ns/tuple EWMA
	// (default 0.2); SampleEvery is the fold sampling stride of the scalar
	// path (default 32 — timing every fold would dominate cheap queries).
	EWMAAlpha   float64
	SampleEvery int
	// OnQuarantine, when set, is called synchronously (on the producer
	// goroutine, mid-Push) each time a query is fenced. It must not call
	// back into the MultiRun.
	OnQuarantine func(QuarantineEvent)
}

// Quarantine reasons, as reported by QueryStats.Reason and QuarantineEvent.
const (
	QuarantinePanic       = "panic"
	QuarantineBreaker     = "breaker"
	QuarantineCardinality = "cardinality"
	QuarantineEpoch       = "epoch-shift"
)

// QuarantineEvent describes one query being fenced out of the shared feed.
type QuarantineEvent struct {
	ID     uint64
	Tag    any    // caller's tag, set via MultiHandle.SetTag
	Text   string // query text
	Reason string // Quarantine* constant
	Err    error  // the triggering error (panic text for QuarantinePanic)
	// Retained is the best-effort checkpoint taken at quarantine time (nil
	// when the run's state was too damaged to serialize); Revive resumes
	// from it.
	Retained []byte
	// Tuples is the query's tuple counter at quarantine time.
	Tuples uint64
}

// AdmissionError reports an attach rejected by admission control: the
// candidate's estimated private per-tuple cost would push the catalog over
// its budget. The running catalog is left untouched.
type AdmissionError struct {
	Query   string
	EstCost float64 // candidate's estimated private ns/tuple
	Used    float64 // already-admitted estimate sum
	Budget  float64
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("gsql: admission rejected: query costs ~%.0f ns/tuple, catalog at %.0f of %.0f",
		e.EstCost, e.Used, e.Budget)
}

// sharedSlot is one hash-consed subexpression: its compiled evaluator and
// the single-tuple memo.
type sharedSlot struct {
	m   *MultiRun
	fn  evalFn
	gen uint64
	val Value
	err error
}

// read is the slot's evalFn. During the shared pass it computes once per
// tuple generation and serves every later reader from the memo; outside it
// (batch replay, solo pushes) it evaluates plainly.
func (s *sharedSlot) read(rec Tuple) (Value, error) {
	m := s.m
	if !m.share {
		return s.fn(rec)
	}
	if s.gen == m.gen {
		m.memoHits++
		return s.val, s.err
	}
	v, err := s.fn(rec)
	s.val, s.err, s.gen = v, err, m.gen
	m.memoMisses++
	return v, err
}

// predClass is one WHERE-clause equivalence class: the queries whose filter
// is canonically identical, sharing one predicate evaluation per tuple and
// one selection bitmap per batch segment.
type predClass struct {
	key  string // canonical WHERE key; "" for unfiltered queries
	pred evalFn // nil for unfiltered
	ast  expr   // the WHERE AST the class was built from
	pos  int    // index in m.classes, maintained by swap-remove
	// slots are the shared-slot retains of the class predicate compile,
	// released when the class is pruned.
	slots []int

	// vp is the vectorized where-only plan (nil when it did not compile);
	// ctx and sel are its per-class scratch.
	vp  *vecPlan
	ctx vctx
	sel []uint64

	members []*multiEntry // order changes under churn (swap-remove)
}

// multiEntry is one attached query.
type multiEntry struct {
	id     uint64
	text   string
	mode   string // catalog key space: "serial" or "parallel"
	shards int
	sink   func(Tuple) error
	run    *Run
	pr     *ParallelRun
	cls    *predClass
	pos    int // index in cls.members or m.parallel (swap-remove)
	armed  bool
	tag    any
	// off converts the shared feed position into this run's tuple counter:
	// r.tuples == m.tuples + off. Attach sets it to -m.tuples; restore to
	// ckpt.tuples - m.tuples; solo pushes advance it directly.
	off int64

	// Admission and attribution (only maintained under Options.Isolate,
	// except estCost which admission always records).
	estCost    float64
	folds      uint64
	errs       uint64
	consecErrs int
	nsEWMA     float64

	// Quarantine state. A quarantined entry stays in m.entries (visible to
	// stats, detachable, revivable) but is unlinked from every shared
	// structure; retained is its best-effort quarantine-time checkpoint.
	quarantined bool
	qreason     string
	qerr        error
	qtuples     uint64
	retained    []byte
}

// MultiHandle is the caller's reference to one attached query.
type MultiHandle struct {
	m *MultiRun
	e *multiEntry
}

// serialStmt is the serial catalog artifact: the deduped statement, the
// pieces the predicate class is built from, and the shared-slot retains of
// its compile (released with the last reference to the text).
type serialStmt struct {
	st       *Statement
	whereKey string
	whereAST expr
	slots    []int
}

// parallelStmt is the sharded catalog artifact.
type parallelStmt struct {
	st    *Statement
	slots []int
}

// NewMultiRun creates an empty multi-query runtime over one registered
// stream. Options apply to every serial member (sharded members derive
// their epoch supervisor from the same config). Like a Run, a MultiRun is
// single-producer: Push/PushBatch/Heartbeat and Attach/Detach must not be
// called concurrently.
func NewMultiRun(e *Engine, stream string, opts Options) (*MultiRun, error) {
	schema, ok := e.streams[strings.ToLower(stream)]
	if !ok {
		return nil, fmt.Errorf("gsql: unknown stream %q", stream)
	}
	ep, err := newEpochState(opts.Epoch)
	if err != nil {
		return nil, err
	}
	m := &MultiRun{
		eng:        e,
		schema:     schema,
		opts:       opts,
		in:         analyzer.NewInterner(),
		scat:       analyzer.NewCatalog(),
		pcat:       analyzer.NewCatalog(),
		classByKey: map[string]*predClass{},
		entries:    map[uint64]*multiEntry{},
		ep:         ep,
		row:        make(Tuple, len(schema.Cols)),
	}
	if opts.Isolate != nil {
		iso := *opts.Isolate
		if iso.EWMAAlpha <= 0 {
			iso.EWMAAlpha = 0.2
		}
		if iso.SampleEvery <= 0 {
			iso.SampleEvery = 32
		}
		m.iso = &iso
	}
	m.env = &compileEnv{
		resolve: func(name string) int { return schema.ColumnIndex(name) },
		colType: func(name string) Type {
			if i := schema.ColumnIndex(name); i >= 0 {
				return schema.Cols[i].Type
			}
			return TNull
		},
		shared: m.sharedHook,
		funcs:  builtinFuncs,
	}
	if ep != nil {
		m.mbx = newBatchExec(&plan{schema: schema}, ep)
	}
	return m, nil
}

// sharedHook is the compileEnv.shared implementation: hash-cons non-trivial
// subtrees into shared slots. Literals and bare column references compile
// plainly (a slot would only add indirection); everything else interns by
// canonical key, compiles once through this same environment (so nested
// subexpressions land in their own slots), and thereafter every query
// referencing the subtree reads the one slot. Every returned slot is
// retained into the active compile scope, so a detach can give the retains
// back.
func (m *MultiRun) sharedHook(e expr) evalFn {
	switch e.(type) {
	case *binExpr, *unExpr, *callExpr:
	default:
		return nil
	}
	key := exprKey(e)
	if id, ok := m.in.Lookup(key); ok {
		s := m.slots[id]
		if s == nil {
			// In flight (self-reference during its own compilation) or
			// failed: decline, structural compilation handles both.
			return nil
		}
		m.in.Intern(key) // count the reuse
		m.recordSlot(id)
		return s.read
	}
	id, _ := m.in.Intern(key)
	for len(m.slots) <= id {
		m.slots = append(m.slots, nil)
	}
	fn, err := m.env.compile(e)
	if err != nil {
		// Drop the placeholder: the caller's structural compilation of the
		// same subtree reproduces the error, and a failed subtree must not
		// pin an interner slot.
		if m.in.Release(id) {
			m.slots[id] = nil
		}
		return nil
	}
	s := &sharedSlot{m: m, fn: fn}
	m.slots[id] = s
	m.recordSlot(id)
	return s.read
}

// recordSlot retains a slot into the active compile scope.
func (m *MultiRun) recordSlot(id int) {
	m.in.Retain(id)
	if m.recording != nil {
		*m.recording = append(*m.recording, id)
	}
}

// releaseSlots gives back one retain per listed slot, clearing the slot
// table entry of any slot whose last retain dropped (its id returns to the
// interner's free list for reuse).
func (m *MultiRun) releaseSlots(ids []int) {
	for _, id := range ids {
		if m.in.Release(id) {
			m.slots[id] = nil
		}
	}
}

// compileScope runs f with slot recording active and returns the ids of
// every shared slot retained during it. On error the retained slots are
// released, so a failed attach leaves the interner exactly as it found it.
func (m *MultiRun) compileScope(f func() error) ([]int, error) {
	var rec []int
	prev := m.recording
	m.recording = &rec
	err := f()
	m.recording = prev
	if err != nil {
		m.releaseSlots(rec)
		return nil, err
	}
	return rec, nil
}

// prepareSerial compiles a parsed query for shared serial execution: WHERE
// stripped from the per-query plan (the predicate class applies it), every
// tuple-level expression routed through the shared slots.
func (m *MultiRun) prepareSerial(text string, ast *queryAST) (*serialStmt, error) {
	ss := &serialStmt{whereAST: ast.where}
	if ast.where != nil {
		ss.whereKey = exprKey(ast.where)
	}
	slots, err := m.compileScope(func() error {
		p, err := buildPlanH(ast, m.schema, m.eng.aggs, planHooks{shared: m.sharedHook, stripWhere: true})
		if err != nil {
			return err
		}
		p.fp = fingerprint(text, m.schema.Name)
		ss.st = &Statement{p: p, text: text}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ss.slots = slots
	return ss, nil
}

// prepareParallel compiles a parsed query for a sharded member: WHERE and
// group expressions stay in the plan (the coordinator evaluates them on the
// producer goroutine, so they still share slots); aggregate arguments
// compile plainly because shard workers evaluate them off-thread.
func (m *MultiRun) prepareParallel(text string, ast *queryAST) (*parallelStmt, error) {
	ps := &parallelStmt{}
	slots, err := m.compileScope(func() error {
		p, err := buildPlanH(ast, m.schema, m.eng.aggs, planHooks{shared: m.sharedHook, plainArgs: true})
		if err != nil {
			return err
		}
		p.fp = fingerprint(text, m.schema.Name)
		ps.st = &Statement{p: p, text: text}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ps.slots = slots
	return ps, nil
}

func (m *MultiRun) parse(text string) (*queryAST, error) {
	isAgg := func(name string) bool { _, ok := m.eng.aggs[name]; return ok }
	ast, err := parseQuery(text, isAgg)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(ast.from, m.schema.Name) {
		return nil, fmt.Errorf("gsql: query reads stream %q but the multi-run feeds %q", ast.from, m.schema.Name)
	}
	return ast, nil
}

// classFor returns (creating if needed) the predicate class of a canonical
// WHERE key.
func (m *MultiRun) classFor(ss *serialStmt) (*predClass, error) {
	if cls := m.classByKey[ss.whereKey]; cls != nil {
		return cls, nil
	}
	cls := &predClass{key: ss.whereKey, ast: ss.whereAST}
	if ss.whereAST != nil {
		slots, err := m.compileScope(func() error {
			fn, err := m.env.compile(ss.whereAST)
			if err != nil {
				return err
			}
			cls.pred = fn
			cls.vp = compileVecPlan(m.env, m.schema, ss.whereAST, nil, nil)
			return nil
		})
		if err != nil {
			return nil, err
		}
		cls.slots = slots
	}
	cls.pos = len(m.classes)
	m.classByKey[ss.whereKey] = cls
	m.classes = append(m.classes, cls)
	return cls, nil
}

// Per-tuple cost model weights, in rough nanoseconds on a contemporary
// core. Absolute accuracy does not matter — admission compares candidates
// against a budget in the same unit, and the measured EWMA refines the
// picture once the query runs.
const (
	costLit      = 1.0
	costCol      = 2.0
	costUnary    = 2.0
	costBinary   = 4.0
	costCall     = 24.0
	costAggStep  = 16.0
	costSlotRead = 3.0
)

// exprCost estimates the per-tuple cost of evaluating e, charging subtrees
// already interned as live shared slots a flat slot-read: the catalog pays
// for those once regardless of this query.
func (m *MultiRun) exprCost(e expr) float64 {
	if e == nil {
		return 0
	}
	switch e.(type) {
	case *binExpr, *unExpr, *callExpr:
		if id, ok := m.in.Lookup(exprKey(e)); ok && id < len(m.slots) && m.slots[id] != nil {
			return costSlotRead
		}
	}
	switch n := e.(type) {
	case *colRef:
		return costCol
	case *unExpr:
		return costUnary + m.exprCost(n.e)
	case *binExpr:
		return costBinary + m.exprCost(n.l) + m.exprCost(n.r)
	case *callExpr:
		c := costCall
		for _, a := range n.args {
			c += m.exprCost(a)
		}
		return c
	case *aggExpr:
		c := costAggStep
		for _, a := range n.args {
			c += m.exprCost(a)
		}
		return c
	default: // literals
		return costLit
	}
}

// aggStepCost sums the per-tuple stepping cost of every aggregate call in
// an output expression (the rest of the output expression runs per emitted
// row, not per tuple, and is excluded).
func (m *MultiRun) aggStepCost(e expr) float64 {
	switch n := e.(type) {
	case *aggExpr:
		return m.exprCost(n)
	case *unExpr:
		return m.aggStepCost(n.e)
	case *binExpr:
		return m.aggStepCost(n.l) + m.aggStepCost(n.r)
	case *callExpr:
		var c float64
		for _, a := range n.args {
			c += m.aggStepCost(a)
		}
		return c
	default:
		return 0
	}
}

// privateCost estimates the per-tuple cost a candidate adds to the shared
// pass: its WHERE (free when an identical predicate class already runs),
// group expressions, and aggregate stepping. This is the estimate admission
// control checks and the seed of the query's measured ns/tuple EWMA.
func (m *MultiRun) privateCost(q *queryAST) float64 {
	var c float64
	if q.where != nil {
		if m.classByKey[exprKey(q.where)] == nil {
			c += m.exprCost(q.where)
		} else {
			c += costSlotRead
		}
	}
	for _, g := range q.group {
		c += m.exprCost(g.e)
	}
	for _, s := range q.sel {
		c += m.aggStepCost(s.e)
	}
	if q.having != nil {
		c += m.aggStepCost(q.having)
	}
	return c
}

// admit runs admission control for a candidate, returning its private-cost
// estimate. The check happens before any catalog state is touched, so a
// rejected attach perturbs nothing.
func (m *MultiRun) admit(text string, q *queryAST) (float64, error) {
	est := m.privateCost(q)
	if m.iso != nil && m.iso.AdmitBudget > 0 && m.admitUsed+est > m.iso.AdmitBudget {
		return est, &AdmissionError{Query: text, EstCost: est, Used: m.admitUsed, Budget: m.iso.AdmitBudget}
	}
	return est, nil
}

// AdmitUsed returns the summed private-cost estimate of the admitted
// catalog (the quantity admission control compares against the budget).
func (m *MultiRun) AdmitUsed() float64 { return m.admitUsed }

// Attach registers a query against the shared feed and starts its run.
// shards > 0 selects sharded (LFTA/HFTA) execution with that many workers.
// Identical query texts share one compiled plan; every attach owns its own
// run, sink, cursor and checkpoints. Queries attached mid-stream see only
// tuples pushed after their attach, exactly as a standalone run started at
// that point would. Under admission control an attach that would blow the
// catalog budget fails with *AdmissionError.
func (m *MultiRun) Attach(text string, shards int, sink func(Tuple) error) (*MultiHandle, error) {
	return m.add(text, shards, nil, sink)
}

// Restore attaches a query resuming from a checkpoint taken by a handle of
// this or a previous incarnation (same text, same schema — the checkpoint
// fingerprint is verified). The shared epoch supervisor adopts the restored
// epoch stamp, so a restored runtime continues the landmark sequence.
func (m *MultiRun) Restore(text string, shards int, ckpt []byte, sink func(Tuple) error) (*MultiHandle, error) {
	return m.add(text, shards, ckpt, sink)
}

func (m *MultiRun) add(text string, shards int, ckpt []byte, sink func(Tuple) error) (*MultiHandle, error) {
	ast, err := m.parse(text)
	if err != nil {
		return nil, err
	}
	est, err := m.admit(text, ast)
	if err != nil {
		return nil, err
	}
	e := &multiEntry{id: m.nextID, text: text, shards: shards, sink: sink}
	if err := m.link(e, ast, ckpt); err != nil {
		return nil, err
	}
	e.estCost = est
	m.admitUsed += est
	if m.iso != nil {
		e.nsEWMA = est
	}
	m.nextID++
	m.entries[e.id] = e
	e.armed = true
	return &MultiHandle{m: m, e: e}, nil
}

// link compiles (or re-acquires) the entry's plan and joins it to the
// shared feed: catalog reference, predicate-class membership, run creation,
// landmark adoption. On error everything it acquired is released. Attach,
// Restore and Revive all come through here, and its cost is O(query) — no
// catalog-wide recompilation happens on any membership change.
func (m *MultiRun) link(e *multiEntry, ast *queryAST, ckpt []byte) error {
	if e.shards > 0 {
		ent, fresh := m.pcat.Acquire(e.text)
		if fresh {
			ps, err := m.prepareParallel(e.text, ast)
			if err != nil {
				m.pcat.Release(e.text)
				return err
			}
			ent.Data = ps
		}
		ps := ent.Data.(*parallelStmt)
		popts := ParallelOptions{Shards: e.shards, Epoch: m.opts.Epoch}
		var pr *ParallelRun
		var err error
		if ckpt != nil {
			pr, err = ps.st.RestoreParallel(ckpt, e.sink, popts)
		} else {
			pr, err = ps.st.StartParallel(e.sink, popts)
		}
		if err != nil {
			m.releaseParallelRef(e.text)
			return err
		}
		e.mode, e.pr, e.run, e.cls = "parallel", pr, nil, nil
		e.pos = len(m.parallel)
		m.parallel = append(m.parallel, e)
		return nil
	}
	ent, fresh := m.scat.Acquire(e.text)
	if fresh {
		ss, err := m.prepareSerial(e.text, ast)
		if err != nil {
			m.scat.Release(e.text)
			return err
		}
		ent.Data = ss
	}
	ss := ent.Data.(*serialStmt)
	cls, err := m.classFor(ss)
	if err != nil {
		m.releaseSerialRef(e.text)
		return err
	}
	var r *Run
	if ckpt != nil {
		r, err = ss.st.Restore(ckpt, e.sink, m.opts)
		if err != nil {
			m.releaseSerialRef(e.text)
			return err
		}
		e.off = int64(r.tuples) - int64(m.tuples)
		// A restored epoch stamp re-anchors the shared supervisor: the
		// whole runtime must continue the checkpointed landmark
		// sequence, and later attaches must be born onto it.
		if r.landmarkSet {
			m.curL, m.landmarkSet = r.curL, true
			if m.ep != nil && r.ep != nil {
				m.ep.epoch, m.ep.model = r.ep.epoch, r.ep.model
			}
		}
	} else {
		r = newRun(ss.st.p, e.sink, m.opts)
		e.off = -int64(m.tuples)
		// Born after a rollover: adopt the current landmark so this
		// run's groups live in the same frame as everyone else's.
		if m.landmarkSet {
			r.curL, r.landmarkSet = m.curL, true
			if m.ep != nil && r.ep != nil {
				r.ep.epoch, r.ep.model = m.ep.epoch, m.ep.model
			}
		}
	}
	e.mode, e.run, e.pr, e.cls = "serial", r, nil, cls
	e.pos = len(cls.members)
	cls.members = append(cls.members, e)
	return nil
}

// releaseSerialRef drops one serial-catalog reference to text; the last
// reference also returns the statement's shared-slot retains.
func (m *MultiRun) releaseSerialRef(text string) {
	ent := m.scat.Get(text)
	if ent == nil {
		return
	}
	ss, _ := ent.Data.(*serialStmt)
	if m.scat.Release(text) && ss != nil {
		m.releaseSlots(ss.slots)
	}
}

// releaseParallelRef is releaseSerialRef for the sharded catalog.
func (m *MultiRun) releaseParallelRef(text string) {
	ent := m.pcat.Get(text)
	if ent == nil {
		return
	}
	ps, _ := ent.Data.(*parallelStmt)
	if m.pcat.Release(text) && ps != nil {
		m.releaseSlots(ps.slots)
	}
}

// swapRemoveAt removes index i from a membership list in O(1), keeping the
// moved element's stored position current.
func swapRemoveAt(s []*multiEntry, i int) []*multiEntry {
	last := len(s) - 1
	s[i] = s[last]
	s[i].pos = i
	s[last] = nil
	return s[:last]
}

// unlink removes an armed entry from every shared structure: class
// membership (pruning an empty class and releasing its predicate slots),
// the sharded member list, the admission budget, and the catalog reference
// (releasing the statement's shared slots on the last one). O(1) in the
// catalog size via the stored positions. The entry itself stays wherever
// the caller keeps it — Detach drops it, quarantine retains it.
func (m *MultiRun) unlink(e *multiEntry) {
	m.admitUsed -= e.estCost
	if e.pr != nil {
		m.parallel = swapRemoveAt(m.parallel, e.pos)
		m.releaseParallelRef(e.text)
		return
	}
	cls := e.cls
	cls.members = swapRemoveAt(cls.members, e.pos)
	if len(cls.members) == 0 {
		delete(m.classByKey, cls.key)
		last := len(m.classes) - 1
		m.classes[cls.pos] = m.classes[last]
		m.classes[cls.pos].pos = cls.pos
		m.classes[last] = nil
		m.classes = m.classes[:last]
		m.releaseSlots(cls.slots)
		cls.slots = nil
	}
	e.cls = nil
	m.releaseSerialRef(e.text)
}

// abortParallel tears a sharded member's workers down without the final
// flush: quarantine must not emit rows from a fenced query, but the worker
// goroutines must not outlive their membership either.
func abortParallel(pr *ParallelRun) {
	defer func() { _ = recover() }()
	if pr.closed {
		return
	}
	pr.closed = true
	for _, w := range pr.workers {
		close(w.work)
	}
	for _, w := range pr.workers {
		<-w.done
	}
}

// quarantine fences an armed entry out of the shared feed: best-effort
// checkpoint, unlink from classes/slots/catalogs, state flip, operator
// callback. Everything else keeps running as if the query were never
// attached; the entry stays in m.entries for stats, Detach and Revive.
func (m *MultiRun) quarantine(e *multiEntry, reason string, cause error) {
	if !e.armed || e.quarantined {
		return
	}
	// The run may be mid-fold corrupt (panic path), so the retained
	// checkpoint is best-effort: a failure leaves it nil and a revive
	// starts fresh.
	func() {
		defer func() { _ = recover() }()
		if e.pr != nil {
			e.retained, _ = e.pr.Checkpoint()
		} else if e.run != nil {
			m.syncTuples(e)
			e.retained, _ = e.run.Checkpoint()
		}
	}()
	if e.pr != nil {
		e.qtuples = e.pr.Stats()
	} else {
		e.qtuples = uint64(int64(m.tuples) + e.off)
	}
	e.quarantined, e.qreason, e.qerr = true, reason, cause
	pr := e.pr
	m.unlink(e)
	e.run, e.pr = nil, nil
	if pr != nil {
		abortParallel(pr)
	}
	if m.iso != nil && m.iso.OnQuarantine != nil {
		m.iso.OnQuarantine(QuarantineEvent{
			ID: e.id, Tag: e.tag, Text: e.text, Reason: reason, Err: cause,
			Retained: e.retained, Tuples: e.qtuples,
		})
	}
}

// chargeMember books one failed fold against a member and trips the breaker
// or (for panics and epoch-shift faults, which leave the run's state
// unreliable) quarantines immediately.
func (m *MultiRun) chargeMember(e *multiEntry, cause error, reason string) {
	if e.quarantined {
		return
	}
	e.errs++
	e.consecErrs++
	if reason != "" {
		m.quarantine(e, reason, cause)
		return
	}
	if br := m.iso.BreakerErrors; br > 0 && e.consecErrs >= br {
		m.quarantine(e, QuarantineBreaker, cause)
	}
}

// chargeClass books a class-predicate failure against every member: the
// class predicate is each member's own WHERE clause, so a standalone run of
// any of them would have hit the same error on this tuple.
func (m *MultiRun) chargeClass(cls *predClass, cause error, reason string) {
	for i := 0; i < len(cls.members); {
		e := cls.members[i]
		m.chargeMember(e, cause, reason)
		if i < len(cls.members) && cls.members[i] == e {
			i++
		}
	}
}

// Push feeds one tuple to every attached query: one finite check, one epoch
// observation, one predicate evaluation per class, one fold per member whose
// class passes. Shared subexpression slots are memoized for the duration of
// the call. Without isolation the first member error aborts the tuple and
// surfaces; with Options.Isolate member errors are charged to their query
// and Push keeps feeding everyone else.
func (m *MultiRun) Push(t Tuple) error {
	m.tuples++
	if err := checkTupleFinite(m.schema, t); err != nil {
		return err
	}
	if m.ep != nil {
		if ts, ok := m.ep.time(t); ok {
			if newL, roll := m.ep.observe(ts); roll {
				if err := m.shiftAll(newL); err != nil {
					return err
				}
			}
		}
	}
	m.gen++
	m.share = true
	err := m.foldAll(t)
	m.share = false
	return err
}

// foldAll is the post-epoch body of Push. Without isolation, errors surface
// in iteration order and the first one aborts the tuple (fate-sharing, the
// historical contract); membership lists are swap-remove maintained, so
// iteration order is attach order only until the first detach.
func (m *MultiRun) foldAll(t Tuple) error {
	if m.iso != nil {
		m.foldAllIso(t)
		return nil
	}
	for _, cls := range m.classes {
		if len(cls.members) == 0 {
			continue
		}
		if cls.pred != nil {
			ok, err := cls.pred(t)
			if err != nil {
				return err
			}
			if !ok.Truthy() {
				continue
			}
		}
		for _, e := range cls.members {
			if err := e.run.foldTuple(t); err != nil {
				return err
			}
		}
	}
	for _, e := range m.parallel {
		if err := e.pr.Push(t); err != nil {
			return err
		}
	}
	return nil
}

// foldAllIso is foldAll under fault isolation: per-member recover, error
// charging, breaker and cardinality enforcement. Quarantine swap-removes
// from the very lists being walked, so every loop re-checks its cursor.
func (m *MultiRun) foldAllIso(t Tuple) {
	for ci := 0; ci < len(m.classes); {
		cls := m.classes[ci]
		if len(cls.members) == 0 {
			ci++
			continue
		}
		if cls.pred != nil {
			ok, err, reason := m.evalPredSafe(cls, t)
			if err != nil {
				m.chargeClass(cls, err, reason)
				if ci < len(m.classes) && m.classes[ci] == cls {
					ci++
				}
				continue
			}
			if !ok {
				ci++
				continue
			}
		}
		for i := 0; i < len(cls.members); {
			e := cls.members[i]
			m.foldMember(e, t)
			if i < len(cls.members) && cls.members[i] == e {
				i++
			}
		}
		if ci < len(m.classes) && m.classes[ci] == cls {
			ci++
		}
	}
	for i := 0; i < len(m.parallel); {
		e := m.parallel[i]
		err, reason := m.parallelPushSafe(e, t)
		if err != nil {
			m.chargeMember(e, err, reason)
		} else {
			e.consecErrs = 0
		}
		if i < len(m.parallel) && m.parallel[i] == e {
			i++
		}
	}
}

// evalPredSafe evaluates a class predicate with panic containment. reason
// is QuarantinePanic when the predicate panicked, "" otherwise.
func (m *MultiRun) evalPredSafe(cls *predClass, t Tuple) (ok bool, err error, reason string) {
	defer func() {
		if p := recover(); p != nil {
			ok, err, reason = false, fmt.Errorf("gsql: panic in class predicate: %v", p), QuarantinePanic
		}
	}()
	v, perr := cls.pred(t)
	if perr != nil {
		return false, perr, ""
	}
	return v.Truthy(), nil, ""
}

// foldMember folds one tuple into a serial member under isolation: recover,
// sampled timing into the ns/tuple EWMA, error charging, cardinality cap.
func (m *MultiRun) foldMember(e *multiEntry, t Tuple) {
	err, reason := m.foldMemberSafe(e, t)
	if err != nil {
		m.chargeMember(e, err, reason)
		return
	}
	e.consecErrs = 0
	if mg := m.iso.MaxGroups; mg > 0 && e.run.liveGroups() > mg {
		m.quarantine(e, QuarantineCardinality,
			fmt.Errorf("gsql: query %d exceeded the %d live-group cap", e.id, mg))
	}
}

func (m *MultiRun) foldMemberSafe(e *multiEntry, t Tuple) (err error, reason string) {
	defer func() {
		if p := recover(); p != nil {
			err, reason = fmt.Errorf("gsql: panic folding query %d: %v", e.id, p), QuarantinePanic
		}
	}()
	e.folds++
	if e.folds%uint64(m.iso.SampleEvery) == 0 {
		t0 := time.Now()
		err = e.run.foldTuple(t)
		dt := float64(time.Since(t0).Nanoseconds())
		e.nsEWMA += m.iso.EWMAAlpha * (dt - e.nsEWMA)
		return err, ""
	}
	return e.run.foldTuple(t), ""
}

func (m *MultiRun) parallelPushSafe(e *multiEntry, t Tuple) (err error, reason string) {
	defer func() {
		if p := recover(); p != nil {
			err, reason = fmt.Errorf("gsql: panic pushing query %d: %v", e.id, p), QuarantinePanic
		}
	}()
	return e.pr.Push(t), ""
}

// shiftAll applies a landmark roll across the runtime: every serial member
// shifts at the same point of the tuple sequence (sharded members roll
// under their own supervisor at the same stream time). Under isolation a
// member whose shift fails is quarantined — a half-shifted run can never
// rejoin the shared landmark frame — and the roll continues for the rest.
func (m *MultiRun) shiftAll(newL float64) error {
	if m.iso == nil {
		for _, cls := range m.classes {
			for _, e := range cls.members {
				if err := e.run.ShiftLandmark(newL); err != nil {
					return err
				}
			}
		}
		m.ep.advanced(newL)
		m.curL, m.landmarkSet = newL, true
		return nil
	}
	for ci := 0; ci < len(m.classes); {
		cls := m.classes[ci]
		for i := 0; i < len(cls.members); {
			e := cls.members[i]
			err, reason := m.shiftMemberSafe(e, newL)
			if err != nil {
				if reason == "" {
					reason = QuarantineEpoch
				}
				m.chargeMember(e, err, reason)
			}
			if i < len(cls.members) && cls.members[i] == e {
				i++
			}
		}
		if ci < len(m.classes) && m.classes[ci] == cls {
			ci++
		}
	}
	m.ep.advanced(newL)
	m.curL, m.landmarkSet = newL, true
	return nil
}

func (m *MultiRun) shiftMemberSafe(e *multiEntry, newL float64) (err error, reason string) {
	defer func() {
		if p := recover(); p != nil {
			err, reason = fmt.Errorf("gsql: panic shifting query %d: %v", e.id, p), QuarantinePanic
		}
	}()
	return e.run.ShiftLandmark(newL), ""
}

// Heartbeat advances the epoch supervisor and every member's temporal bucket
// without carrying data — one observation fanned to all queries.
func (m *MultiRun) Heartbeat(ts Value) error {
	if m.ep != nil {
		if newL, roll := m.ep.observe(ts.AsFloat()); roll {
			if err := m.shiftAll(newL); err != nil {
				return err
			}
		}
	}
	if m.iso != nil {
		m.heartbeatIso(ts)
		return nil
	}
	for _, cls := range m.classes {
		for _, e := range cls.members {
			if err := e.run.heartbeatBucket(ts); err != nil {
				return err
			}
		}
	}
	for _, e := range m.parallel {
		if err := e.pr.Heartbeat(ts); err != nil {
			return err
		}
	}
	return nil
}

func (m *MultiRun) heartbeatIso(ts Value) {
	for ci := 0; ci < len(m.classes); {
		cls := m.classes[ci]
		for i := 0; i < len(cls.members); {
			e := cls.members[i]
			err, reason := m.heartbeatMemberSafe(e, ts)
			if err != nil {
				m.chargeMember(e, err, reason)
			}
			if i < len(cls.members) && cls.members[i] == e {
				i++
			}
		}
		if ci < len(m.classes) && m.classes[ci] == cls {
			ci++
		}
	}
	for i := 0; i < len(m.parallel); {
		e := m.parallel[i]
		err, reason := m.heartbeatParallelSafe(e, ts)
		if err != nil {
			m.chargeMember(e, err, reason)
		}
		if i < len(m.parallel) && m.parallel[i] == e {
			i++
		}
	}
}

func (m *MultiRun) heartbeatMemberSafe(e *multiEntry, ts Value) (err error, reason string) {
	defer func() {
		if p := recover(); p != nil {
			err, reason = fmt.Errorf("gsql: panic in heartbeat of query %d: %v", e.id, p), QuarantinePanic
		}
	}()
	return e.run.heartbeatBucket(ts), ""
}

func (m *MultiRun) heartbeatParallelSafe(e *multiEntry, ts Value) (err error, reason string) {
	defer func() {
		if p := recover(); p != nil {
			err, reason = fmt.Errorf("gsql: panic in heartbeat of query %d: %v", e.id, p), QuarantinePanic
		}
	}()
	return e.pr.Heartbeat(ts), ""
}

// PushBatch folds a columnar batch into every attached query: one finite
// scan, one epoch segmentation, and per segment one selection bitmap per
// predicate class shared by its members. A class with no surviving rows in
// a segment skips its members entirely. The batch's selection bitmap is
// consumed as working state. rejected counts non-finite rows, as
// Run.PushBatch does. Isolation semantics match Push.
func (m *MultiRun) PushBatch(b *Batch) (rejected int, err error) {
	if b == nil || b.Len() == 0 {
		return 0, nil
	}
	if !b.compatibleWith(m.schema) {
		return 0, fmt.Errorf("gsql: batch schema %s is incompatible with stream %s",
			b.schema.Name, m.schema.Name)
	}
	m.valid = growBits(m.valid, b.n)
	b.scanFinite(m.valid)
	rejected = b.n - popRange(m.valid, b.n)

	lo, skipObserve := 0, false
	for lo < b.n {
		hi, newL, roll := b.n, 0.0, false
		if m.ep != nil {
			m.mbx.valid = m.valid
			hi, newL, roll = m.mbx.scanEpoch(m.ep, b, lo, skipObserve)
		}
		if err := m.processSegmentAll(b, lo, hi); err != nil {
			return rejected, err
		}
		m.tuples += uint64(hi - lo)
		if roll {
			if err := m.shiftAll(newL); err != nil {
				return rejected, err
			}
		}
		lo, skipObserve = hi, roll
	}
	if m.iso != nil {
		for i := 0; i < len(m.parallel); {
			e := m.parallel[i]
			err, reason := m.parallelBatchSafe(e, b)
			if err != nil {
				m.chargeMember(e, err, reason)
			} else {
				e.consecErrs = 0
			}
			if i < len(m.parallel) && m.parallel[i] == e {
				i++
			}
		}
		return rejected, nil
	}
	for _, e := range m.parallel {
		if _, err := e.pr.PushBatch(b); err != nil {
			return rejected, err
		}
	}
	return rejected, nil
}

func (m *MultiRun) parallelBatchSafe(e *multiEntry, b *Batch) (err error, reason string) {
	defer func() {
		if p := recover(); p != nil {
			err, reason = fmt.Errorf("gsql: panic pushing batch to query %d: %v", e.id, p), QuarantinePanic
		}
	}()
	_, err = e.pr.PushBatch(b)
	return err, ""
}

// processSegmentAll folds rows [lo,hi) — a fixed-landmark segment — into
// every serial member, one class selection per class.
func (m *MultiRun) processSegmentAll(b *Batch, lo, hi int) error {
	if lo >= hi {
		return nil
	}
	if m.iso != nil {
		m.processSegmentIso(b, lo, hi)
		return nil
	}
	for _, cls := range m.classes {
		if len(cls.members) == 0 {
			continue
		}
		n, err := m.classSelect(cls, b, lo, hi)
		if err != nil {
			return err
		}
		if n == 0 {
			continue
		}
		for _, e := range cls.members {
			r := e.run
			if r.bx == nil {
				r.bx = newBatchExec(r.p, r.ep)
			}
			if err := r.processSegmentBase(b, lo, hi, cls.sel); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *MultiRun) processSegmentIso(b *Batch, lo, hi int) {
	for ci := 0; ci < len(m.classes); {
		cls := m.classes[ci]
		if len(cls.members) == 0 {
			ci++
			continue
		}
		n, err, reason := m.classSelectSafe(cls, b, lo, hi)
		if err != nil {
			m.chargeClass(cls, err, reason)
			if ci < len(m.classes) && m.classes[ci] == cls {
				ci++
			}
			continue
		}
		if n == 0 {
			ci++
			continue
		}
		for i := 0; i < len(cls.members); {
			e := cls.members[i]
			m.batchMember(e, b, lo, hi, cls.sel, n)
			if i < len(cls.members) && cls.members[i] == e {
				i++
			}
		}
		if ci < len(m.classes) && m.classes[ci] == cls {
			ci++
		}
	}
}

func (m *MultiRun) classSelectSafe(cls *predClass, b *Batch, lo, hi int) (n int, err error, reason string) {
	defer func() {
		if p := recover(); p != nil {
			n, err, reason = 0, fmt.Errorf("gsql: panic in class predicate: %v", p), QuarantinePanic
		}
	}()
	n, err = m.classSelect(cls, b, lo, hi)
	return n, err, ""
}

// batchMember folds one selected segment into a serial member under
// isolation, timing the whole segment into the ns/tuple EWMA (n is the
// surviving row count).
func (m *MultiRun) batchMember(e *multiEntry, b *Batch, lo, hi int, sel []uint64, n int) {
	err, reason := func() (err error, reason string) {
		defer func() {
			if p := recover(); p != nil {
				err, reason = fmt.Errorf("gsql: panic folding query %d: %v", e.id, p), QuarantinePanic
			}
		}()
		r := e.run
		if r.bx == nil {
			r.bx = newBatchExec(r.p, r.ep)
		}
		e.folds += uint64(n)
		t0 := time.Now()
		err = r.processSegmentBase(b, lo, hi, sel)
		dt := float64(time.Since(t0).Nanoseconds()) / float64(n)
		e.nsEWMA += m.iso.EWMAAlpha * (dt - e.nsEWMA)
		return err, ""
	}()
	if err != nil {
		m.chargeMember(e, err, reason)
		return
	}
	e.consecErrs = 0
	if mg := m.iso.MaxGroups; mg > 0 && e.run.liveGroups() > mg {
		m.quarantine(e, QuarantineCardinality,
			fmt.Errorf("gsql: query %d exceeded the %d live-group cap", e.id, mg))
	}
}

// classSelect fills cls.sel with finite ∧ class-WHERE over [lo,hi) and
// returns the surviving row count: vectorized when the class filter
// compiled to kernels, row-by-row otherwise.
func (m *MultiRun) classSelect(cls *predClass, b *Batch, lo, hi int) (int, error) {
	cls.sel = growBits(cls.sel, b.n)
	maskRange(cls.sel, m.valid, lo, hi)
	if cls.pred == nil {
		return popRange(cls.sel, b.n), nil
	}
	if cls.vp != nil && cls.vp.where != nil {
		cls.ctx.reset(b, cls.vp)
		cls.vp.where.run(&cls.ctx, cls.sel)
		if cls.ctx.err == nil {
			wb := cls.ctx.bits(cls.vp.where)
			for w := range cls.sel {
				cls.sel[w] &= wb[w]
			}
			return popRange(cls.sel, b.n), nil
		}
		// Kernel error: fall through to the scalar evaluation, which
		// reproduces the row-level outcome.
	}
	count := 0
	for i := lo; i < hi; i++ {
		if !bitGet(cls.sel, i) {
			continue
		}
		b.row(i, m.row)
		v, err := cls.pred(m.row)
		if err != nil {
			return 0, err
		}
		if v.Truthy() {
			count++
		} else {
			cls.sel[i>>6] &^= 1 << uint(i&63)
		}
	}
	return count, nil
}

// Queries returns the number of attached queries (quarantined included).
func (m *MultiRun) Queries() int { return len(m.entries) }

// Tuples returns the shared feed position (tuples pushed through the
// runtime, including rejected ones — the same policy as Run.Stats).
func (m *MultiRun) Tuples() uint64 { return m.tuples }

// MultiStats is the runtime's sharing scoreboard, exported by the service
// as catalog gauges.
type MultiStats struct {
	// Queries is the attached-query count (quarantined included);
	// DistinctTexts the deduped compiled-statement count; Classes the
	// predicate-class count; Quarantined the fenced-query count.
	Queries       int
	DistinctTexts int
	Classes       int
	Quarantined   int
	// DistinctExprs is the live shared-subexpression slot population
	// (slots of detached queries are freed); ExprHits/ExprMisses its
	// plan-time reuse counters.
	DistinctExprs        int
	ExprHits, ExprMisses uint64
	// MemoHits/MemoMisses count runtime shared-pass slot reads served from
	// (resp. filled into) the per-tuple memo.
	MemoHits, MemoMisses uint64
	// PlanHits/PlanMisses count statement-catalog acquisitions.
	PlanHits, PlanMisses uint64
	Tuples               uint64
	// AdmitUsed is the summed private-cost estimate of the admitted
	// catalog, in estimated ns/tuple.
	AdmitUsed float64
}

// SharedHitRatio is MemoHits/(MemoHits+MemoMisses) — the fraction of shared
// slot reads served without re-evaluation. Zero when nothing was read.
func (s MultiStats) SharedHitRatio() float64 {
	total := s.MemoHits + s.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(total)
}

// MultiStats snapshots the runtime's sharing counters.
func (m *MultiRun) MultiStats() MultiStats {
	es := m.in.Stats()
	ss := m.scat.Stats()
	ps := m.pcat.Stats()
	live := 0
	for _, cls := range m.classes {
		if len(cls.members) > 0 {
			live++
		}
	}
	quar := 0
	for _, e := range m.entries {
		if e.quarantined {
			quar++
		}
	}
	return MultiStats{
		Queries:       len(m.entries),
		DistinctTexts: m.scat.Len() + m.pcat.Len(),
		Classes:       live,
		Quarantined:   quar,
		DistinctExprs: es.Distinct,
		ExprHits:      es.Hits,
		ExprMisses:    es.Misses,
		MemoHits:      m.memoHits,
		MemoMisses:    m.memoMisses,
		PlanHits:      ss.Hits + ps.Hits,
		PlanMisses:    ss.Misses + ps.Misses,
		Tuples:        m.tuples,
		AdmitUsed:     m.admitUsed,
	}
}

// QueryStats is one attached query's attribution snapshot: feed position,
// error and quarantine state, the admission estimate and the measured
// ns/tuple EWMA it seeds.
type QueryStats struct {
	ID   uint64
	Text string
	Mode string // "serial" or "parallel"
	// Tuples is the query's own tuple counter (frozen at quarantine time
	// for fenced queries); Groups its live group population (serial only).
	Tuples uint64
	Groups int
	// Errors counts failed folds; ConsecErrors the current breaker streak.
	Errors       uint64
	ConsecErrors int
	// Quarantined/Reason/Cause describe the fence, when applied.
	Quarantined bool
	Reason      string
	Cause       string
	// EstCostNs is the admission-time private-cost estimate; NsPerTuple the
	// measured private-fold EWMA it seeds (equal until the first sample).
	EstCostNs  float64
	NsPerTuple float64
}

func (m *MultiRun) queryStats(e *multiEntry) QueryStats {
	qs := QueryStats{
		ID: e.id, Text: e.text, Mode: e.mode,
		Errors: e.errs, ConsecErrors: e.consecErrs,
		Quarantined: e.quarantined, Reason: e.qreason,
		EstCostNs: e.estCost, NsPerTuple: e.nsEWMA,
	}
	if e.qerr != nil {
		qs.Cause = e.qerr.Error()
	}
	switch {
	case e.quarantined:
		qs.Tuples = e.qtuples
	case e.pr != nil:
		qs.Tuples = e.pr.Stats()
	default:
		qs.Tuples = uint64(int64(m.tuples) + e.off)
		qs.Groups = e.run.liveGroups()
	}
	return qs
}

// QueryStatsAll snapshots every attached query, ordered by id.
func (m *MultiRun) QueryStatsAll() []QueryStats {
	out := make([]QueryStats, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, m.queryStats(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TopExpensive returns the n most expensive queries of a snapshot by
// measured ns/tuple (ties by id), without mutating the input.
func TopExpensive(stats []QueryStats, n int) []QueryStats {
	out := make([]QueryStats, len(stats))
	copy(out, stats)
	sort.Slice(out, func(i, j int) bool {
		if out[i].NsPerTuple != out[j].NsPerTuple {
			return out[i].NsPerTuple > out[j].NsPerTuple
		}
		return out[i].ID < out[j].ID
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// CloseAll flushes every attached query's final bucket, in id order.
// Quarantined queries are skipped — a fenced run must not emit. The first
// error is returned; later members still flush.
func (m *MultiRun) CloseAll() error {
	var first error
	for id := uint64(0); id < m.nextID; id++ {
		e := m.entries[id]
		if e == nil || !e.armed || e.quarantined {
			continue
		}
		if err := (&MultiHandle{m: m, e: e}).Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncTuples materializes the entry's derived tuple counter into its run.
func (m *MultiRun) syncTuples(e *multiEntry) {
	if e.run != nil {
		e.run.tuples = uint64(int64(m.tuples) + e.off)
	}
}

// errSoloEpoch: per-query pushes cannot drive the shared epoch clock — a
// solo tuple would advance one member's landmark past its peers'.
var errSoloEpoch = fmt.Errorf("gsql: per-query push is not supported under a shared epoch supervisor")

// errQuarantined guards the solo paths of a fenced query.
var errQuarantined = fmt.Errorf("gsql: query is quarantined")

// ID returns the query's runtime-assigned id (stable across quarantine and
// revive, unique within this MultiRun).
func (h *MultiHandle) ID() uint64 { return h.e.id }

// SetTag attaches an opaque caller tag to the query; it rides along on
// QuarantineEvent so callers can map events back to their own bookkeeping.
func (h *MultiHandle) SetTag(tag any) { h.e.tag = tag }

// Quarantined reports whether the query is fenced, and why.
func (h *MultiHandle) Quarantined() (bool, string) {
	return h.e.quarantined, h.e.qreason
}

// QueryStats snapshots this query's attribution counters.
func (h *MultiHandle) QueryStats() QueryStats { return h.m.queryStats(h.e) }

// Push feeds one tuple to this query alone — the crash-recovery replay path,
// where members resume from different feed offsets. Equivalent to a
// standalone Run.Push: the class filter (this query's WHERE) still applies.
// Not available when the runtime has an epoch supervisor. Under isolation,
// fold errors are charged to the query (tripping the breaker exactly as the
// shared feed would) instead of surfacing, so a deterministic replay
// re-quarantines a poison query at the same tuple.
func (h *MultiHandle) Push(t Tuple) error {
	m, e := h.m, h.e
	if e.quarantined {
		return errQuarantined
	}
	if e.pr != nil {
		if m.iso != nil {
			err, reason := m.parallelPushSafe(e, t)
			if err != nil {
				m.chargeMember(e, err, reason)
			} else {
				e.consecErrs = 0
			}
			return nil
		}
		return e.pr.Push(t)
	}
	if m.ep != nil {
		return errSoloEpoch
	}
	e.off++
	if err := checkTupleFinite(m.schema, t); err != nil {
		return err
	}
	if m.iso != nil {
		m.soloFoldIso(e, t)
		return nil
	}
	if cls := e.cls; cls.pred != nil {
		ok, err := cls.pred(t)
		if err != nil {
			return err
		}
		if !ok.Truthy() {
			return nil
		}
	}
	return e.run.foldTuple(t)
}

// soloFoldIso is the isolated solo fold: the class predicate error is the
// member's own WHERE failing, so it charges like a fold error.
func (m *MultiRun) soloFoldIso(e *multiEntry, t Tuple) {
	if cls := e.cls; cls.pred != nil {
		ok, err, reason := m.evalPredSafe(cls, t)
		if err != nil {
			m.chargeMember(e, err, reason)
			return
		}
		if !ok {
			return
		}
	}
	m.foldMember(e, t)
}

// PushBatch feeds a batch to this query alone (solo replay). Rows are
// replayed through the scalar fold path — replay exactness over replay
// speed.
func (h *MultiHandle) PushBatch(b *Batch) (rejected int, err error) {
	m, e := h.m, h.e
	if e.quarantined {
		return 0, errQuarantined
	}
	if e.pr != nil {
		if m.iso != nil {
			err, reason := m.parallelBatchSafe(e, b)
			if err != nil {
				m.chargeMember(e, err, reason)
			} else {
				e.consecErrs = 0
			}
			return 0, nil
		}
		return e.pr.PushBatch(b)
	}
	if m.ep != nil {
		return 0, errSoloEpoch
	}
	if b == nil || b.Len() == 0 {
		return 0, nil
	}
	if !b.compatibleWith(m.schema) {
		return 0, fmt.Errorf("gsql: batch schema %s is incompatible with stream %s",
			b.schema.Name, m.schema.Name)
	}
	m.soloSel = growBits(m.soloSel, b.n)
	b.scanFinite(m.soloSel)
	for i := 0; i < b.n; i++ {
		if e.quarantined {
			// Replay re-fenced the query mid-batch; the rest of the batch
			// is not its to see.
			return rejected, nil
		}
		e.off++
		if !bitGet(m.soloSel, i) {
			rejected++
			continue
		}
		b.row(i, m.row)
		if m.iso != nil {
			m.soloFoldIso(e, m.row)
			continue
		}
		if cls := e.cls; cls.pred != nil {
			ok, perr := cls.pred(m.row)
			if perr != nil {
				return rejected, perr
			}
			if !ok.Truthy() {
				continue
			}
		}
		if err := e.run.foldTuple(m.row); err != nil {
			return rejected, err
		}
	}
	return rejected, nil
}

// Heartbeat advances this query's temporal bucket alone (solo replay).
func (h *MultiHandle) Heartbeat(ts Value) error {
	m, e := h.m, h.e
	if e.quarantined {
		return errQuarantined
	}
	if e.pr != nil {
		if m.iso != nil {
			err, reason := m.heartbeatParallelSafe(e, ts)
			if err != nil {
				m.chargeMember(e, err, reason)
			}
			return nil
		}
		return e.pr.Heartbeat(ts)
	}
	if m.ep != nil {
		return errSoloEpoch
	}
	if m.iso != nil {
		err, reason := m.heartbeatMemberSafe(e, ts)
		if err != nil {
			m.chargeMember(e, err, reason)
		}
		return nil
	}
	return e.run.heartbeatBucket(ts)
}

// Checkpoint serializes this query's aggregation state, restorable by
// MultiRun.Restore or the standalone Statement.Restore — the formats are
// identical. A quarantined query returns its retained quarantine-time
// checkpoint.
func (h *MultiHandle) Checkpoint() ([]byte, error) {
	if h.e.quarantined {
		if h.e.retained == nil {
			return nil, fmt.Errorf("gsql: query %d is quarantined with no retained checkpoint", h.e.id)
		}
		return append([]byte(nil), h.e.retained...), nil
	}
	if h.e.pr != nil {
		return h.e.pr.Checkpoint()
	}
	h.m.syncTuples(h.e)
	return h.e.run.Checkpoint()
}

// Stats reports this query's tuples-seen and eviction counters, as
// Run.Stats does. A quarantined query reports its frozen quarantine-time
// position.
func (h *MultiHandle) Stats() (tuples, evictions uint64) {
	if h.e.quarantined {
		return h.e.qtuples, 0
	}
	if h.e.pr != nil {
		return h.e.pr.Stats(), 0
	}
	h.m.syncTuples(h.e)
	return h.e.run.Stats()
}

// Close flushes the query's final (still open) bucket. The query stays
// attached; Detach removes it from the feed. Closing a quarantined query is
// a no-op — a fenced run must not emit.
func (h *MultiHandle) Close() error {
	if h.e.quarantined {
		return nil
	}
	if h.e.pr != nil {
		return h.e.pr.Close()
	}
	return h.e.run.Close()
}

// Detach removes the query from the shared feed without flushing (call
// Close first for final results), releasing its compiled-plan reference,
// its predicate-class membership (an empty class is pruned) and its shared
// expression slots — the interner stays sized to the live catalog under
// churn. O(query): no other member is touched. Detaching a quarantined
// query just forgets it (quarantine already unlinked everything).
func (h *MultiHandle) Detach() {
	m, e := h.m, h.e
	if !e.armed {
		return
	}
	e.armed = false
	delete(m.entries, e.id)
	if e.quarantined {
		return
	}
	m.unlink(e)
}

// Revive re-admits a quarantined query: the plan is recompiled (or
// re-acquired from the catalog), the retained quarantine-time checkpoint
// restored, class membership and shared slots re-established, and the
// breaker reset. If the retained checkpoint no longer restores (a panic can
// fence a run mid-write), the query restarts fresh at the current feed
// position. Admission control applies as on Attach.
func (h *MultiHandle) Revive() error {
	m, e := h.m, h.e
	if !e.armed {
		return fmt.Errorf("gsql: query %d is detached", e.id)
	}
	if !e.quarantined {
		return fmt.Errorf("gsql: query %d is not quarantined", e.id)
	}
	ast, err := m.parse(e.text)
	if err != nil {
		return err
	}
	est, err := m.admit(e.text, ast)
	if err != nil {
		return err
	}
	if err := m.link(e, ast, e.retained); err != nil {
		if e.retained == nil {
			return err
		}
		if err2 := m.link(e, ast, nil); err2 != nil {
			return err
		}
	}
	e.quarantined, e.qreason, e.qerr, e.retained = false, "", nil, nil
	e.consecErrs = 0
	e.estCost = est
	m.admitUsed += est
	if m.iso != nil && e.nsEWMA == 0 {
		e.nsEWMA = est
	}
	return nil
}
