package gsql

import (
	"fmt"
	"strings"

	"forwarddecay/gsql/analyzer"
)

// Multi-query runtime: one pass over the stream for many standing queries.
//
// A MultiRun registers any number of prepared statements against a single
// ingest feed and evaluates the shared parts of their plans once per tuple
// (once per batch segment in the columnar path) instead of once per query:
//
//   - Plan-time CSE: every non-trivial tuple-level subexpression (WHERE,
//     group-by, aggregate arguments) is hash-consed by its canonical AST
//     string into a shared slot. Two queries writing the same subexpression
//     — in any formatting — compile to the same slot, and the slot's value
//     is computed once per tuple and memoized for every later reader.
//   - Predicate classes: queries are grouped by canonical WHERE clause. The
//     class predicate runs once per tuple; when it rejects, every member is
//     skipped in one branch. In the batch path the class evaluates its
//     filter as one vectorized selection bitmap shared by all members, and
//     a segment with no surviving rows skips the members outright.
//   - Statement dedup: attaching the same query text twice shares one
//     compiled plan (see analyzer.Catalog); each attach still owns an
//     independent Run, so results, cursors and checkpoints stay per-query.
//
// The per-tuple cost of N queries over a shared-heavy workload is therefore
// one shared pass plus the per-query fold of only the queries whose filter
// passes — the Gigascope observation that a thousand LFTAs over one NIC
// should cost one scan, applied at the expression level.
//
// Sharing safety invariants (the reasons the memo is correct):
//
//   - Single producer. A MultiRun, like a Run, is driven by one goroutine;
//     the memo generation counter and slot values are unsynchronized.
//   - Sharded members evaluate WHERE and group expressions on the producer
//     goroutine (the ParallelRun coordinator) so those share slots, but
//     their aggregate arguments run on shard workers — those are compiled
//     without the hook (planHooks.plainArgs).
//   - The memo is only live during the shared scalar pass (m.share). The
//     per-query scalar replay of a batch segment and the per-query solo
//     pushes of crash-recovery replay evaluate slots plainly, which is
//     always correct, just unshared.
//   - Slots are value-transparent: a slot evaluator produces exactly what
//     structural compilation of the subtree would, errors included. The
//     memo stores the error too, so every member of a tuple observes the
//     same failure the first evaluator hit.
//   - Epoch rollovers are runtime-wide: one shared supervisor observes the
//     stream clock once per tuple and shifts every member's landmark at the
//     same point of the sequence, so decay state never straddles landmarks
//     across members (sharded members run their own supervisor over the
//     same configuration, which rolls at the same stream times).
type MultiRun struct {
	eng    *Engine
	schema *Schema
	opts   Options

	// Plan-time identity: expression interner and per-mode statement
	// catalogs (serial and sharded plans compile differently, so the same
	// text maps to different artifacts per mode).
	in   *analyzer.Interner
	scat *analyzer.Catalog // serial statements by exact text
	pcat *analyzer.Catalog // sharded statements by exact text
	env  *compileEnv       // slot compiler; env.shared is self-referential

	// Shared slot table, indexed by interner slot id. A nil entry is a slot
	// whose compilation is in flight or failed; the hook declines those and
	// structural compilation takes over (reproducing the compile error).
	slots []*sharedSlot

	// Memo protocol: gen advances once per shared tuple and never moves
	// backwards (a reset could collide with a stale slot generation); share
	// gates memoization so unshared evaluation paths need no generation
	// discipline at all.
	gen   uint64
	share bool

	memoHits, memoMisses uint64

	classes    []*predClass
	classByKey map[string]*predClass
	parallel   []*multiEntry // sharded members, attach order

	entries map[uint64]*multiEntry
	nextID  uint64

	// tuples is the shared feed position: every attached member has seen
	// every tuple since its attach point. Per-run counters are derived
	// lazily (r.tuples = m.tuples + entry offset) at checkpoint and stats
	// time, so the hot path pays one increment for N queries.
	tuples uint64

	ep          *epochState
	curL        float64
	landmarkSet bool

	// Batch scratch: the finite bitmap, epoch segmentation state, a solo
	// selection bitmap for per-query replay, and a row buffer for scalar
	// class fallback.
	valid   []uint64
	soloSel []uint64
	mbx     *batchExec
	row     Tuple
}

// sharedSlot is one hash-consed subexpression: its compiled evaluator and
// the single-tuple memo.
type sharedSlot struct {
	m   *MultiRun
	fn  evalFn
	gen uint64
	val Value
	err error
}

// read is the slot's evalFn. During the shared pass it computes once per
// tuple generation and serves every later reader from the memo; outside it
// (batch replay, solo pushes) it evaluates plainly.
func (s *sharedSlot) read(rec Tuple) (Value, error) {
	m := s.m
	if !m.share {
		return s.fn(rec)
	}
	if s.gen == m.gen {
		m.memoHits++
		return s.val, s.err
	}
	v, err := s.fn(rec)
	s.val, s.err, s.gen = v, err, m.gen
	m.memoMisses++
	return v, err
}

// predClass is one WHERE-clause equivalence class: the queries whose filter
// is canonically identical, sharing one predicate evaluation per tuple and
// one selection bitmap per batch segment.
type predClass struct {
	key  string // canonical WHERE key; "" for unfiltered queries
	pred evalFn // nil for unfiltered
	ast  expr   // the WHERE AST the class was built from

	// vp is the vectorized where-only plan (nil when it did not compile);
	// ctx and sel are its per-class scratch.
	vp  *vecPlan
	ctx vctx
	sel []uint64

	members []*multiEntry // attach order
}

// multiEntry is one attached query.
type multiEntry struct {
	id    uint64
	text  string
	mode  string // catalog key space: "serial" or "parallel"
	run   *Run
	pr    *ParallelRun
	cls   *predClass
	armed bool
	// off converts the shared feed position into this run's tuple counter:
	// r.tuples == m.tuples + off. Attach sets it to -m.tuples; restore to
	// ckpt.tuples - m.tuples; solo pushes advance it directly.
	off int64
}

// MultiHandle is the caller's reference to one attached query.
type MultiHandle struct {
	m *MultiRun
	e *multiEntry
}

// serialStmt is the serial catalog artifact: the deduped statement plus the
// pieces the predicate class is built from.
type serialStmt struct {
	st       *Statement
	whereKey string
	whereAST expr
}

// NewMultiRun creates an empty multi-query runtime over one registered
// stream. Options apply to every serial member (sharded members derive
// their epoch supervisor from the same config). Like a Run, a MultiRun is
// single-producer: Push/PushBatch/Heartbeat and Attach/Detach must not be
// called concurrently.
func NewMultiRun(e *Engine, stream string, opts Options) (*MultiRun, error) {
	schema, ok := e.streams[strings.ToLower(stream)]
	if !ok {
		return nil, fmt.Errorf("gsql: unknown stream %q", stream)
	}
	ep, err := newEpochState(opts.Epoch)
	if err != nil {
		return nil, err
	}
	m := &MultiRun{
		eng:        e,
		schema:     schema,
		opts:       opts,
		in:         analyzer.NewInterner(),
		scat:       analyzer.NewCatalog(),
		pcat:       analyzer.NewCatalog(),
		classByKey: map[string]*predClass{},
		entries:    map[uint64]*multiEntry{},
		ep:         ep,
		row:        make(Tuple, len(schema.Cols)),
	}
	m.env = &compileEnv{
		resolve: func(name string) int { return schema.ColumnIndex(name) },
		colType: func(name string) Type {
			if i := schema.ColumnIndex(name); i >= 0 {
				return schema.Cols[i].Type
			}
			return TNull
		},
		shared: m.sharedHook,
		funcs:  builtinFuncs,
	}
	if ep != nil {
		m.mbx = newBatchExec(&plan{schema: schema}, ep)
	}
	return m, nil
}

// sharedHook is the compileEnv.shared implementation: hash-cons non-trivial
// subtrees into shared slots. Literals and bare column references compile
// plainly (a slot would only add indirection); everything else interns by
// canonical key, compiles once through this same environment (so nested
// subexpressions land in their own slots), and thereafter every query
// referencing the subtree reads the one slot.
func (m *MultiRun) sharedHook(e expr) evalFn {
	switch e.(type) {
	case *binExpr, *unExpr, *callExpr:
	default:
		return nil
	}
	key := exprKey(e)
	if id, ok := m.in.Lookup(key); ok {
		s := m.slots[id]
		if s == nil {
			// In flight (self-reference during its own compilation) or
			// failed: decline, structural compilation handles both.
			return nil
		}
		m.in.Intern(key) // count the reuse
		return s.read
	}
	id, _ := m.in.Intern(key)
	for len(m.slots) <= id {
		m.slots = append(m.slots, nil)
	}
	fn, err := m.env.compile(e)
	if err != nil {
		// Leave the slot nil: the caller's structural compilation of the
		// same subtree reproduces the same error.
		return nil
	}
	s := &sharedSlot{m: m, fn: fn}
	m.slots[id] = s
	return s.read
}

// prepareSerial parses and compiles text for shared serial execution: WHERE
// stripped from the per-query plan (the predicate class applies it), every
// tuple-level expression routed through the shared slots.
func (m *MultiRun) prepareSerial(text string) (*serialStmt, error) {
	ast, err := m.parse(text)
	if err != nil {
		return nil, err
	}
	p, err := buildPlanH(ast, m.schema, m.eng.aggs, planHooks{shared: m.sharedHook, stripWhere: true})
	if err != nil {
		return nil, err
	}
	p.fp = fingerprint(text, m.schema.Name)
	ss := &serialStmt{st: &Statement{p: p, text: text}, whereAST: ast.where}
	if ast.where != nil {
		ss.whereKey = exprKey(ast.where)
	}
	return ss, nil
}

// prepareParallel parses and compiles text for a sharded member: WHERE and
// group expressions stay in the plan (the coordinator evaluates them on the
// producer goroutine, so they still share slots); aggregate arguments
// compile plainly because shard workers evaluate them off-thread.
func (m *MultiRun) prepareParallel(text string) (*Statement, error) {
	ast, err := m.parse(text)
	if err != nil {
		return nil, err
	}
	p, err := buildPlanH(ast, m.schema, m.eng.aggs, planHooks{shared: m.sharedHook, plainArgs: true})
	if err != nil {
		return nil, err
	}
	p.fp = fingerprint(text, m.schema.Name)
	return &Statement{p: p, text: text}, nil
}

func (m *MultiRun) parse(text string) (*queryAST, error) {
	isAgg := func(name string) bool { _, ok := m.eng.aggs[name]; return ok }
	ast, err := parseQuery(text, isAgg)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(ast.from, m.schema.Name) {
		return nil, fmt.Errorf("gsql: query reads stream %q but the multi-run feeds %q", ast.from, m.schema.Name)
	}
	return ast, nil
}

// classFor returns (creating if needed) the predicate class of a canonical
// WHERE key.
func (m *MultiRun) classFor(ss *serialStmt) (*predClass, error) {
	if cls := m.classByKey[ss.whereKey]; cls != nil {
		return cls, nil
	}
	cls := &predClass{key: ss.whereKey, ast: ss.whereAST}
	if ss.whereAST != nil {
		fn, err := m.env.compile(ss.whereAST)
		if err != nil {
			return nil, err
		}
		cls.pred = fn
		cls.vp = compileVecPlan(m.env, m.schema, ss.whereAST, nil, nil)
	}
	m.classByKey[ss.whereKey] = cls
	m.classes = append(m.classes, cls)
	return cls, nil
}

// Attach registers a query against the shared feed and starts its run.
// shards > 0 selects sharded (LFTA/HFTA) execution with that many workers.
// Identical query texts share one compiled plan; every attach owns its own
// run, sink, cursor and checkpoints. Queries attached mid-stream see only
// tuples pushed after their attach, exactly as a standalone run started at
// that point would.
func (m *MultiRun) Attach(text string, shards int, sink func(Tuple) error) (*MultiHandle, error) {
	return m.add(text, shards, nil, sink)
}

// Restore attaches a query resuming from a checkpoint taken by a handle of
// this or a previous incarnation (same text, same schema — the checkpoint
// fingerprint is verified). The shared epoch supervisor adopts the restored
// epoch stamp, so a restored runtime continues the landmark sequence.
func (m *MultiRun) Restore(text string, shards int, ckpt []byte, sink func(Tuple) error) (*MultiHandle, error) {
	return m.add(text, shards, ckpt, sink)
}

func (m *MultiRun) add(text string, shards int, ckpt []byte, sink func(Tuple) error) (*MultiHandle, error) {
	e := &multiEntry{id: m.nextID, text: text}
	if shards > 0 {
		ent, fresh := m.pcat.Acquire(text)
		if fresh {
			st, err := m.prepareParallel(text)
			if err != nil {
				m.pcat.Release(text)
				return nil, err
			}
			ent.Data = st
		}
		st := ent.Data.(*Statement)
		popts := ParallelOptions{Shards: shards, Epoch: m.opts.Epoch}
		var pr *ParallelRun
		var err error
		if ckpt != nil {
			pr, err = st.RestoreParallel(ckpt, sink, popts)
		} else {
			pr, err = st.StartParallel(sink, popts)
		}
		if err != nil {
			m.pcat.Release(text)
			return nil, err
		}
		e.mode, e.pr = "parallel", pr
		m.parallel = append(m.parallel, e)
	} else {
		ent, fresh := m.scat.Acquire(text)
		if fresh {
			ss, err := m.prepareSerial(text)
			if err != nil {
				m.scat.Release(text)
				return nil, err
			}
			ent.Data = ss
		}
		ss := ent.Data.(*serialStmt)
		cls, err := m.classFor(ss)
		if err != nil {
			m.scat.Release(text)
			return nil, err
		}
		var r *Run
		if ckpt != nil {
			r, err = ss.st.Restore(ckpt, sink, m.opts)
			if err != nil {
				m.scat.Release(text)
				return nil, err
			}
			e.off = int64(r.tuples) - int64(m.tuples)
			// A restored epoch stamp re-anchors the shared supervisor: the
			// whole runtime must continue the checkpointed landmark
			// sequence, and later attaches must be born onto it.
			if r.landmarkSet {
				m.curL, m.landmarkSet = r.curL, true
				if m.ep != nil && r.ep != nil {
					m.ep.epoch, m.ep.model = r.ep.epoch, r.ep.model
				}
			}
		} else {
			r = newRun(ss.st.p, sink, m.opts)
			e.off = -int64(m.tuples)
			// Born after a rollover: adopt the current landmark so this
			// run's groups live in the same frame as everyone else's.
			if m.landmarkSet {
				r.curL, r.landmarkSet = m.curL, true
				if m.ep != nil && r.ep != nil {
					r.ep.epoch, r.ep.model = m.ep.epoch, m.ep.model
				}
			}
		}
		e.mode, e.run, e.cls = "serial", r, cls
		cls.members = append(cls.members, e)
	}
	m.nextID++
	m.entries[e.id] = e
	e.armed = true
	return &MultiHandle{m: m, e: e}, nil
}

// Push feeds one tuple to every attached query: one finite check, one epoch
// observation, one predicate evaluation per class, one fold per member whose
// class passes. Shared subexpression slots are memoized for the duration of
// the call.
func (m *MultiRun) Push(t Tuple) error {
	m.tuples++
	if err := checkTupleFinite(m.schema, t); err != nil {
		return err
	}
	if m.ep != nil {
		if ts, ok := m.ep.time(t); ok {
			if newL, roll := m.ep.observe(ts); roll {
				if err := m.shiftAll(newL); err != nil {
					return err
				}
			}
		}
	}
	m.gen++
	m.share = true
	err := m.foldAll(t)
	m.share = false
	return err
}

// foldAll is the post-epoch body of Push. Errors surface in deterministic
// order: classes in creation order, members in attach order, sharded members
// last; the first error aborts the tuple.
func (m *MultiRun) foldAll(t Tuple) error {
	for _, cls := range m.classes {
		if len(cls.members) == 0 {
			continue
		}
		if cls.pred != nil {
			ok, err := cls.pred(t)
			if err != nil {
				return err
			}
			if !ok.Truthy() {
				continue
			}
		}
		for _, e := range cls.members {
			if err := e.run.foldTuple(t); err != nil {
				return err
			}
		}
	}
	for _, e := range m.parallel {
		if err := e.pr.Push(t); err != nil {
			return err
		}
	}
	return nil
}

// shiftAll applies a landmark roll across the runtime: every serial member
// shifts at the same point of the tuple sequence (sharded members roll
// under their own supervisor at the same stream time).
func (m *MultiRun) shiftAll(newL float64) error {
	for _, cls := range m.classes {
		for _, e := range cls.members {
			if err := e.run.ShiftLandmark(newL); err != nil {
				return err
			}
		}
	}
	m.ep.advanced(newL)
	m.curL, m.landmarkSet = newL, true
	return nil
}

// Heartbeat advances the epoch supervisor and every member's temporal bucket
// without carrying data — one observation fanned to all queries.
func (m *MultiRun) Heartbeat(ts Value) error {
	if m.ep != nil {
		if newL, roll := m.ep.observe(ts.AsFloat()); roll {
			if err := m.shiftAll(newL); err != nil {
				return err
			}
		}
	}
	for _, cls := range m.classes {
		for _, e := range cls.members {
			if err := e.run.heartbeatBucket(ts); err != nil {
				return err
			}
		}
	}
	for _, e := range m.parallel {
		if err := e.pr.Heartbeat(ts); err != nil {
			return err
		}
	}
	return nil
}

// PushBatch folds a columnar batch into every attached query: one finite
// scan, one epoch segmentation, and per segment one selection bitmap per
// predicate class shared by its members. A class with no surviving rows in
// a segment skips its members entirely. The batch's selection bitmap is
// consumed as working state. rejected counts non-finite rows, as
// Run.PushBatch does.
func (m *MultiRun) PushBatch(b *Batch) (rejected int, err error) {
	if b == nil || b.Len() == 0 {
		return 0, nil
	}
	if !b.compatibleWith(m.schema) {
		return 0, fmt.Errorf("gsql: batch schema %s is incompatible with stream %s",
			b.schema.Name, m.schema.Name)
	}
	m.valid = growBits(m.valid, b.n)
	b.scanFinite(m.valid)
	rejected = b.n - popRange(m.valid, b.n)

	lo, skipObserve := 0, false
	for lo < b.n {
		hi, newL, roll := b.n, 0.0, false
		if m.ep != nil {
			m.mbx.valid = m.valid
			hi, newL, roll = m.mbx.scanEpoch(m.ep, b, lo, skipObserve)
		}
		if err := m.processSegmentAll(b, lo, hi); err != nil {
			return rejected, err
		}
		m.tuples += uint64(hi - lo)
		if roll {
			if err := m.shiftAll(newL); err != nil {
				return rejected, err
			}
		}
		lo, skipObserve = hi, roll
	}
	for _, e := range m.parallel {
		if _, err := e.pr.PushBatch(b); err != nil {
			return rejected, err
		}
	}
	return rejected, nil
}

// processSegmentAll folds rows [lo,hi) — a fixed-landmark segment — into
// every serial member, one class selection per class.
func (m *MultiRun) processSegmentAll(b *Batch, lo, hi int) error {
	if lo >= hi {
		return nil
	}
	for _, cls := range m.classes {
		if len(cls.members) == 0 {
			continue
		}
		n, err := m.classSelect(cls, b, lo, hi)
		if err != nil {
			return err
		}
		if n == 0 {
			continue
		}
		for _, e := range cls.members {
			r := e.run
			if r.bx == nil {
				r.bx = newBatchExec(r.p, r.ep)
			}
			if err := r.processSegmentBase(b, lo, hi, cls.sel); err != nil {
				return err
			}
		}
	}
	return nil
}

// classSelect fills cls.sel with finite ∧ class-WHERE over [lo,hi) and
// returns the surviving row count: vectorized when the class filter
// compiled to kernels, row-by-row otherwise.
func (m *MultiRun) classSelect(cls *predClass, b *Batch, lo, hi int) (int, error) {
	cls.sel = growBits(cls.sel, b.n)
	maskRange(cls.sel, m.valid, lo, hi)
	if cls.pred == nil {
		return popRange(cls.sel, b.n), nil
	}
	if cls.vp != nil && cls.vp.where != nil {
		cls.ctx.reset(b, cls.vp)
		cls.vp.where.run(&cls.ctx, cls.sel)
		if cls.ctx.err == nil {
			wb := cls.ctx.bits(cls.vp.where)
			for w := range cls.sel {
				cls.sel[w] &= wb[w]
			}
			return popRange(cls.sel, b.n), nil
		}
		// Kernel error: fall through to the scalar evaluation, which
		// reproduces the row-level outcome.
	}
	count := 0
	for i := lo; i < hi; i++ {
		if !bitGet(cls.sel, i) {
			continue
		}
		b.row(i, m.row)
		v, err := cls.pred(m.row)
		if err != nil {
			return 0, err
		}
		if v.Truthy() {
			count++
		} else {
			cls.sel[i>>6] &^= 1 << uint(i&63)
		}
	}
	return count, nil
}

// Queries returns the number of attached queries.
func (m *MultiRun) Queries() int { return len(m.entries) }

// Tuples returns the shared feed position (tuples pushed through the
// runtime, including rejected ones — the same policy as Run.Stats).
func (m *MultiRun) Tuples() uint64 { return m.tuples }

// MultiStats is the runtime's sharing scoreboard, exported by the service
// as catalog gauges.
type MultiStats struct {
	// Queries is the attached-query count; DistinctTexts the deduped
	// compiled-statement count; Classes the predicate-class count.
	Queries       int
	DistinctTexts int
	Classes       int
	// DistinctExprs is the shared-subexpression slot population;
	// ExprHits/ExprMisses its plan-time reuse counters.
	DistinctExprs        int
	ExprHits, ExprMisses uint64
	// MemoHits/MemoMisses count runtime shared-pass slot reads served from
	// (resp. filled into) the per-tuple memo.
	MemoHits, MemoMisses uint64
	// PlanHits/PlanMisses count statement-catalog acquisitions.
	PlanHits, PlanMisses uint64
	Tuples               uint64
}

// SharedHitRatio is MemoHits/(MemoHits+MemoMisses) — the fraction of shared
// slot reads served without re-evaluation. Zero when nothing was read.
func (s MultiStats) SharedHitRatio() float64 {
	total := s.MemoHits + s.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(total)
}

// MultiStats snapshots the runtime's sharing counters.
func (m *MultiRun) MultiStats() MultiStats {
	es := m.in.Stats()
	ss := m.scat.Stats()
	ps := m.pcat.Stats()
	live := 0
	for _, cls := range m.classes {
		if len(cls.members) > 0 {
			live++
		}
	}
	return MultiStats{
		Queries:       len(m.entries),
		DistinctTexts: m.scat.Len() + m.pcat.Len(),
		Classes:       live,
		DistinctExprs: es.Distinct,
		ExprHits:      es.Hits,
		ExprMisses:    es.Misses,
		MemoHits:      m.memoHits,
		MemoMisses:    m.memoMisses,
		PlanHits:      ss.Hits + ps.Hits,
		PlanMisses:    ss.Misses + ps.Misses,
		Tuples:        m.tuples,
	}
}

// CloseAll flushes every attached query's final bucket, in attach order.
// The first error is returned; later members still flush.
func (m *MultiRun) CloseAll() error {
	var first error
	for id := uint64(0); id < m.nextID; id++ {
		e := m.entries[id]
		if e == nil || !e.armed {
			continue
		}
		if err := (&MultiHandle{m: m, e: e}).Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncTuples materializes the entry's derived tuple counter into its run.
func (m *MultiRun) syncTuples(e *multiEntry) {
	if e.run != nil {
		e.run.tuples = uint64(int64(m.tuples) + e.off)
	}
}

// errSoloEpoch: per-query pushes cannot drive the shared epoch clock — a
// solo tuple would advance one member's landmark past its peers'.
var errSoloEpoch = fmt.Errorf("gsql: per-query push is not supported under a shared epoch supervisor")

// Push feeds one tuple to this query alone — the crash-recovery replay path,
// where members resume from different feed offsets. Equivalent to a
// standalone Run.Push: the class filter (this query's WHERE) still applies.
// Not available when the runtime has an epoch supervisor.
func (h *MultiHandle) Push(t Tuple) error {
	m, e := h.m, h.e
	if e.pr != nil {
		return e.pr.Push(t)
	}
	if m.ep != nil {
		return errSoloEpoch
	}
	e.off++
	if err := checkTupleFinite(m.schema, t); err != nil {
		return err
	}
	if cls := e.cls; cls.pred != nil {
		ok, err := cls.pred(t)
		if err != nil {
			return err
		}
		if !ok.Truthy() {
			return nil
		}
	}
	return e.run.foldTuple(t)
}

// PushBatch feeds a batch to this query alone (solo replay). Rows are
// replayed through the scalar fold path — replay exactness over replay
// speed.
func (h *MultiHandle) PushBatch(b *Batch) (rejected int, err error) {
	m, e := h.m, h.e
	if e.pr != nil {
		return e.pr.PushBatch(b)
	}
	if m.ep != nil {
		return 0, errSoloEpoch
	}
	if b == nil || b.Len() == 0 {
		return 0, nil
	}
	if !b.compatibleWith(m.schema) {
		return 0, fmt.Errorf("gsql: batch schema %s is incompatible with stream %s",
			b.schema.Name, m.schema.Name)
	}
	m.soloSel = growBits(m.soloSel, b.n)
	b.scanFinite(m.soloSel)
	for i := 0; i < b.n; i++ {
		e.off++
		if !bitGet(m.soloSel, i) {
			rejected++
			continue
		}
		b.row(i, m.row)
		if cls := e.cls; cls.pred != nil {
			ok, perr := cls.pred(m.row)
			if perr != nil {
				return rejected, perr
			}
			if !ok.Truthy() {
				continue
			}
		}
		if err := e.run.foldTuple(m.row); err != nil {
			return rejected, err
		}
	}
	return rejected, nil
}

// Heartbeat advances this query's temporal bucket alone (solo replay).
func (h *MultiHandle) Heartbeat(ts Value) error {
	if h.e.pr != nil {
		return h.e.pr.Heartbeat(ts)
	}
	if h.m.ep != nil {
		return errSoloEpoch
	}
	return h.e.run.heartbeatBucket(ts)
}

// Checkpoint serializes this query's aggregation state, restorable by
// MultiRun.Restore or the standalone Statement.Restore — the formats are
// identical.
func (h *MultiHandle) Checkpoint() ([]byte, error) {
	if h.e.pr != nil {
		return h.e.pr.Checkpoint()
	}
	h.m.syncTuples(h.e)
	return h.e.run.Checkpoint()
}

// Stats reports this query's tuples-seen and eviction counters, as
// Run.Stats does.
func (h *MultiHandle) Stats() (tuples, evictions uint64) {
	if h.e.pr != nil {
		return h.e.pr.Stats(), 0
	}
	h.m.syncTuples(h.e)
	return h.e.run.Stats()
}

// Close flushes the query's final (still open) bucket. The query stays
// attached; Detach removes it from the feed.
func (h *MultiHandle) Close() error {
	if h.e.pr != nil {
		return h.e.pr.Close()
	}
	return h.e.run.Close()
}

// Detach removes the query from the shared feed without flushing (call
// Close first for final results) and releases its compiled-plan reference.
// An empty predicate class is pruned; its interned expression slots remain,
// so a re-attach rebinds to the same slots.
func (h *MultiHandle) Detach() {
	m, e := h.m, h.e
	if !e.armed {
		return
	}
	e.armed = false
	delete(m.entries, e.id)
	if e.pr != nil {
		m.parallel = removeEntry(m.parallel, e)
		m.pcat.Release(e.text)
		return
	}
	cls := e.cls
	cls.members = removeEntry(cls.members, e)
	if len(cls.members) == 0 {
		delete(m.classByKey, cls.key)
		for i, c := range m.classes {
			if c == cls {
				m.classes = append(m.classes[:i], m.classes[i+1:]...)
				break
			}
		}
	}
	m.scat.Release(e.text)
}

func removeEntry(s []*multiEntry, e *multiEntry) []*multiEntry {
	for i, x := range s {
		if x == e {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
