package gsql

import (
	"fmt"
	"math"
	"strconv"
)

// Type enumerates the engine's value types.
type Type uint8

// The supported value types. Integer and float arithmetic follow C
// semantics (integer division truncates), which the paper's queries rely on
// (time/60, time % 60).
const (
	TNull Type = iota
	TInt
	TFloat
	TString
	TBool
)

// String returns the type's name.
func (t Type) String() string {
	switch t {
	case TNull:
		return "null"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a dynamically typed scalar. The zero value is NULL. Values are
// kept flat (no pointers except strings) so tuples stay allocation-light on
// the hot path.
type Value struct {
	T Type
	I int64 // TInt payload; 0/1 for TBool
	F float64
	S string
}

// Int returns an integer value.
func Int(i int64) Value { return Value{T: TInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{T: TFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{T: TString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{T: TBool, I: 1}
	}
	return Value{T: TBool}
}

// Null is the NULL value.
var Null = Value{}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == TNull }

// AsFloat converts numeric values to float64 (NULL becomes 0).
func (v Value) AsFloat() float64 {
	switch v.T {
	case TFloat:
		return v.F
	case TInt, TBool:
		return float64(v.I)
	default:
		return 0
	}
}

// AsInt converts numeric values to int64, truncating floats (NULL becomes 0).
func (v Value) AsInt() int64 {
	switch v.T {
	case TInt, TBool:
		return v.I
	case TFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// Truthy reports whether the value counts as true in a predicate.
func (v Value) Truthy() bool {
	switch v.T {
	case TBool, TInt:
		return v.I != 0
	case TFloat:
		return v.F != 0
	case TString:
		return v.S != ""
	default:
		return false
	}
}

// String renders the value for output.
func (v Value) String() string {
	switch v.T {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	case TBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// appendKey appends a canonical byte encoding of the value to dst, used to
// build group keys.
func (v Value) appendKey(dst []byte) []byte {
	dst = append(dst, byte(v.T))
	switch v.T {
	case TInt, TBool:
		u := uint64(v.I)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	case TFloat:
		u := math.Float64bits(v.F)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	case TString:
		dst = append(dst, v.S...)
		dst = append(dst, 0)
	}
	return dst
}

// buildKeyAppender returns a closure appending the canonical group-key
// encoding of a group-value tuple to dst, byte-identical to calling
// appendKey per value. When every group expression is statically numeric
// the encoding is a fixed 9 bytes per value, written without per-value
// dynamic dispatch; otherwise it falls back to the generic per-value loop.
func buildKeyAppender(types []Type) func(dst []byte, gv Tuple) []byte {
	for _, t := range types {
		if t != TInt && t != TBool && t != TFloat {
			return func(dst []byte, gv Tuple) []byte {
				for _, v := range gv {
					dst = v.appendKey(dst)
				}
				return dst
			}
		}
	}
	return func(dst []byte, gv Tuple) []byte {
		for i := range gv {
			v := &gv[i]
			var u uint64
			if v.T == TFloat {
				u = math.Float64bits(v.F)
			} else {
				u = uint64(v.I)
			}
			dst = append(dst, byte(v.T), byte(u), byte(u>>8), byte(u>>16),
				byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
		return dst
	}
}

// numericBinop applies an arithmetic operator with C-like promotion: two
// integers yield an integer (truncating division, Go's % semantics), any
// float operand promotes to float.
func numericBinop(op byte, a, b Value) (Value, error) {
	if a.T == TInt && b.T == TInt {
		x, y := a.I, b.I
		switch op {
		case '+':
			return Int(x + y), nil
		case '-':
			return Int(x - y), nil
		case '*':
			return Int(x * y), nil
		case '/':
			if y == 0 {
				return Null, fmt.Errorf("gsql: integer division by zero")
			}
			return Int(x / y), nil
		case '%':
			if y == 0 {
				return Null, fmt.Errorf("gsql: integer modulo by zero")
			}
			return Int(x % y), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case '+':
		return Float(x + y), nil
	case '-':
		return Float(x - y), nil
	case '*':
		return Float(x * y), nil
	case '/':
		return Float(x / y), nil
	case '%':
		return Float(math.Mod(x, y)), nil
	}
	return Null, fmt.Errorf("gsql: unknown operator %q", op)
}

// compare returns -1, 0 or +1 ordering two values; mixed numeric types
// compare as floats, strings compare lexically.
func compare(a, b Value) (int, error) {
	if a.T == TString || b.T == TString {
		if a.T != TString || b.T != TString {
			return 0, fmt.Errorf("gsql: cannot compare %s with %s", a.T, b.T)
		}
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		default:
			return 0, nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch {
	case x < y:
		return -1, nil
	case x > y:
		return 1, nil
	default:
		return 0, nil
	}
}
