package gsql_test

import (
	"bytes"
	"fmt"
	"testing"

	"forwarddecay/gsql"
)

// Poison-query soak: the PR-10 acceptance gate. A catalog of 1000 standing
// queries (serial and sharded members) rides one shared feed while a
// deterministic tape of hostile queries — an erroring storm, a group-key
// cardinality bomb, a panicking aggregate, a failing sharded member — is
// attached mid-stream and quarantined by the isolation machinery. Across a
// kill-and-recover cut (checkpoint every survivor, rebuild the runtime,
// restore, finish the stream), every survivor's rows and final checkpoint
// must be bit-for-bit identical to a fault-free oracle catalog that never
// contained the poison queries, run through the identical cut.

var soakCatalogWheres = []string{"dstIP = 7", "dstIP = 19", "dstIP = 23", "dstIP = 42"}

// soakCatalogQuery renders standing query i: the WHERE rotates over four predicate
// classes, every 50th query is unfiltered (so it folds each tuple and shares
// a class with the unfiltered poisons), and the sum argument is unique per
// query so texts do not all dedup away.
func soakCatalogQuery(i int) string {
	if i%50 == 49 {
		return fmt.Sprintf(`select tb, count(*), sum(len + %d) from TCP group by time/60 as tb`, i)
	}
	return fmt.Sprintf(
		`select tb, dstIP, count(*), sum(len + %d) from TCP where %s group by time/60 as tb, dstIP`,
		i, soakCatalogWheres[i%len(soakCatalogWheres)])
}

// soakCatalogTrace synthesizes the soak stream: timestamps advance one second per
// 60 tuples (several bucket closures per run), destinations scatter over a
// 256-address space so each predicate class matches ~1/256 of the tuples.
func soakCatalogTrace(n int, seed uint64) []gsql.Tuple {
	out := make([]gsql.Tuple, n)
	x := seed*2654435761 + 1
	for j := range out {
		x = x*6364136223846793005 + 1442695040888963407
		t := int64(j / 60)
		out[j] = gsql.Tuple{
			gsql.Int(t), gsql.Float(float64(j) / 60), gsql.Int(int64(x >> 33 & 0xffff)),
			gsql.Int(int64(x>>17) & 255), gsql.Int(4242), gsql.Int(80),
			gsql.Int(6), gsql.Int(100 + int64(j%1400)),
		}
	}
	return out
}

const soakShardedSurvivors = 3 // queries 0..2 attach with shards=2

// runSoakCatalog drives one catalog over the soak stream with a
// kill-and-recover cut at cutAt, optionally injecting the poison tape
// mid-stream, and returns each survivor's collected rows and final
// checkpoint.
func runSoakCatalog(t *testing.T, queries []string, tuples []gsql.Tuple, cutAt int, poisons bool) ([][]gsql.Tuple, [][]byte) {
	t.Helper()
	iso := gsql.IsolateConfig{BreakerErrors: 4, MaxGroups: 256}
	e := parallelEngine(t)
	registerBoom(t, e)

	attach := func(m *gsql.MultiRun, i int, sink func(gsql.Tuple) error, ckpt []byte) *gsql.MultiHandle {
		shards := 0
		if i < soakShardedSurvivors {
			shards = 2
		}
		var h *gsql.MultiHandle
		var err error
		if ckpt != nil {
			h, err = m.Restore(queries[i], shards, ckpt, sink)
		} else {
			h, err = m.Attach(queries[i], shards, sink)
		}
		if err != nil {
			t.Fatalf("soak attach %d: %v", i, err)
		}
		return h
	}

	m1, err := gsql.NewMultiRun(e, "TCP", isoOpts(iso))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]gsql.Tuple, len(queries))
	handles := make([]*gsql.MultiHandle, len(queries))
	for i := range queries {
		i := i
		handles[i] = attach(m1, i, func(r gsql.Tuple) error { rows[i] = append(rows[i], r); return nil }, nil)
	}

	// The deterministic tape: poisons attach a third of the way in and must
	// all be fenced before the cut.
	p1 := cutAt / 3
	for _, tp := range tuples[:p1] {
		if err := m1.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	var poisonHandles []*gsql.MultiHandle
	if poisons {
		specs := []struct {
			q      string
			shards int
		}{
			{poisonErrQuery, 0},
			{poisonCardQuery, 0},
			{poisonBoomQuery, 0},
			{`select tb, sum(len) from TCP where len / (len - len) > 0 group by time/60 as tb`, 2},
		}
		for _, sp := range specs {
			h, err := m1.Attach(sp.q, sp.shards, func(gsql.Tuple) error { return nil })
			if err != nil {
				t.Fatalf("attach poison %q: %v", sp.q, err)
			}
			poisonHandles = append(poisonHandles, h)
		}
	}
	for _, tp := range tuples[p1:cutAt] {
		if err := m1.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range poisonHandles {
		if q, _ := h.Quarantined(); !q {
			t.Fatalf("poison %d was not quarantined before the cut", i)
		}
	}
	if poisons {
		if s := m1.MultiStats(); s.Quarantined != len(poisonHandles) {
			t.Fatalf("Quarantined = %d, want %d", s.Quarantined, len(poisonHandles))
		}
	}

	// Kill: checkpoint every survivor and drop the runtime on the floor.
	ckpts := make([][]byte, len(queries))
	for i, h := range handles {
		if ckpts[i], err = h.Checkpoint(); err != nil {
			t.Fatalf("cut checkpoint %d: %v", i, err)
		}
	}

	// Recover: a fresh runtime, every survivor restored. The quarantined
	// poisons stay dormant (the service layer owns their specs) — the
	// rebuilt catalog never re-attaches them.
	m2, err := gsql.NewMultiRun(e, "TCP", isoOpts(iso))
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		i := i
		handles[i] = attach(m2, i, func(r gsql.Tuple) error { rows[i] = append(rows[i], r); return nil }, ckpts[i])
	}
	for _, tp := range tuples[cutAt:] {
		if err := m2.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	finals := make([][]byte, len(queries))
	for i, h := range handles {
		if finals[i], err = h.Checkpoint(); err != nil {
			t.Fatalf("final checkpoint %d: %v", i, err)
		}
	}
	if err := m2.CloseAll(); err != nil {
		t.Fatal(err)
	}
	return rows, finals
}

func TestMultiPoisonSoak(t *testing.T) {
	n := 1000
	streamLen := 9_000
	if testing.Short() {
		n, streamLen = 200, 4_000
	}
	queries := make([]string, n)
	for i := range queries {
		queries[i] = soakCatalogQuery(i)
	}
	tuples := soakCatalogTrace(streamLen, 11)
	cutAt := streamLen / 2

	poisoned, poisonedCkpts := runSoakCatalog(t, queries, tuples, cutAt, true)
	oracle, oracleCkpts := runSoakCatalog(t, queries, tuples, cutAt, false)

	emitted := 0
	for i := range queries {
		requireIdentical(t, oracle[i], poisoned[i], fmt.Sprintf("soak survivor %d", i))
		if !bytes.Equal(oracleCkpts[i], poisonedCkpts[i]) {
			t.Errorf("soak survivor %d: final checkpoint differs from the fault-free oracle", i)
		}
		emitted += len(poisoned[i])
	}
	if emitted == 0 {
		t.Fatal("soak emitted no rows; the fixture is too small to prove anything")
	}
}
