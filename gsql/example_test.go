package gsql_test

import (
	"fmt"

	"forwarddecay/gsql"
)

// The paper's §IV-A decayed-count query runs unmodified: quadratic forward
// decay expressed in plain arithmetic, per-minute tumbling buckets via
// `group by time/60`.
func Example() {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		fmt.Println(err)
		return
	}
	st, err := e.Prepare(`
		select tb, dstIP, destPort,
		       sum(float(len)*(time % 60)*(time % 60))/3600
		from TCP
		group by time/60 as tb, dstIP, destPort`)
	if err != nil {
		fmt.Println(err)
		return
	}

	// The Example 1 stream as packets to destination 10.0.0.1:80 within
	// minute 10 (seconds 603..608 → in-bucket offsets 3..8).
	pkt := func(sec, ln int64) gsql.Tuple {
		return gsql.Tuple{gsql.Int(sec), gsql.Float(float64(sec)), gsql.Int(1),
			gsql.Int(0x0a000001), gsql.Int(999), gsql.Int(80), gsql.Int(6), gsql.Int(ln)}
	}
	tuples := []gsql.Tuple{
		pkt(605, 4), pkt(607, 8), pkt(603, 3), pkt(608, 6), pkt(604, 4),
	}
	rows, err := st.Execute(gsql.SliceSource(tuples), gsql.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range rows {
		fmt.Printf("bucket=%s decayed-bytes=%.6f\n", r[0], r[3].AsFloat())
	}
	// Σ len·(sec%60)² / 3600 = (4·25 + 8·49 + 3·9 + 6·64 + 4·16)/3600.
	// Output: bucket=10 decayed-bytes=0.268611
}

// UDAF registration needs no query-language changes: a custom aggregate is
// called like a builtin.
func ExampleEngine_RegisterUDAF() {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		fmt.Println(err)
		return
	}
	err := e.RegisterUDAF(gsql.AggSpec{
		Name: "second", MinArgs: 1, MaxArgs: 1,
		New: func() gsql.Aggregator { return &secondLargest{} },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	st, err := e.Prepare(`select second(len) from TCP`)
	if err != nil {
		fmt.Println(err)
		return
	}
	var tuples []gsql.Tuple
	for _, ln := range []int64{100, 900, 500} {
		tuples = append(tuples, gsql.Tuple{gsql.Int(0), gsql.Float(0), gsql.Int(0),
			gsql.Int(0), gsql.Int(0), gsql.Int(0), gsql.Int(6), gsql.Int(ln)})
	}
	rows, _ := st.Execute(gsql.SliceSource(tuples), gsql.Options{})
	fmt.Println(rows[0][0])
	// Output: 500
}

// secondLargest is a toy UDAF returning the second-largest value seen.
type secondLargest struct{ a, b int64 }

func (s *secondLargest) Step(args []gsql.Value) error {
	v := args[0].AsInt()
	switch {
	case v > s.a:
		s.a, s.b = v, s.a
	case v > s.b:
		s.b = v
	}
	return nil
}

func (s *secondLargest) Final() gsql.Value { return gsql.Int(s.b) }
