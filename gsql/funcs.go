package gsql

import (
	"fmt"
	"math"
)

// scalarFunc is a builtin scalar function.
type scalarFunc struct {
	nargs int
	fn    func(args []Value) (Value, error)
}

// builtinFuncs are the scalar functions available in expressions. They
// cover everything the paper's queries need — notably exp(), used to feed
// exponential forward-decay weights to sampling UDAFs, as in
// "PRISAMP(srcIP, exp(time % 60))".
var builtinFuncs = map[string]scalarFunc{
	"exp": float1(math.Exp),
	"ln": {1, func(a []Value) (Value, error) {
		x := a[0].AsFloat()
		if x <= 0 {
			return Null, fmt.Errorf("gsql: ln of non-positive value %g", x)
		}
		return Float(math.Log(x)), nil
	}},
	"log2": {1, func(a []Value) (Value, error) {
		x := a[0].AsFloat()
		if x <= 0 {
			return Null, fmt.Errorf("gsql: log2 of non-positive value %g", x)
		}
		return Float(math.Log2(x)), nil
	}},
	"sqrt": {1, func(a []Value) (Value, error) {
		x := a[0].AsFloat()
		if x < 0 {
			return Null, fmt.Errorf("gsql: sqrt of negative value %g", x)
		}
		return Float(math.Sqrt(x)), nil
	}},
	"pow": {2, func(a []Value) (Value, error) {
		return Float(math.Pow(a[0].AsFloat(), a[1].AsFloat())), nil
	}},
	"abs": {1, func(a []Value) (Value, error) {
		if a[0].T == TInt {
			if a[0].I < 0 {
				return Int(-a[0].I), nil
			}
			return a[0], nil
		}
		return Float(math.Abs(a[0].AsFloat())), nil
	}},
	"floor": float1(math.Floor),
	"ceil":  float1(math.Ceil),
	// float(x) forces float arithmetic where integer semantics would
	// otherwise truncate.
	"float": {1, func(a []Value) (Value, error) { return Float(a[0].AsFloat()), nil }},
	// int(x) truncates to integer.
	"int": {1, func(a []Value) (Value, error) { return Int(a[0].AsInt()), nil }},
}

func float1(f func(float64) float64) scalarFunc {
	return scalarFunc{1, func(a []Value) (Value, error) {
		return Float(f(a[0].AsFloat())), nil
	}}
}
