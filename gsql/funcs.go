package gsql

import (
	"fmt"
	"math"
)

// scalarFunc is a builtin scalar function. Unary functions are expressed as
// fn1 so the compiler can call them without materializing an argument slice
// (the hot aggregation path evaluates these per tuple); fn covers every
// other arity.
type scalarFunc struct {
	nargs int
	fn    func(args []Value) (Value, error)
	fn1   func(a Value) (Value, error)
}

// builtinFuncs are the scalar functions available in expressions. They
// cover everything the paper's queries need — notably exp(), used to feed
// exponential forward-decay weights to sampling UDAFs, as in
// "PRISAMP(srcIP, exp(time % 60))".
var builtinFuncs = map[string]scalarFunc{
	"exp": float1(math.Exp),
	"ln": unary(func(a Value) (Value, error) {
		x := a.AsFloat()
		if x <= 0 {
			return Null, fmt.Errorf("gsql: ln of non-positive value %g", x)
		}
		return Float(math.Log(x)), nil
	}),
	"log2": unary(func(a Value) (Value, error) {
		x := a.AsFloat()
		if x <= 0 {
			return Null, fmt.Errorf("gsql: log2 of non-positive value %g", x)
		}
		return Float(math.Log2(x)), nil
	}),
	"sqrt": unary(func(a Value) (Value, error) {
		x := a.AsFloat()
		if x < 0 {
			return Null, fmt.Errorf("gsql: sqrt of negative value %g", x)
		}
		return Float(math.Sqrt(x)), nil
	}),
	"pow": {nargs: 2, fn: func(a []Value) (Value, error) {
		return Float(math.Pow(a[0].AsFloat(), a[1].AsFloat())), nil
	}},
	"abs": unary(func(a Value) (Value, error) {
		if a.T == TInt {
			if a.I < 0 {
				return Int(-a.I), nil
			}
			return a, nil
		}
		return Float(math.Abs(a.AsFloat())), nil
	}),
	"floor": float1(math.Floor),
	"ceil":  float1(math.Ceil),
	// float(x) forces float arithmetic where integer semantics would
	// otherwise truncate.
	"float": unary(func(a Value) (Value, error) { return Float(a.AsFloat()), nil }),
	// int(x) truncates to integer.
	"int": unary(func(a Value) (Value, error) { return Int(a.AsInt()), nil }),
}

// unary wraps a single-argument function as a scalarFunc.
func unary(f func(Value) (Value, error)) scalarFunc {
	return scalarFunc{nargs: 1, fn1: f}
}

func float1(f func(float64) float64) scalarFunc {
	return unary(func(a Value) (Value, error) {
		return Float(f(a.AsFloat())), nil
	})
}
