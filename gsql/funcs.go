package gsql

import (
	"fmt"
	"math"
)

// scalarFunc is a builtin scalar function. Unary functions are expressed as
// fn1 so the compiler can call them without materializing an argument slice
// (the hot aggregation path evaluates these per tuple); fn covers every
// other arity. ret declares the statically known result type (TNull when it
// depends on the inputs), which the compiler uses to specialize enclosing
// expressions.
type scalarFunc struct {
	nargs int
	fn    func(args []Value) (Value, error)
	fn1   func(a Value) (Value, error)
	ret   Type
	// spec, if non-nil, builds an evaluator specialized to a statically
	// known argument type, bypassing the fn1 indirection and any runtime
	// type switch; returning nil declines the specialization.
	spec func(argType Type, arg evalFn) evalFn
}

// builtinFuncs are the scalar functions available in expressions. They
// cover everything the paper's queries need — notably exp(), used to feed
// exponential forward-decay weights to sampling UDAFs, as in
// "PRISAMP(srcIP, exp(time % 60))".
var builtinFuncs = map[string]scalarFunc{
	"exp": float1(math.Exp),
	"ln": unaryT(TFloat, func(a Value) (Value, error) {
		x := a.AsFloat()
		if x <= 0 {
			return Null, fmt.Errorf("gsql: ln of non-positive value %g", x)
		}
		return Float(math.Log(x)), nil
	}),
	"log2": unaryT(TFloat, func(a Value) (Value, error) {
		x := a.AsFloat()
		if x <= 0 {
			return Null, fmt.Errorf("gsql: log2 of non-positive value %g", x)
		}
		return Float(math.Log2(x)), nil
	}),
	"sqrt": unaryT(TFloat, func(a Value) (Value, error) {
		x := a.AsFloat()
		if x < 0 {
			return Null, fmt.Errorf("gsql: sqrt of negative value %g", x)
		}
		return Float(math.Sqrt(x)), nil
	}),
	"pow": {nargs: 2, ret: TFloat, fn: func(a []Value) (Value, error) {
		return Float(math.Pow(a[0].AsFloat(), a[1].AsFloat())), nil
	}},
	"abs": unary(func(a Value) (Value, error) {
		if a.T == TInt {
			if a.I < 0 {
				return Int(-a.I), nil
			}
			return a, nil
		}
		return Float(math.Abs(a.AsFloat())), nil
	}),
	"floor": float1(math.Floor),
	"ceil":  float1(math.Ceil),
	// float(x) forces float arithmetic where integer semantics would
	// otherwise truncate.
	"float": {nargs: 1, ret: TFloat,
		fn1:  func(a Value) (Value, error) { return Float(a.AsFloat()), nil },
		spec: specConvert(TFloat)},
	// int(x) truncates to integer.
	"int": {nargs: 1, ret: TInt,
		fn1:  func(a Value) (Value, error) { return Int(a.AsInt()), nil },
		spec: specConvert(TInt)},
}

// specConvert builds the static specializer for the float()/int() numeric
// conversions: when the argument type is known the conversion compiles to a
// direct field load, with semantics identical to AsFloat/AsInt.
func specConvert(to Type) func(argType Type, arg evalFn) evalFn {
	return func(argType Type, arg evalFn) evalFn {
		switch {
		case to == TFloat && argType == TFloat:
			return func(rec Tuple) (Value, error) {
				v, err := arg(rec)
				if err != nil {
					return Null, err
				}
				return Float(v.F), nil
			}
		case to == TFloat && (argType == TInt || argType == TBool):
			return func(rec Tuple) (Value, error) {
				v, err := arg(rec)
				if err != nil {
					return Null, err
				}
				return Float(float64(v.I)), nil
			}
		case to == TInt && (argType == TInt || argType == TBool):
			return func(rec Tuple) (Value, error) {
				v, err := arg(rec)
				if err != nil {
					return Null, err
				}
				return Int(v.I), nil
			}
		case to == TInt && argType == TFloat:
			return func(rec Tuple) (Value, error) {
				v, err := arg(rec)
				if err != nil {
					return Null, err
				}
				return Int(int64(v.F)), nil
			}
		}
		return nil
	}
}

// unary wraps a single-argument function as a scalarFunc whose result type
// depends on the input (ret stays TNull = unknown).
func unary(f func(Value) (Value, error)) scalarFunc {
	return scalarFunc{nargs: 1, fn1: f}
}

// unaryT wraps a single-argument function with a statically known result
// type.
func unaryT(ret Type, f func(Value) (Value, error)) scalarFunc {
	return scalarFunc{nargs: 1, fn1: f, ret: ret}
}

func float1(f func(float64) float64) scalarFunc {
	return unaryT(TFloat, func(a Value) (Value, error) {
		return Float(f(a.AsFloat())), nil
	})
}
