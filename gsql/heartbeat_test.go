package gsql

import "testing"

// TestHeartbeatClosesBuckets verifies GS-style heartbeats: when traffic
// pauses, a heartbeat with a newer timestamp closes and emits the previous
// time bucket without waiting for the next tuple.
func TestHeartbeatClosesBuckets(t *testing.T) {
	st, err := mkEngine(t).Prepare(`select tb, count(*) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Tuple
	run := st.Start(func(r Tuple) error { rows = append(rows, r); return nil }, Options{})
	run.Push(pkt(10, 1, 80, 1))
	run.Push(pkt(20, 1, 80, 1))
	if err := run.Heartbeat(Int(30)); err != nil { // same bucket: no flush
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("heartbeat within the bucket flushed early: %v", rows)
	}
	if err := run.Heartbeat(Int(75)); err != nil { // next bucket: flush
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].AsInt() != 2 {
		t.Fatalf("after heartbeat: %v", rows)
	}
	// A tuple arriving in the heartbeat's bucket aggregates normally.
	run.Push(pkt(80, 1, 80, 1))
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][1].AsInt() != 1 {
		t.Fatalf("after Close: %v", rows)
	}
}

// TestHeartbeatBeforeAnyTuple sets the initial bucket so that earlier
// buckets are (correctly) treated as already closed.
func TestHeartbeatBeforeAnyTuple(t *testing.T) {
	st, err := mkEngine(t).Prepare(`select tb, count(*) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Tuple
	run := st.Start(func(r Tuple) error { rows = append(rows, r); return nil }, Options{})
	if err := run.Heartbeat(Int(0)); err != nil {
		t.Fatal(err)
	}
	run.Push(pkt(10, 1, 80, 1))
	run.Push(pkt(61, 1, 80, 1))
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestHeartbeatNonTemporalNoOp checks heartbeats are harmless for queries
// without time buckets.
func TestHeartbeatNonTemporalNoOp(t *testing.T) {
	st, err := mkEngine(t).Prepare(`select dstIP, count(*) from TCP group by dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Tuple
	run := st.Start(func(r Tuple) error { rows = append(rows, r); return nil }, Options{})
	run.Push(pkt(1, 1, 80, 1))
	if err := run.Heartbeat(Int(100)); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("non-temporal heartbeat flushed: %v", rows)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestLateTupleReopensBucket documents the engine's lateness policy: a
// tuple arriving after its bucket closed is aggregated under its own
// (old) bucket key and emitted at the next flush — late data is never
// silently dropped, it surfaces as a supplementary row.
func TestLateTupleReopensBucket(t *testing.T) {
	st, err := mkEngine(t).Prepare(`select tb, count(*) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Tuple
	run := st.Start(func(r Tuple) error { rows = append(rows, r); return nil }, Options{})
	run.Push(pkt(10, 1, 80, 1))
	run.Push(pkt(70, 1, 80, 1)) // closes bucket 0
	run.Push(pkt(20, 1, 80, 1)) // LATE: belongs to bucket 0
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	// Three rows total: bucket 0 (on close), then bucket 0 again (the late
	// tuple) and bucket 1 at Close, in key order.
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].AsInt() != 0 || rows[0][1].AsInt() != 1 {
		t.Errorf("first flush: %v", rows[0])
	}
	if rows[1][0].AsInt() != 0 || rows[1][1].AsInt() != 1 {
		t.Errorf("late supplementary row: %v", rows[1])
	}
	if rows[2][0].AsInt() != 1 || rows[2][1].AsInt() != 1 {
		t.Errorf("final bucket: %v", rows[2])
	}
}

// TestHeartbeatWithScaledBucketExpr exercises temporalOf through an
// arithmetic bucket expression.
func TestHeartbeatWithScaledBucketExpr(t *testing.T) {
	st, err := mkEngine(t).Prepare(`select tb, count(*) from TCP group by (time+30)/10 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Temporal() {
		t.Fatal("(time+30)/10 must be temporal")
	}
	var rows []Tuple
	run := st.Start(func(r Tuple) error { rows = append(rows, r); return nil }, Options{})
	run.Push(pkt(5, 1, 80, 1))                     // bucket (5+30)/10 = 3
	if err := run.Heartbeat(Int(15)); err != nil { // bucket 4: flush
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}
