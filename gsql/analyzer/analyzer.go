// Package analyzer holds the plan-time sharing machinery of the multi-query
// runtime: a hash-consing interner that maps canonical expression strings to
// dense slot ids, and a reference-counted catalog that dedupes compiled
// statements by query text. The split mirrors the catalog/analyzer layering
// of go-mysql-server: gsql owns parsing, compilation and execution; this
// package owns the identity questions ("have we seen this expression?",
// "is this statement already compiled?") and the sharing statistics the
// service exports as gauges.
//
// Canonical keys come from the gsql AST's String() form — lowercased and
// fully parenthesized — so two expressions share a slot exactly when their
// parse trees are structurally identical. Slots are reference-counted:
// every compiled plan that reads a slot holds one reference (Retain), and
// when the last referencing query detaches the slot id returns to a free
// list for reuse (Release). A long-lived server under attach/detach churn
// therefore keeps the interner sized to its live catalog, not its history.
package analyzer

// Interner hash-conses canonical expression strings into dense slot ids.
// The zero value is not ready; use NewInterner. Not safe for concurrent use
// (the multi-query runtime is single-producer, like a gsql Run).
type Interner struct {
	ids  map[string]int
	keys []string
	refs []int
	// free holds slot ids released back for reuse; ids stay dense under
	// churn instead of growing with the attach history.
	free []int
	live int
	// hits counts Intern calls that found an existing slot (structural
	// sharing across queries at plan time); misses counts fresh slots.
	hits, misses uint64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: map[string]int{}}
}

// Intern returns the slot id for a canonical key, allocating a dense id
// (reusing a released one when available) on first sight. fresh reports
// whether the slot was just created. A fresh slot starts with a reference
// count of zero: the caller decides with Retain whether anything pins it.
func (in *Interner) Intern(key string) (id int, fresh bool) {
	if id, ok := in.ids[key]; ok {
		in.hits++
		return id, false
	}
	if n := len(in.free); n > 0 {
		id = in.free[n-1]
		in.free = in.free[:n-1]
		in.keys[id] = key
	} else {
		id = len(in.keys)
		in.keys = append(in.keys, key)
		in.refs = append(in.refs, 0)
	}
	in.ids[key] = id
	in.live++
	in.misses++
	return id, true
}

// Retain adds one reference to a live slot. It panics on ids never returned
// by Intern, as a slice index would.
func (in *Interner) Retain(id int) { in.refs[id]++ }

// Release drops one reference. When the count reaches zero (a slot that was
// interned but never retained frees on its first Release) the key is
// forgotten and the id is pushed onto the free list for reuse; it reports
// whether the slot was freed. The caller must drop its own id-indexed state
// for freed slots before the id can be re-interned.
func (in *Interner) Release(id int) bool {
	if in.refs[id]--; in.refs[id] > 0 {
		return false
	}
	delete(in.ids, in.keys[id])
	in.keys[id] = ""
	in.refs[id] = 0
	in.free = append(in.free, id)
	in.live--
	return true
}

// Refs returns the current reference count of a slot id.
func (in *Interner) Refs(id int) int { return in.refs[id] }

// Lookup returns the slot id for a key without interning it.
func (in *Interner) Lookup(key string) (int, bool) {
	id, ok := in.ids[key]
	return id, ok
}

// Len returns the number of live interned keys (freed slots excluded).
func (in *Interner) Len() int { return in.live }

// Cap returns the high-water slot count — the size of the id-indexed tables
// a caller mirrors (live slots plus the free list).
func (in *Interner) Cap() int { return len(in.keys) }

// Key returns the canonical key of a slot id ("" for a freed slot); it
// panics on ids never returned by Intern, as a slice index would.
func (in *Interner) Key(id int) string { return in.keys[id] }

// Stats returns the interner's plan-time sharing counters.
func (in *Interner) Stats() Stats {
	return Stats{Distinct: in.live, Hits: in.hits, Misses: in.misses}
}

// Stats summarizes sharing: Distinct is the population (slots or catalog
// entries), Hits/Misses the reuse counters.
type Stats struct {
	Distinct int
	Hits     uint64
	Misses   uint64
}

// HitRatio returns Hits/(Hits+Misses), or 0 when nothing was looked up.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Entry is one reference-counted catalog entry. Data is the caller's
// compiled artifact (gsql stores a *Statement); the catalog never inspects
// it.
type Entry struct {
	Key  string
	Refs int
	Data any
}

// Catalog dedupes compiled artifacts by exact key. Like the interner it
// releases entries: a statement whose every attach has detached is dropped,
// so the catalog tracks the live query population, not its history.
type Catalog struct {
	entries      map[string]*Entry
	hits, misses uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: map[string]*Entry{}}
}

// Acquire returns the entry for key with its refcount bumped, creating it
// (Refs=1, Data=nil) on first sight. fresh reports a new entry — the caller
// must then fill Data before the next Acquire can observe it.
func (c *Catalog) Acquire(key string) (e *Entry, fresh bool) {
	if e := c.entries[key]; e != nil {
		e.Refs++
		c.hits++
		return e, false
	}
	e = &Entry{Key: key, Refs: 1}
	c.entries[key] = e
	c.misses++
	return e, true
}

// Get returns the live entry for key without touching its refcount, or nil.
func (c *Catalog) Get(key string) *Entry { return c.entries[key] }

// Release drops one reference; the entry is removed when the count reaches
// zero. It reports whether the entry was removed, and is a no-op for
// unknown keys.
func (c *Catalog) Release(key string) bool {
	e := c.entries[key]
	if e == nil {
		return false
	}
	if e.Refs--; e.Refs > 0 {
		return false
	}
	delete(c.entries, key)
	return true
}

// Len returns the number of live entries (distinct attached texts).
func (c *Catalog) Len() int { return len(c.entries) }

// Stats returns the catalog's dedup counters.
func (c *Catalog) Stats() Stats {
	return Stats{Distinct: len(c.entries), Hits: c.hits, Misses: c.misses}
}
