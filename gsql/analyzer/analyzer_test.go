package analyzer

import "testing"

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	a, fresh := in.Intern("a")
	if a != 0 || !fresh {
		t.Fatalf("first intern = (%d, %v), want (0, true)", a, fresh)
	}
	b, fresh := in.Intern("b")
	if b != 1 || !fresh {
		t.Fatalf("second intern = (%d, %v), want (1, true)", b, fresh)
	}
	a2, fresh := in.Intern("a")
	if a2 != a || fresh {
		t.Fatalf("re-intern = (%d, %v), want (%d, false)", a2, fresh, a)
	}
	if id, ok := in.Lookup("b"); !ok || id != b {
		t.Fatalf("lookup b = (%d, %v)", id, ok)
	}
	if _, ok := in.Lookup("c"); ok {
		t.Fatal("lookup of an unseen key succeeded")
	}
	if in.Len() != 2 || in.Key(0) != "a" || in.Key(1) != "b" {
		t.Fatalf("population wrong: len=%d", in.Len())
	}
	s := in.Stats()
	if s.Distinct != 2 || s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if r := s.HitRatio(); r <= 0.33 || r >= 0.34 {
		t.Fatalf("hit ratio = %v, want 1/3", r)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty hit ratio must be 0")
	}
}

func TestInternerRetainRelease(t *testing.T) {
	in := NewInterner()
	a, _ := in.Intern("a")
	b, _ := in.Intern("b")
	in.Retain(a)
	in.Retain(a)
	in.Retain(b)
	if in.Refs(a) != 2 || in.Refs(b) != 1 {
		t.Fatalf("refs = (%d, %d), want (2, 1)", in.Refs(a), in.Refs(b))
	}
	if in.Release(a) {
		t.Fatal("slot freed while a reference remains")
	}
	if !in.Release(a) {
		t.Fatal("slot not freed at refcount zero")
	}
	if in.Len() != 1 {
		t.Fatalf("live = %d after free, want 1", in.Len())
	}
	if _, ok := in.Lookup("a"); ok {
		t.Fatal("freed key still resolves")
	}
	if in.Key(a) != "" {
		t.Fatalf("freed slot key = %q, want empty", in.Key(a))
	}
	// The freed id is reused for the next fresh key; capacity stays flat.
	c, fresh := in.Intern("c")
	if !fresh || c != a {
		t.Fatalf("reuse intern = (%d, %v), want (%d, true)", c, fresh, a)
	}
	if in.Cap() != 2 || in.Len() != 2 {
		t.Fatalf("cap=%d live=%d after reuse, want 2, 2", in.Cap(), in.Len())
	}
	// An unretained slot frees on its first Release (failed-compile
	// placeholders use this).
	d, _ := in.Intern("d")
	if !in.Release(d) {
		t.Fatal("unretained slot did not free on first release")
	}
	if in.Len() != 2 {
		t.Fatalf("live = %d, want 2", in.Len())
	}
}

// TestInternerChurnReturnsToBaseline: a long attach/detach churn must leave
// the interner at its pre-churn size — the leak regression this package's
// refcounting exists to prevent.
func TestInternerChurnReturnsToBaseline(t *testing.T) {
	in := NewInterner()
	base, _ := in.Intern("resident")
	in.Retain(base)
	baseLive := in.Len()
	for i := 0; i < 10_000; i++ {
		key := "churn-" + string(rune('a'+i%26)) + "-" + itoa(i)
		id, fresh := in.Intern(key)
		if !fresh {
			t.Fatalf("churn key %q was already interned", key)
		}
		in.Retain(id)
		if !in.Release(id) {
			t.Fatalf("churn slot %d did not free", id)
		}
	}
	if in.Len() != baseLive {
		t.Fatalf("live = %d after churn, want baseline %d", in.Len(), baseLive)
	}
	if in.Cap() > baseLive+1 {
		t.Fatalf("cap = %d after churn, want at most %d (ids must be reused)", in.Cap(), baseLive+1)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestCatalogGet(t *testing.T) {
	c := NewCatalog()
	if c.Get("q") != nil {
		t.Fatal("Get on an empty catalog returned an entry")
	}
	e, _ := c.Acquire("q")
	e.Data = "compiled"
	got := c.Get("q")
	if got != e || got.Refs != 1 {
		t.Fatalf("Get = %+v, want the acquired entry with refs untouched", got)
	}
	c.Release("q")
	if c.Get("q") != nil {
		t.Fatal("Get returned a released entry")
	}
}

func TestCatalogRefcounts(t *testing.T) {
	c := NewCatalog()
	e1, fresh := c.Acquire("q")
	if !fresh || e1.Refs != 1 {
		t.Fatalf("first acquire: fresh=%v refs=%d", fresh, e1.Refs)
	}
	e1.Data = "compiled"
	e2, fresh := c.Acquire("q")
	if fresh || e2 != e1 || e2.Refs != 2 || e2.Data != "compiled" {
		t.Fatalf("second acquire: fresh=%v refs=%d", fresh, e2.Refs)
	}
	if c.Release("q") {
		t.Fatal("entry removed while a reference remains")
	}
	if !c.Release("q") {
		t.Fatal("entry not removed at refcount zero")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after full release", c.Len())
	}
	if c.Release("q") || c.Release("never") {
		t.Fatal("release of an absent key reported removal")
	}
	// Re-acquire after release is fresh again.
	if _, fresh := c.Acquire("q"); !fresh {
		t.Fatal("re-acquire after release was not fresh")
	}
	s := c.Stats()
	if s.Distinct != 1 || s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}
