package analyzer

import "testing"

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	a, fresh := in.Intern("a")
	if a != 0 || !fresh {
		t.Fatalf("first intern = (%d, %v), want (0, true)", a, fresh)
	}
	b, fresh := in.Intern("b")
	if b != 1 || !fresh {
		t.Fatalf("second intern = (%d, %v), want (1, true)", b, fresh)
	}
	a2, fresh := in.Intern("a")
	if a2 != a || fresh {
		t.Fatalf("re-intern = (%d, %v), want (%d, false)", a2, fresh, a)
	}
	if id, ok := in.Lookup("b"); !ok || id != b {
		t.Fatalf("lookup b = (%d, %v)", id, ok)
	}
	if _, ok := in.Lookup("c"); ok {
		t.Fatal("lookup of an unseen key succeeded")
	}
	if in.Len() != 2 || in.Key(0) != "a" || in.Key(1) != "b" {
		t.Fatalf("population wrong: len=%d", in.Len())
	}
	s := in.Stats()
	if s.Distinct != 2 || s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if r := s.HitRatio(); r <= 0.33 || r >= 0.34 {
		t.Fatalf("hit ratio = %v, want 1/3", r)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty hit ratio must be 0")
	}
}

func TestCatalogRefcounts(t *testing.T) {
	c := NewCatalog()
	e1, fresh := c.Acquire("q")
	if !fresh || e1.Refs != 1 {
		t.Fatalf("first acquire: fresh=%v refs=%d", fresh, e1.Refs)
	}
	e1.Data = "compiled"
	e2, fresh := c.Acquire("q")
	if fresh || e2 != e1 || e2.Refs != 2 || e2.Data != "compiled" {
		t.Fatalf("second acquire: fresh=%v refs=%d", fresh, e2.Refs)
	}
	if c.Release("q") {
		t.Fatal("entry removed while a reference remains")
	}
	if !c.Release("q") {
		t.Fatal("entry not removed at refcount zero")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after full release", c.Len())
	}
	if c.Release("q") || c.Release("never") {
		t.Fatal("release of an absent key reported removal")
	}
	// Re-acquire after release is fresh again.
	if _, fresh := c.Acquire("q"); !fresh {
		t.Fatal("re-acquire after release was not fresh")
	}
	s := c.Stats()
	if s.Distinct != 1 || s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}
