package gsql

import (
	"fmt"
)

// Aggregator accumulates values for one group. Implementations of the
// builtin aggregates and of user-defined aggregate functions (UDAFs) both
// satisfy this interface.
type Aggregator interface {
	// Step folds in one tuple's argument values (empty for count(*)).
	Step(args []Value) error
	// Final produces the aggregate result.
	Final() Value
}

// BatchStepper is implemented by aggregators that can fold a run of tuples
// in one call. StepBatch(args, n, stride) must be bit-for-bit equivalent to
// n sequential Step(args[i*stride : i*stride+stride]) calls (stride 0 means
// every row steps with a nil argument slice, as count(*) does). The batch
// executor probes its group once per key run and hands the whole run here,
// amortizing the interface dispatch and letting decayed implementations
// memoize the per-timestamp decay weight across the run.
//
// If a mid-run Step would error, StepBatch must return that same error; the
// aggregator's state after the error may reflect more or fewer of the run's
// rows than the scalar sequence would (an erroring run poisons its query
// either way — the error surfaces identically, which is the contract).
type BatchStepper interface {
	Aggregator
	StepBatch(args []Value, n, stride int) error
}

// stepBatch folds a run through StepBatch when available, or a scalar loop.
func stepBatch(a Aggregator, args []Value, n, stride int) error {
	if bs, ok := a.(BatchStepper); ok {
		return bs.StepBatch(args, n, stride)
	}
	if stride == 0 {
		for i := 0; i < n; i++ {
			if err := a.Step(nil); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if err := a.Step(args[i*stride : i*stride+stride]); err != nil {
			return err
		}
	}
	return nil
}

// Merger is implemented by aggregators that can combine partial states.
// Only queries whose every aggregate is a Merger run under the two-level
// (low/high) split; others run at the high level only, exactly as the
// paper's UDAFs do.
type Merger interface {
	Aggregator
	// Merge folds another partial aggregate of the same kind into this one.
	Merge(other Aggregator) error
}

// AggSpec describes an aggregate function: its name, arity and factory.
// Mergeable must be set only if the factory's aggregators implement Merger.
type AggSpec struct {
	// Name is the function name used in queries (case-insensitive).
	Name string
	// MinArgs and MaxArgs bound the argument count (count(*) passes 0).
	MinArgs, MaxArgs int
	// New creates an empty aggregator for one group.
	New func() Aggregator
	// Mergeable enables the two-level split for this aggregate.
	Mergeable bool
}

// mergeAggs folds the src partial aggregates into dst, slot by slot. Both
// sides must come from the same plan; it is the HFTA-side combine step shared
// by the two-level eviction path and the sharded parallel runtime.
func mergeAggs(dst, src []Aggregator) error {
	for i, a := range dst {
		m, ok := a.(Merger)
		if !ok {
			return fmt.Errorf("gsql: aggregate %T does not support merging", a)
		}
		if err := m.Merge(src[i]); err != nil {
			return err
		}
	}
	return nil
}

// builtinAggs returns the specs of the builtin aggregates.
func builtinAggs() map[string]AggSpec {
	mk := func(name string, min, max int, f func() Aggregator) AggSpec {
		return AggSpec{Name: name, MinArgs: min, MaxArgs: max, New: f, Mergeable: true}
	}
	return map[string]AggSpec{
		"count": mk("count", 0, 1, func() Aggregator { return &countAgg{} }),
		"sum":   mk("sum", 1, 1, func() Aggregator { return &sumAgg{} }),
		"avg":   mk("avg", 1, 1, func() Aggregator { return &avgAgg{} }),
		"min":   mk("min", 1, 1, func() Aggregator { return &minmaxAgg{min: true} }),
		"max":   mk("max", 1, 1, func() Aggregator { return &minmaxAgg{} }),
	}
}

// countAgg implements count(*) and count(expr) (counting non-NULL values).
type countAgg struct{ n int64 }

func (c *countAgg) Step(args []Value) error {
	if len(args) == 0 || !args[0].IsNull() {
		c.n++
	}
	return nil
}

func (c *countAgg) StepBatch(args []Value, n, stride int) error {
	if stride == 0 {
		c.n += int64(n)
		return nil
	}
	for i := 0; i < n; i++ {
		if !args[i*stride].IsNull() {
			c.n++
		}
	}
	return nil
}

func (c *countAgg) Final() Value { return Int(c.n) }

func (c *countAgg) Merge(o Aggregator) error {
	oc, ok := o.(*countAgg)
	if !ok {
		return fmt.Errorf("gsql: count: cannot merge %T", o)
	}
	c.n += oc.n
	return nil
}

// sumAgg implements sum(expr), preserving integer typing for all-integer
// inputs (GS/C semantics).
type sumAgg struct {
	i       int64
	f       float64
	isFloat bool
	seen    bool
}

func (s *sumAgg) Step(args []Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	s.seen = true
	if v.T == TFloat {
		if !s.isFloat {
			s.f = float64(s.i)
			s.isFloat = true
		}
		s.f += v.F
		return nil
	}
	if s.isFloat {
		s.f += float64(v.AsInt())
	} else {
		s.i += v.AsInt()
	}
	return nil
}

func (s *sumAgg) StepBatch(args []Value, n, stride int) error {
	for i := 0; i < n; i++ {
		s.Step(args[i*stride : i*stride+1])
	}
	return nil
}

func (s *sumAgg) Final() Value {
	if !s.seen {
		return Null
	}
	if s.isFloat {
		return Float(s.f)
	}
	return Int(s.i)
}

func (s *sumAgg) Merge(o Aggregator) error {
	os, ok := o.(*sumAgg)
	if !ok {
		return fmt.Errorf("gsql: sum: cannot merge %T", o)
	}
	if !os.seen {
		return nil
	}
	if os.isFloat {
		s.Step([]Value{Float(os.f)})
	} else {
		s.Step([]Value{Int(os.i)})
	}
	return nil
}

// avgAgg implements avg(expr) as a float mean.
type avgAgg struct {
	sum float64
	n   int64
}

func (a *avgAgg) Step(args []Value) error {
	if args[0].IsNull() {
		return nil
	}
	a.sum += args[0].AsFloat()
	a.n++
	return nil
}

func (a *avgAgg) StepBatch(args []Value, n, stride int) error {
	for i := 0; i < n; i++ {
		v := args[i*stride]
		if v.IsNull() {
			continue
		}
		a.sum += v.AsFloat()
		a.n++
	}
	return nil
}

func (a *avgAgg) Final() Value {
	if a.n == 0 {
		return Null
	}
	return Float(a.sum / float64(a.n))
}

func (a *avgAgg) Merge(o Aggregator) error {
	oa, ok := o.(*avgAgg)
	if !ok {
		return fmt.Errorf("gsql: avg: cannot merge %T", o)
	}
	a.sum += oa.sum
	a.n += oa.n
	return nil
}

// minmaxAgg implements min(expr) and max(expr) over numeric or string
// values.
type minmaxAgg struct {
	min  bool
	best Value
	seen bool
}

func (m *minmaxAgg) Step(args []Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	if !m.seen {
		m.best, m.seen = v, true
		return nil
	}
	c, err := compare(v, m.best)
	if err != nil {
		return err
	}
	if m.min && c < 0 || !m.min && c > 0 {
		m.best = v
	}
	return nil
}

func (m *minmaxAgg) StepBatch(args []Value, n, stride int) error {
	for i := 0; i < n; i++ {
		if err := m.Step(args[i*stride : i*stride+1]); err != nil {
			return err
		}
	}
	return nil
}

func (m *minmaxAgg) Final() Value {
	if !m.seen {
		return Null
	}
	return m.best
}

func (m *minmaxAgg) Merge(o Aggregator) error {
	om, ok := o.(*minmaxAgg)
	if !ok {
		return fmt.Errorf("gsql: min/max: cannot merge %T", o)
	}
	if !om.seen {
		return nil
	}
	return m.Step([]Value{om.best})
}

// validateSpec checks an AggSpec before registration.
func validateSpec(s AggSpec) error {
	if s.Name == "" || s.New == nil {
		return fmt.Errorf("gsql: aggregate spec needs a name and factory")
	}
	if s.MinArgs < 0 || s.MaxArgs < s.MinArgs {
		return fmt.Errorf("gsql: aggregate %s: bad arity bounds [%d,%d]", s.Name, s.MinArgs, s.MaxArgs)
	}
	if s.Mergeable {
		if _, ok := s.New().(Merger); !ok {
			return fmt.Errorf("gsql: aggregate %s declared mergeable but does not implement Merger", s.Name)
		}
	}
	return nil
}
