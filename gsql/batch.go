package gsql

import (
	"fmt"
	"math"
	"math/bits"
)

// Batch is a column-oriented block of tuples sharing one schema: one typed
// vector per schema column plus a selection bitmap. The ingest boundary
// fills batches directly from decoded wire frames (netgen.FillBatch) without
// materializing per-tuple Values; Run.PushBatch and ParallelRun.PushBatch
// then execute the compiled plan over the columns with vectorized kernels.
//
// A Batch is a reusable buffer: Reset and refill it between pushes. It is
// owned by a single producer at a time — PushBatch uses the selection bitmap
// as working state, so a batch must not be pushed into two runs concurrently.
type Batch struct {
	schema *Schema
	n      int
	cols   []batchCol

	// sorted marks the batch's monotone (timestamp) columns as verified
	// non-decreasing, letting the epoch scan and the decay-weight memo hit
	// their distinct-timestamp run-length fast path. Append maintains it;
	// direct column fillers must call SetSorted themselves.
	sorted bool

	// sel is the selection bitmap (bit i = row i survives), managed by
	// PushBatch: rows clear as the finite check and the WHERE predicate
	// reject them. Bits at positions >= Len() are always zero.
	sel []uint64
}

// batchCol is one column vector. Exactly one of the slices is active,
// matching the schema column's type: ints for TInt and TBool (0/1),
// fls for TFloat, strs for TString.
type batchCol struct {
	ints []int64
	fls  []float64
	strs []string
}

// NewBatch returns an empty batch for the schema. Every column must have a
// concrete type (TInt, TFloat, TString or TBool).
func NewBatch(s *Schema) (*Batch, error) {
	if s == nil {
		return nil, fmt.Errorf("gsql: batch needs a schema")
	}
	for _, c := range s.Cols {
		switch c.Type {
		case TInt, TFloat, TString, TBool:
		default:
			return nil, fmt.Errorf("gsql: batch column %q has no concrete type", c.Name)
		}
	}
	return &Batch{schema: s, cols: make([]batchCol, len(s.Cols)), sorted: true}, nil
}

// Schema returns the batch's schema.
func (b *Batch) Schema() *Schema { return b.schema }

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// Sorted reports whether the batch's monotone columns are known to be
// non-decreasing across its rows.
func (b *Batch) Sorted() bool { return b.sorted }

// SetSorted declares the batch's monotone columns non-decreasing (or not).
// Direct column fillers must only set true when the property actually holds;
// a false claim breaks the epoch scan's run-skipping exactness.
func (b *Batch) SetSorted(sorted bool) { b.sorted = sorted }

// Reset empties the batch for refilling, keeping column capacity.
func (b *Batch) Reset() {
	b.n = 0
	b.sorted = true
}

// Resize sets the row count to n, growing column storage as needed. Existing
// rows are preserved (Append grows one row at a time); rows beyond the old
// length are unspecified until filled. The sorted flag is cleared (fillers
// that know better call SetSorted). Growth is amortized so per-row Append
// stays O(1).
func (b *Batch) Resize(n int) {
	b.n = n
	b.sorted = false
	for i := range b.cols {
		c := &b.cols[i]
		switch b.schema.Cols[i].Type {
		case TInt, TBool:
			if cap(c.ints) < n {
				c.ints = append(c.ints, make([]int64, n-len(c.ints))...)
			}
			c.ints = c.ints[:n]
		case TFloat:
			if cap(c.fls) < n {
				c.fls = append(c.fls, make([]float64, n-len(c.fls))...)
			}
			c.fls = c.fls[:n]
		case TString:
			if cap(c.strs) < n {
				c.strs = append(c.strs, make([]string, n-len(c.strs))...)
			}
			c.strs = c.strs[:n]
		}
	}
}

// Ints returns the column's int64 vector (TInt and TBool columns). It
// panics on other column types — a programming error, not a data error.
func (b *Batch) Ints(col int) []int64 {
	if t := b.schema.Cols[col].Type; t != TInt && t != TBool {
		panic(fmt.Sprintf("gsql: batch column %d is %s, not int", col, t))
	}
	return b.cols[col].ints
}

// Floats returns the column's float64 vector (TFloat columns only).
func (b *Batch) Floats(col int) []float64 {
	if t := b.schema.Cols[col].Type; t != TFloat {
		panic(fmt.Sprintf("gsql: batch column %d is %s, not float", col, t))
	}
	return b.cols[col].fls
}

// Strings returns the column's string vector (TString columns only).
func (b *Batch) Strings(col int) []string {
	if t := b.schema.Cols[col].Type; t != TString {
		panic(fmt.Sprintf("gsql: batch column %d is %s, not string", col, t))
	}
	return b.cols[col].strs
}

// Append adds one row from a materialized tuple, maintaining the sorted
// flag by comparing monotone columns against the previous row. Values must
// match the schema's declared column types exactly — dynamically typed
// tuples belong on the scalar Push path.
func (b *Batch) Append(t Tuple) error {
	if len(t) != len(b.schema.Cols) {
		return fmt.Errorf("gsql: batch append: tuple has %d values, schema %s has %d columns",
			len(t), b.schema.Name, len(b.schema.Cols))
	}
	for i, v := range t {
		want := b.schema.Cols[i].Type
		if v.T != want {
			return fmt.Errorf("gsql: batch append: column %q expects %s, got %s",
				b.schema.Cols[i].Name, want, v.T)
		}
	}
	n := b.n
	b.Resize(n + 1) // clears sorted; recomputed below
	b.sorted = true
	for i, v := range t {
		c := &b.cols[i]
		switch v.T {
		case TInt, TBool:
			c.ints[n] = v.I
			if b.schema.Cols[i].Monotone && n > 0 && c.ints[n-1] > v.I {
				b.sorted = false
			}
		case TFloat:
			c.fls[n] = v.F
			if b.schema.Cols[i].Monotone && n > 0 && c.fls[n-1] > v.F {
				b.sorted = false
			}
		case TString:
			c.strs[n] = v.S
		}
	}
	return nil
}

// row materializes row i into dst (len == column count), with Values
// bit-identical to the tuple the row was built from.
func (b *Batch) row(i int, dst Tuple) {
	for ci := range b.cols {
		dst[ci] = b.colValue(ci, i)
	}
}

// colValue materializes one cell as a Value.
func (b *Batch) colValue(col, row int) Value {
	c := &b.cols[col]
	switch b.schema.Cols[col].Type {
	case TInt:
		return Int(c.ints[row])
	case TBool:
		return Bool(c.ints[row] != 0)
	case TFloat:
		return Float(c.fls[row])
	default: // TString
		return Str(c.strs[row])
	}
}

// compatibleWith reports whether the batch's schema matches a plan's schema
// structurally (same column count and types — names may differ, e.g. a
// generic packet batch pushed into a stream registered under another name).
func (b *Batch) compatibleWith(s *Schema) bool {
	if b.schema == s {
		return true
	}
	if len(b.schema.Cols) != len(s.Cols) {
		return false
	}
	for i := range s.Cols {
		if b.schema.Cols[i].Type != s.Cols[i].Type {
			return false
		}
	}
	return true
}

// --- selection bitmaps ---

// bitWords returns the word count of an n-bit bitmap.
func bitWords(n int) int { return (n + 63) >> 6 }

// growBits resizes dst to exactly words(n) words (contents unspecified).
func growBits(dst []uint64, n int) []uint64 {
	w := bitWords(n)
	if cap(dst) < w {
		return make([]uint64, w)
	}
	return dst[:w]
}

// markValid sets bits [lo,hi) of dst from src and zeroes the rest. Both
// bitmaps span n rows.
func maskRange(dst, src []uint64, lo, hi int) {
	for w := range dst {
		base := w << 6
		if base+64 <= lo || base >= hi {
			dst[w] = 0
			continue
		}
		m := src[w]
		if base < lo {
			m &^= (1 << uint(lo-base)) - 1
		}
		if base+64 > hi {
			m &= (1 << uint(hi-base)) - 1
		}
		dst[w] = m
	}
}

// popRange counts set bits of sel below row limit.
func popRange(sel []uint64, limit int) int {
	total := 0
	for w := 0; w<<6 < limit; w++ {
		m := sel[w]
		if base := w << 6; base+64 > limit {
			m &= (1 << uint(limit-base)) - 1
		}
		total += bits.OnesCount64(m)
	}
	return total
}

// scanFinite fills valid with one bit per finite row (every float column
// checked, as checkTupleFinite does) and returns the rejected-row count.
// Integer and string columns can never be non-finite, so only TFloat
// columns are scanned.
func (b *Batch) scanFinite(valid []uint64) int {
	for w := range valid {
		valid[w] = ^uint64(0)
	}
	if tail := b.n & 63; tail != 0 {
		valid[len(valid)-1] = (1 << uint(tail)) - 1
	}
	rejected := 0
	for ci := range b.cols {
		if b.schema.Cols[ci].Type != TFloat {
			continue
		}
		fs := b.cols[ci].fls
		for i, x := range fs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				w, bit := i>>6, uint64(1)<<uint(i&63)
				if valid[w]&bit != 0 {
					valid[w] &^= bit
					rejected++
				}
			}
		}
	}
	return rejected
}

// forSel calls f for each selected row in ascending order; f returns false
// to stop the iteration early.
func forSel(sel []uint64, f func(r int) bool) {
	for w, m := range sel {
		if m == 0 {
			continue
		}
		base := w << 6
		for ; m != 0; m &= m - 1 {
			if !f(base + bits.TrailingZeros64(m)) {
				return
			}
		}
	}
}
