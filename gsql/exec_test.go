package gsql

import (
	"fmt"
	"math"
	"testing"
)

// mkEngine returns an engine with the packet schema registered as TCP.
func mkEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	if err := e.RegisterStream(PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	return e
}

// pkt builds a packet tuple: (time, ftime, srcIP, dstIP, srcPort, destPort,
// proto, len).
func pkt(sec int64, dst int64, dport int64, ln int64) Tuple {
	return Tuple{Int(sec), Float(float64(sec)), Int(100), Int(dst), Int(4242), Int(dport), Int(6), Int(ln)}
}

func execAll(t *testing.T, e *Engine, query string, tuples []Tuple, opts Options) []Tuple {
	t.Helper()
	st, err := e.Prepare(query)
	if err != nil {
		t.Fatalf("prepare %q: %v", query, err)
	}
	rows, err := st.Execute(SliceSource(tuples), opts)
	if err != nil {
		t.Fatalf("execute %q: %v", query, err)
	}
	return rows
}

func TestSimpleCountPerBucket(t *testing.T) {
	tuples := []Tuple{
		pkt(10, 1, 80, 100),
		pkt(20, 1, 80, 100),
		pkt(30, 2, 80, 100),
		pkt(70, 1, 80, 100), // second bucket
		pkt(80, 1, 80, 100),
	}
	rows := execAll(t, mkEngine(t), `select tb, dstIP, count(*) from TCP group by time/60 as tb, dstIP`, tuples, Options{})
	// Bucket 0: dst1 ×2, dst2 ×1. Bucket 1: dst1 ×2.
	want := []string{"0 1 2", "0 2 1", "1 1 2"}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows %v, want %d", len(rows), rows, len(want))
	}
	for i, row := range rows {
		got := fmt.Sprintf("%s %s %s", row[0], row[1], row[2])
		if got != want[i] {
			t.Errorf("row %d = %q, want %q", i, got, want[i])
		}
	}
}

func TestPaperDecayedCountQuery(t *testing.T) {
	// The §IV-A query: quadratic forward decay inside a 60 s bucket,
	// expressed entirely in the query language.
	q := `select tb, dstIP, destPort,
	        sum(len*(time % 60)*(time % 60))/3600 from TCP
	      group by time/60 as tb, dstIP, destPort`
	tuples := []Tuple{
		pkt(605, 1, 80, 4), // t%60 = 5, weight 25/3600
		pkt(607, 1, 80, 8),
		pkt(603, 1, 80, 3),
		pkt(608, 1, 80, 6),
		pkt(604, 1, 80, 4),
	}
	rows := execAll(t, mkEngine(t), q, tuples, Options{})
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Σ len·(t%60)² = 4·25 + 8·49 + 3·9 + 6·64 + 4·16 = 967; /3600 (int) = 0.
	// Integer semantics: sum is int, division truncates — like GS/C.
	if got := rows[0][3].AsInt(); got != 967/3600 {
		t.Errorf("decayed sum (int semantics) = %v, want %d", rows[0][3], 967/3600)
	}

	// With float weights the normalized decayed sum appears exactly;
	// float() forces float arithmetic.
	qf := `select tb, dstIP, destPort,
	         sum(float(len)*(time % 60)*(time % 60))/3600 from TCP
	       group by time/60 as tb, dstIP, destPort`
	rows = execAll(t, mkEngine(t), qf, tuples, Options{})
	if got, want := rows[0][3].AsFloat(), 967.0/3600.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("decayed sum = %v, want %v", got, want)
	}
}

func TestWhereFilter(t *testing.T) {
	tuples := []Tuple{
		pkt(1, 1, 80, 100),
		pkt(2, 1, 443, 200),
		pkt(3, 1, 80, 300),
	}
	rows := execAll(t, mkEngine(t), `select destPort, sum(len) from TCP where destPort = 80 group by destPort`, tuples, Options{})
	if len(rows) != 1 || rows[0][1].AsInt() != 400 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHaving(t *testing.T) {
	tuples := []Tuple{
		pkt(1, 1, 80, 1), pkt(2, 1, 80, 1), pkt(3, 1, 80, 1),
		pkt(4, 2, 80, 1),
	}
	rows := execAll(t, mkEngine(t), `select dstIP, count(*) from TCP group by dstIP having count(*) > 2`, tuples, Options{})
	if len(rows) != 1 || rows[0][0].AsInt() != 1 || rows[0][1].AsInt() != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregateVariety(t *testing.T) {
	tuples := []Tuple{
		pkt(1, 1, 80, 10),
		pkt(2, 1, 80, 30),
		pkt(3, 1, 80, 20),
	}
	rows := execAll(t, mkEngine(t),
		`select dstIP, count(*), sum(len), min(len), max(len), avg(len) from TCP group by dstIP`,
		tuples, Options{})
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r[1].AsInt() != 3 || r[2].AsInt() != 60 || r[3].AsInt() != 10 || r[4].AsInt() != 30 {
		t.Errorf("count/sum/min/max = %v %v %v %v", r[1], r[2], r[3], r[4])
	}
	if math.Abs(r[5].AsFloat()-20) > 1e-12 {
		t.Errorf("avg = %v", r[5])
	}
}

func TestNoGroupByGlobalAggregate(t *testing.T) {
	tuples := []Tuple{pkt(1, 1, 80, 5), pkt(2, 2, 80, 7)}
	rows := execAll(t, mkEngine(t), `select count(*), sum(len) from TCP`, tuples, Options{})
	if len(rows) != 1 || rows[0][0].AsInt() != 2 || rows[0][1].AsInt() != 12 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestTwoLevelMatchesSingleLevel runs the same query with and without the
// two-level split on a large skewed stream; results must be identical.
func TestTwoLevelMatchesSingleLevel(t *testing.T) {
	var tuples []Tuple
	for i := int64(0); i < 50000; i++ {
		dst := i % 997 // far more groups than low-level slots at 256
		tuples = append(tuples, pkt(i/1000, dst, 80, 40+(i%1400)))
	}
	q := `select tb, dstIP, count(*), sum(len) from TCP group by time/10 as tb, dstIP`
	split := execAll(t, mkEngine(t), q, tuples, Options{LowLevelSlots: 256})
	single := execAll(t, mkEngine(t), q, tuples, Options{DisableTwoLevel: true})
	if len(split) != len(single) {
		t.Fatalf("row counts differ: %d vs %d", len(split), len(single))
	}
	for i := range split {
		for j := range split[i] {
			if split[i][j] != single[i][j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, split[i][j], single[i][j])
			}
		}
	}
	// The low table must actually have evicted (collisions happened).
	st, _ := mkEngine(t).Prepare(q)
	var n int
	run := st.Start(func(Tuple) error { n++; return nil }, Options{LowLevelSlots: 256})
	for _, tu := range tuples {
		if err := run.Push(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ev := run.Stats(); ev == 0 {
		t.Error("expected low-level evictions with 256 slots and ~1000 groups")
	}
}

func TestBucketCloseEmitsPromptly(t *testing.T) {
	st, err := mkEngine(t).Prepare(`select tb, count(*) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Tuple
	run := st.Start(func(r Tuple) error { rows = append(rows, r); return nil }, Options{})
	run.Push(pkt(10, 1, 80, 1))
	run.Push(pkt(20, 1, 80, 1))
	if len(rows) != 0 {
		t.Fatalf("bucket emitted early: %v", rows)
	}
	run.Push(pkt(61, 1, 80, 1)) // closes bucket 0
	if len(rows) != 1 || rows[0][1].AsInt() != 2 {
		t.Fatalf("after bucket close: %v", rows)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][1].AsInt() != 1 {
		t.Fatalf("after Close: %v", rows)
	}
}

func TestScalarFunctionsInQueries(t *testing.T) {
	tuples := []Tuple{pkt(4, 1, 80, 100)}
	rows := execAll(t, mkEngine(t),
		`select dstIP, sum(float(len)*exp(1)), max(sqrt(len)), min(pow(len, 2)) from TCP group by dstIP`,
		tuples, Options{})
	r := rows[0]
	if math.Abs(r[1].AsFloat()-100*math.E) > 1e-9 {
		t.Errorf("exp: %v", r[1])
	}
	if math.Abs(r[2].AsFloat()-10) > 1e-12 {
		t.Errorf("sqrt: %v", r[2])
	}
	if math.Abs(r[3].AsFloat()-10000) > 1e-9 {
		t.Errorf("pow: %v", r[3])
	}
}

func TestPrepareErrors(t *testing.T) {
	e := mkEngine(t)
	bad := map[string]string{
		"unknown stream":    `select count(*) from UDPX`,
		"unknown column":    `select count(nosuch) from TCP`,
		"bare column":       `select dstIP, count(*) from TCP group by time/60`,
		"agg in where":      `select count(*) from TCP where count(*) > 1`,
		"agg in group":      `select count(*) from TCP group by count(*)`,
		"nested agg":        `select sum(count(*)) from TCP`,
		"group without agg": `select dstIP from TCP group by dstIP`,
		"unknown func":      `select nosuchfn(len) from TCP`,
		"arity":             `select sum(len, len) from TCP`,
	}
	for name, q := range bad {
		if _, err := e.Prepare(q); err == nil {
			t.Errorf("%s: expected error for %q", name, q)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	e := mkEngine(t)
	st, err := e.Prepare(`select dstIP, sum(len/(time-1)) from TCP group by dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Execute(SliceSource([]Tuple{pkt(1, 1, 80, 10)}), Options{})
	if err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestUDAFIntegration(t *testing.T) {
	e := mkEngine(t)
	// A trivial non-mergeable UDAF: collects the count of distinct arg
	// values exactly.
	spec := AggSpec{
		Name: "exactdistinct", MinArgs: 1, MaxArgs: 1,
		New: func() Aggregator { return &distinctAgg{seen: map[Value]bool{}} },
	}
	if err := e.RegisterUDAF(spec); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterUDAF(spec); err == nil {
		t.Error("duplicate UDAF registration must fail")
	}
	st, err := e.Prepare(`select tb, exactdistinct(dstIP) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mergeable() {
		t.Error("query with non-mergeable UDAF must not be mergeable")
	}
	tuples := []Tuple{
		pkt(1, 1, 80, 1), pkt(2, 2, 80, 1), pkt(3, 1, 80, 1), pkt(4, 3, 80, 1),
	}
	rows, err := st.Execute(SliceSource(tuples), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].AsInt() != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

type distinctAgg struct{ seen map[Value]bool }

func (d *distinctAgg) Step(args []Value) error { d.seen[args[0]] = true; return nil }
func (d *distinctAgg) Final() Value            { return Int(int64(len(d.seen))) }

func TestMergeableUDAFRunsTwoLevel(t *testing.T) {
	e := mkEngine(t)
	err := e.RegisterUDAF(AggSpec{
		Name: "sumsq", MinArgs: 1, MaxArgs: 1, Mergeable: true,
		New: func() Aggregator { return &sumsqAgg{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	var tuples []Tuple
	for i := int64(0); i < 20000; i++ {
		tuples = append(tuples, pkt(i/1000, i%503, 80, i%7))
	}
	q := `select tb, dstIP, sumsq(len) from TCP group by time/10 as tb, dstIP`
	split := execAll(t, e, q, tuples, Options{LowLevelSlots: 128})
	single := execAll(t, e, q, tuples, Options{DisableTwoLevel: true})
	if len(split) != len(single) {
		t.Fatalf("row counts differ: %d vs %d", len(split), len(single))
	}
	for i := range split {
		if math.Abs(split[i][2].AsFloat()-single[i][2].AsFloat()) > 1e-9 {
			t.Fatalf("row %d: %v vs %v", i, split[i], single[i])
		}
	}
}

type sumsqAgg struct{ s float64 }

func (a *sumsqAgg) Step(args []Value) error { v := args[0].AsFloat(); a.s += v * v; return nil }
func (a *sumsqAgg) Final() Value            { return Float(a.s) }
func (a *sumsqAgg) Merge(o Aggregator) error {
	oa, ok := o.(*sumsqAgg)
	if !ok {
		return fmt.Errorf("bad merge")
	}
	a.s += oa.s
	return nil
}

func TestMergeableDeclarationValidated(t *testing.T) {
	e := mkEngine(t)
	err := e.RegisterUDAF(AggSpec{
		Name: "bogus", MinArgs: 1, MaxArgs: 1, Mergeable: true,
		New: func() Aggregator { return &distinctAgg{seen: map[Value]bool{}} },
	})
	if err == nil {
		t.Error("declaring a non-Merger aggregate mergeable must fail")
	}
}

func TestStatementMetadata(t *testing.T) {
	e := mkEngine(t)
	st, err := e.Prepare(`select tb, dstIP, count(*) as pkts from TCP group by time/60 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	cols := st.Columns()
	if len(cols) != 3 || cols[2] != "pkts" {
		t.Errorf("columns = %v", cols)
	}
	if !st.Temporal() || !st.Mergeable() {
		t.Errorf("temporal=%v mergeable=%v", st.Temporal(), st.Mergeable())
	}
	if st.Describe() == "" || st.Text() == "" {
		t.Error("empty Describe/Text")
	}
	// A non-temporal grouping (no monotone column) is detected.
	st2, err := e.Prepare(`select dstIP, count(*) from TCP group by dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Temporal() {
		t.Error("dstIP grouping must not be temporal")
	}
	// time % 60 is not monotone and must not define buckets.
	st3, err := e.Prepare(`select m, count(*) from TCP group by time%60 as m`)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Temporal() {
		t.Error("time%60 must not be temporal")
	}
}

func TestAliasReuseInSelectAndOutputArithmetic(t *testing.T) {
	tuples := []Tuple{pkt(65, 1, 80, 10), pkt(70, 1, 80, 20)}
	rows := execAll(t, mkEngine(t),
		`select tb*60, sum(len)/count(*) from TCP group by time/60 as tb`,
		tuples, Options{})
	if len(rows) != 1 || rows[0][0].AsInt() != 60 || rows[0][1].AsInt() != 15 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty schema name must fail")
	}
	if _, err := NewSchema("s", Column{Name: "a", Type: TInt}, Column{Name: "A", Type: TInt}); err == nil {
		t.Error("duplicate columns must fail")
	}
	if _, err := NewSchema("s", Column{Name: "", Type: TInt}); err == nil {
		t.Error("empty column name must fail")
	}
	e := NewEngine()
	s := MustSchema("dup", Column{Name: "x", Type: TInt})
	if err := e.RegisterStream(s); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream(s); err == nil {
		t.Error("duplicate stream registration must fail")
	}
}
