package gsql_test

import (
	"bytes"
	"fmt"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/udaf"
)

// The differential suite: a MultiRun over N attached queries must be
// bit-for-bit equivalent to N independent standalone runs fed the same
// tuples — same emitted rows, same order, same float payloads, same
// checkpoint bytes. The fixture queries deliberately overlap (shared WHERE
// clauses, shared group expressions, shared aggregate arguments, one exact
// duplicate) so the shared-slot memo and predicate classes are actually
// exercised, not just bypassed.

var multiQueries = []string{
	`select tb, dstIP, count(*), sum(len) from TCP where len > 200 group by time/60 as tb, dstIP`,
	`select tb, dstIP, avg(float(len)), max(len) from TCP where len > 200 group by time/60 as tb, dstIP`,
	`select tb, count(*), sum(len) from TCP group by time/60 as tb`,
	`select tb, destPort, sum(len), min(len) from TCP where proto = 6 group by time/60 as tb, destPort`,
	`select tb, dstIP, count(*), sum(len) from TCP where len > 200 group by time/60 as tb, dstIP`, // dup of [0]
	`select tb, dstIP, count(*) from TCP where len > 200 and dstIP % 2 = 0 group by time/60 as tb, dstIP`,
}

// multiAttach attaches every fixture query to a fresh MultiRun, returning
// the handles and per-query row collectors.
func multiAttach(t *testing.T, e *gsql.Engine, opts gsql.Options, queries []string) (*gsql.MultiRun, []*gsql.MultiHandle, []*[]gsql.Tuple) {
	t.Helper()
	m, err := gsql.NewMultiRun(e, "TCP", opts)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*gsql.MultiHandle, len(queries))
	rows := make([]*[]gsql.Tuple, len(queries))
	for i, q := range queries {
		got := &[]gsql.Tuple{}
		h, err := m.Attach(q, 0, func(r gsql.Tuple) error { *got = append(*got, r); return nil })
		if err != nil {
			t.Fatalf("attach %q: %v", q, err)
		}
		handles[i], rows[i] = h, got
	}
	return m, handles, rows
}

// standaloneRun pushes tuples through one independent serial run and
// returns its rows and final checkpoint.
func standaloneRun(t *testing.T, e *gsql.Engine, q string, tuples []gsql.Tuple, opts gsql.Options) ([]gsql.Tuple, []byte) {
	t.Helper()
	st, err := e.Prepare(q)
	if err != nil {
		t.Fatalf("prepare %q: %v", q, err)
	}
	var rows []gsql.Tuple
	run := st.Start(func(r gsql.Tuple) error { rows = append(rows, r); return nil }, opts)
	for _, tp := range tuples {
		if err := run.Push(tp); err != nil {
			t.Fatalf("standalone push: %v", err)
		}
	}
	ckpt, err := run.Checkpoint()
	if err != nil {
		t.Fatalf("standalone checkpoint: %v", err)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("standalone close: %v", err)
	}
	return rows, ckpt
}

func TestMultiDifferentialScalar(t *testing.T) {
	e := parallelEngine(t)
	tuples := trace(25_000, 0, 31)

	m, handles, rows := multiAttach(t, e, gsql.Options{}, multiQueries)
	for _, tp := range tuples {
		if err := m.Push(tp); err != nil {
			t.Fatalf("multi push: %v", err)
		}
	}
	ckpts := make([][]byte, len(handles))
	for i, h := range handles {
		var err error
		if ckpts[i], err = h.Checkpoint(); err != nil {
			t.Fatalf("multi checkpoint %d: %v", i, err)
		}
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}

	for i, q := range multiQueries {
		wantRows, wantCkpt := standaloneRun(t, e, q, tuples, gsql.Options{})
		if len(wantRows) == 0 {
			t.Fatalf("query %d emitted no rows; fixture too small", i)
		}
		requireIdentical(t, wantRows, *rows[i], fmt.Sprintf("query %d scalar", i))
		if !bytes.Equal(wantCkpt, ckpts[i]) {
			t.Errorf("query %d: multi checkpoint differs from standalone", i)
		}
	}
	if s := m.MultiStats(); s.MemoHits == 0 {
		t.Error("shared pass recorded no memo hits over overlapping queries")
	}
}

func TestMultiDifferentialBatch(t *testing.T) {
	e := parallelEngine(t)
	tuples := trace(20_000, 0, 37)
	// A non-finite row exercises the shared finite scan's rejected
	// accounting through both runtimes.
	bad := pkt2(600, 1, 80, 50)
	bad[1] = gsql.Float(nan())
	tuples = append(tuples[:5000:5000], append([]gsql.Tuple{bad}, tuples[5000:]...)...)

	for _, size := range []int{1, 7, 256} {
		batches := toBatches(t, tuples, size)

		m, handles, rows := multiAttach(t, e, gsql.Options{}, multiQueries)
		multiRejected := 0
		for _, b := range batches {
			rej, err := m.PushBatch(b)
			if err != nil {
				t.Fatalf("multi pushbatch: %v", err)
			}
			multiRejected += rej
		}
		ckpts := make([][]byte, len(handles))
		for i, h := range handles {
			var err error
			if ckpts[i], err = h.Checkpoint(); err != nil {
				t.Fatalf("multi checkpoint %d: %v", i, err)
			}
		}
		if err := m.CloseAll(); err != nil {
			t.Fatal(err)
		}
		if multiRejected != len(batches)*0+1 {
			t.Errorf("size %d: multi rejected %d rows, want 1", size, multiRejected)
		}

		for i, q := range multiQueries {
			st, err := e.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			var want []gsql.Tuple
			run := st.Start(func(r gsql.Tuple) error { want = append(want, r); return nil }, gsql.Options{})
			wantRejected := 0
			for _, b := range toBatches(t, tuples, size) {
				rej, err := run.PushBatch(b)
				if err != nil {
					t.Fatalf("standalone pushbatch: %v", err)
				}
				wantRejected += rej
			}
			wantCkpt, err := run.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if err := run.Close(); err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, *rows[i], fmt.Sprintf("query %d batch size %d", i, size))
			if wantRejected != 1 {
				t.Errorf("query %d size %d: standalone rejected %d, want 1", i, size, wantRejected)
			}
			if !bytes.Equal(wantCkpt, ckpts[i]) {
				t.Errorf("query %d size %d: multi checkpoint differs from standalone", i, size)
			}
		}
	}
}

// TestMultiBatchMatchesScalar: the columnar shared pass and the scalar
// shared pass of the same MultiRun fixture must agree with each other.
func TestMultiBatchMatchesScalar(t *testing.T) {
	e := parallelEngine(t)
	tuples := trace(15_000, 0, 43)

	ms, _, scalarRows := multiAttach(t, e, gsql.Options{}, multiQueries)
	for _, tp := range tuples {
		if err := ms.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := ms.CloseAll(); err != nil {
		t.Fatal(err)
	}

	mb, _, batchRows := multiAttach(t, e, gsql.Options{}, multiQueries)
	for _, b := range toBatches(t, tuples, 512) {
		if _, err := mb.PushBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := mb.CloseAll(); err != nil {
		t.Fatal(err)
	}

	for i := range multiQueries {
		requireIdentical(t, *scalarRows[i], *batchRows[i], fmt.Sprintf("query %d batch-vs-scalar", i))
	}
}

// TestMultiCheckpointRestoreMidStream: kill-and-recover. Checkpoint every
// attached query mid-stream, rebuild a fresh MultiRun from the checkpoints,
// finish the stream, and require bit-identical final state against
// standalone runs recovered the same way.
func TestMultiCheckpointRestoreMidStream(t *testing.T) {
	e := parallelEngine(t)
	tuples := trace(16_000, 0, 47)
	half := len(tuples) / 2

	m1, handles, _ := multiAttach(t, e, gsql.Options{}, multiQueries)
	for _, tp := range tuples[:half] {
		if err := m1.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ckpts := make([][]byte, len(handles))
	for i, h := range handles {
		var err error
		if ckpts[i], err = h.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	m2, err := gsql.NewMultiRun(e, "TCP", gsql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	restored := make([]*gsql.MultiHandle, len(multiQueries))
	rows := make([]*[]gsql.Tuple, len(multiQueries))
	for i, q := range multiQueries {
		got := &[]gsql.Tuple{}
		h, err := m2.Restore(q, 0, ckpts[i], func(r gsql.Tuple) error { *got = append(*got, r); return nil })
		if err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
		restored[i], rows[i] = h, got
	}
	for _, tp := range tuples[half:] {
		if err := m2.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	finals := make([][]byte, len(restored))
	for i, h := range restored {
		if finals[i], err = h.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.CloseAll(); err != nil {
		t.Fatal(err)
	}

	for i, q := range multiQueries {
		st, err := e.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		mid := standaloneCkptAfter(t, st, tuples[:half])
		run, err := st.Restore(mid, func(gsql.Tuple) error { return nil }, gsql.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var want []gsql.Tuple
		run2, err := st.Restore(mid, func(r gsql.Tuple) error { want = append(want, r); return nil }, gsql.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_ = run
		for _, tp := range tuples[half:] {
			if err := run2.Push(tp); err != nil {
				t.Fatal(err)
			}
		}
		wantCkpt, err := run2.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if err := run2.Close(); err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, *rows[i], fmt.Sprintf("query %d post-restore", i))
		if !bytes.Equal(wantCkpt, finals[i]) {
			t.Errorf("query %d: final checkpoint differs after recovery", i)
		}
	}
}

func standaloneCkptAfter(t *testing.T, st *gsql.Statement, tuples []gsql.Tuple) []byte {
	t.Helper()
	run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
	for _, tp := range tuples {
		if err := run.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := run.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return ckpt
}

// multiEpochOpts builds an exponential-decay epoch supervisor over the
// ftime column, rolling every 100 stream seconds.
func multiEpochOpts() (gsql.Options, decay.Forward) {
	m := decay.NewForward(decay.NewExp(0.05), 0)
	opts := gsql.Options{Epoch: &gsql.EpochConfig{
		Model: m,
		Every: 100,
		Time:  func(t gsql.Tuple) (float64, bool) { return t[1].AsFloat(), true },
	}}
	return opts, m
}

var multiEpochQueries = []string{
	`select tb, dstIP, fdcount(ftime), fdsum(ftime, float(len)) from TCP group by time/60 as tb, dstIP`,
	`select tb, fdcount(ftime) from TCP where len > 200 group by time/60 as tb`,
	`select tb, dstIP, fdavg(ftime, float(len)) from TCP group by time/60 as tb, dstIP`,
}

// TestMultiEpochRollDifferential: the shared epoch supervisor must roll
// every member at the same tuple of the sequence a standalone supervisor
// would — checkpoints stamp the epoch counter and landmark, so byte
// equality proves it. Exercised over the scalar and batch paths, including
// a mid-stream kill-and-recover across a rolled landmark.
func TestMultiEpochRollDifferential(t *testing.T) {
	opts, model := multiEpochOpts()
	e := parallelEngine(t)
	if err := udaf.RegisterAll(e, udaf.Config{Decay: model}); err != nil {
		t.Fatal(err)
	}
	tuples := trace(20_000, 0, 53)

	t.Run("scalar", func(t *testing.T) {
		m, handles, rows := multiAttach(t, e, opts, multiEpochQueries)
		for _, tp := range tuples {
			if err := m.Push(tp); err != nil {
				t.Fatal(err)
			}
		}
		ckpts := make([][]byte, len(handles))
		for i, h := range handles {
			var err error
			if ckpts[i], err = h.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.CloseAll(); err != nil {
			t.Fatal(err)
		}
		for i, q := range multiEpochQueries {
			wantRows, wantCkpt := standaloneRun(t, e, q, tuples, opts)
			requireIdentical(t, wantRows, *rows[i], fmt.Sprintf("epoch query %d", i))
			if !bytes.Equal(wantCkpt, ckpts[i]) {
				t.Errorf("epoch query %d: checkpoint differs (landmark or epoch drift)", i)
			}
		}
	})

	t.Run("batch", func(t *testing.T) {
		m, handles, rows := multiAttach(t, e, opts, multiEpochQueries)
		for _, b := range toBatches(t, tuples, 333) {
			if _, err := m.PushBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		ckpts := make([][]byte, len(handles))
		for i, h := range handles {
			var err error
			if ckpts[i], err = h.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.CloseAll(); err != nil {
			t.Fatal(err)
		}
		for i, q := range multiEpochQueries {
			st, err := e.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			var want []gsql.Tuple
			run := st.Start(func(r gsql.Tuple) error { want = append(want, r); return nil }, opts)
			for _, b := range toBatches(t, tuples, 333) {
				if _, err := run.PushBatch(b); err != nil {
					t.Fatal(err)
				}
			}
			wantCkpt, err := run.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if err := run.Close(); err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, *rows[i], fmt.Sprintf("epoch batch query %d", i))
			if !bytes.Equal(wantCkpt, ckpts[i]) {
				t.Errorf("epoch batch query %d: checkpoint differs", i)
			}
		}
	})

	t.Run("kill-and-recover", func(t *testing.T) {
		half := len(tuples) / 2
		m1, handles, _ := multiAttach(t, e, opts, multiEpochQueries)
		for _, tp := range tuples[:half] {
			if err := m1.Push(tp); err != nil {
				t.Fatal(err)
			}
		}
		ckpts := make([][]byte, len(handles))
		for i, h := range handles {
			var err error
			if ckpts[i], err = h.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}

		m2, err := gsql.NewMultiRun(e, "TCP", opts)
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]*[]gsql.Tuple, len(multiEpochQueries))
		restored := make([]*gsql.MultiHandle, len(multiEpochQueries))
		for i, q := range multiEpochQueries {
			got := &[]gsql.Tuple{}
			h, err := m2.Restore(q, 0, ckpts[i], func(r gsql.Tuple) error { *got = append(*got, r); return nil })
			if err != nil {
				t.Fatalf("epoch restore %d: %v", i, err)
			}
			restored[i], rows[i] = h, got
		}
		for _, tp := range tuples[half:] {
			if err := m2.Push(tp); err != nil {
				t.Fatal(err)
			}
		}
		for i, q := range multiEpochQueries {
			final, err := restored[i].Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			st, err := e.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			var want []gsql.Tuple
			run, err := st.Restore(ckpts[i], func(r gsql.Tuple) error { want = append(want, r); return nil }, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range tuples[half:] {
				if err := run.Push(tp); err != nil {
					t.Fatal(err)
				}
			}
			wantCkpt, err := run.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, *rows[i], fmt.Sprintf("epoch recover query %d", i))
			if !bytes.Equal(wantCkpt, final) {
				t.Errorf("epoch recover query %d: final checkpoint differs", i)
			}
		}
	})
}

// TestMultiShardedDifferential: sharded members attached to the shared feed
// must match a standalone ParallelRun, while serial members riding the same
// feed still match standalone serial runs.
func TestMultiShardedDifferential(t *testing.T) {
	e := parallelEngine(t)
	tuples := trace(20_000, 0, 59)
	serialQ := multiQueries[0]
	shardedQ := `select tb, dstIP, count(*), sum(len), avg(float(len)) from TCP where len > 200 group by time/60 as tb, dstIP`

	for _, mode := range []string{"scalar", "batch"} {
		t.Run(mode, func(t *testing.T) {
			m, err := gsql.NewMultiRun(e, "TCP", gsql.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var serialGot, shardGot []gsql.Tuple
			if _, err := m.Attach(serialQ, 0, func(r gsql.Tuple) error { serialGot = append(serialGot, r); return nil }); err != nil {
				t.Fatal(err)
			}
			hs, err := m.Attach(shardedQ, 3, func(r gsql.Tuple) error { shardGot = append(shardGot, r); return nil })
			if err != nil {
				t.Fatal(err)
			}
			if mode == "scalar" {
				for _, tp := range tuples {
					if err := m.Push(tp); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				for _, b := range toBatches(t, tuples, 256) {
					if _, err := m.PushBatch(b); err != nil {
						t.Fatal(err)
					}
				}
			}
			shardCkpt, err := hs.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if err := m.CloseAll(); err != nil {
				t.Fatal(err)
			}

			wantSerial, _ := standaloneRun(t, e, serialQ, tuples, gsql.Options{})
			requireIdentical(t, wantSerial, serialGot, "serial member")

			st, err := e.Prepare(shardedQ)
			if err != nil {
				t.Fatal(err)
			}
			want := parallelRows(t, st, tuples, gsql.ParallelOptions{Shards: 3})
			requireIdentical(t, want, shardGot, "sharded member")

			// The sharded member's checkpoint restores into a standalone
			// parallel run — formats are identical.
			if _, err := st.RestoreParallel(shardCkpt, func(gsql.Tuple) error { return nil },
				gsql.ParallelOptions{Shards: 3}); err != nil {
				t.Fatalf("sharded checkpoint does not restore standalone: %v", err)
			}
		})
	}
}

// TestMultiDedupAndStats: identical texts share one compiled plan but keep
// independent runs, and the sharing scoreboard reflects it.
func TestMultiDedupAndStats(t *testing.T) {
	e := parallelEngine(t)
	tuples := trace(5_000, 0, 61)

	m, handles, rows := multiAttach(t, e, gsql.Options{}, multiQueries)
	s := m.MultiStats()
	if s.Queries != len(multiQueries) {
		t.Errorf("Queries = %d, want %d", s.Queries, len(multiQueries))
	}
	// multiQueries holds one exact duplicate pair.
	if s.DistinctTexts != len(multiQueries)-1 {
		t.Errorf("DistinctTexts = %d, want %d", s.DistinctTexts, len(multiQueries)-1)
	}
	if s.PlanHits != 1 {
		t.Errorf("PlanHits = %d, want 1 (one duplicate attach)", s.PlanHits)
	}
	if s.ExprHits == 0 {
		t.Error("no plan-time expression sharing across overlapping queries")
	}
	// Three distinct WHERE clauses plus the unfiltered class.
	if s.Classes != 4 {
		t.Errorf("Classes = %d, want 4", s.Classes)
	}

	for _, tp := range tuples {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, *rows[0], *rows[4], "duplicate attaches")

	s = m.MultiStats()
	if s.MemoHits == 0 {
		t.Error("MemoHits = 0 after shared pass")
	}
	if r := s.SharedHitRatio(); r <= 0 || r >= 1 {
		t.Errorf("SharedHitRatio = %v, want in (0,1)", r)
	}
	if s.Tuples != uint64(len(tuples)) {
		t.Errorf("Tuples = %d, want %d", s.Tuples, len(tuples))
	}

	// Detaching one duplicate keeps the shared plan alive; detaching the
	// second drops it.
	handles[4].Detach()
	if s := m.MultiStats(); s.Queries != len(multiQueries)-1 || s.DistinctTexts != len(multiQueries)-1 {
		t.Errorf("after first detach: Queries=%d DistinctTexts=%d", s.Queries, s.DistinctTexts)
	}
	handles[0].Detach()
	if s := m.MultiStats(); s.DistinctTexts != len(multiQueries)-2 {
		t.Errorf("after both detaches: DistinctTexts = %d, want %d", s.DistinctTexts, len(multiQueries)-2)
	}
	// The runtime keeps running for the remaining members.
	if err := m.Push(pkt2(7000, 1, 80, 500)); err != nil {
		t.Fatalf("push after detach: %v", err)
	}
}

// TestMultiSoloReplay: the crash-recovery path. A query attached mid-stream
// is caught up with per-query solo pushes (its WAL suffix), then rejoins
// the shared feed; it must end bit-identical to a standalone run fed the
// same suffix.
func TestMultiSoloReplay(t *testing.T) {
	e := parallelEngine(t)
	tuples := trace(12_000, 0, 67)
	attachAt, rejoinAt := 4_000, 6_000
	q1, q2 := multiQueries[0], multiQueries[1]

	m, err := gsql.NewMultiRun(e, "TCP", gsql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rows1, rows2 []gsql.Tuple
	h1, err := m.Attach(q1, 0, func(r gsql.Tuple) error { rows1 = append(rows1, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples[:attachAt] {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	h2, err := m.Attach(q2, 0, func(r gsql.Tuple) error { rows2 = append(rows2, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Catch h2 up solo — scalar for the first stretch, batch for the rest.
	for _, tp := range tuples[attachAt : attachAt+1000] {
		if err := h2.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range toBatches(t, tuples[attachAt+1000:rejoinAt], 128) {
		if _, err := h2.PushBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// ...while h1 sees the same stretch via the shared feed.
	for _, tp := range tuples[attachAt:rejoinAt] {
		if err := h1.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	// Both rejoin the shared feed.
	for _, tp := range tuples[rejoinAt:] {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ck1, err := h1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := h2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if tp, _ := h2.Stats(); tp != uint64(len(tuples)-attachAt) {
		t.Errorf("h2 tuples = %d, want %d", tp, len(tuples)-attachAt)
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}

	want1, wantCk1 := standaloneRun(t, e, q1, tuples, gsql.Options{})
	requireIdentical(t, want1, rows1, "full-stream member")
	if !bytes.Equal(wantCk1, ck1) {
		t.Error("full-stream member checkpoint differs")
	}
	want2, wantCk2 := standaloneRun(t, e, q2, tuples[attachAt:], gsql.Options{})
	requireIdentical(t, want2, rows2, "replayed member")
	if !bytes.Equal(wantCk2, ck2) {
		t.Error("replayed member checkpoint differs")
	}
}

// TestMultiHeartbeat: a heartbeat fans one bucket advance to every member.
func TestMultiHeartbeat(t *testing.T) {
	e := parallelEngine(t)
	m, _, rows := multiAttach(t, e, gsql.Options{}, multiQueries[:3])
	for _, tp := range []gsql.Tuple{pkt2(10, 1, 80, 300), pkt2(20, 2, 80, 100)} {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Heartbeat(gsql.Int(130)); err != nil {
		t.Fatal(err)
	}
	for i := range multiQueries[:3] {
		if len(*rows[i]) == 0 {
			t.Errorf("query %d: heartbeat closed no bucket", i)
		}
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiAttachErrors: plan failures surface at Attach and leave the
// runtime and its catalogs unpoisoned.
func TestMultiAttachErrors(t *testing.T) {
	e := parallelEngine(t)
	m, err := gsql.NewMultiRun(e, "TCP", gsql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		`select nonsense from`,
		`select tb, count(*) from UDP group by time/60 as tb`,
		`select tb, count(*) from TCP where nosuchcol > 3 group by time/60 as tb`,
	} {
		if _, err := m.Attach(bad, 0, func(gsql.Tuple) error { return nil }); err == nil {
			t.Errorf("attach %q succeeded, want error", bad)
		}
	}
	if s := m.MultiStats(); s.Queries != 0 || s.DistinctTexts != 0 {
		t.Errorf("failed attaches leaked catalog state: %+v", s)
	}
	// Restore with a checkpoint from a different query must fail the
	// fingerprint check.
	st, err := e.Prepare(multiQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	ck, err := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{}).Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Restore(multiQueries[2], 0, ck, func(gsql.Tuple) error { return nil }); err == nil {
		t.Error("restore with a foreign checkpoint succeeded, want fingerprint error")
	}

	// Solo pushes are rejected under a shared epoch supervisor.
	opts, _ := multiEpochOpts()
	me, err := gsql.NewMultiRun(e, "TCP", opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := me.Attach(`select tb, count(*) from TCP group by time/60 as tb`, 0, func(gsql.Tuple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Push(pkt2(1, 1, 80, 10)); err == nil {
		t.Error("solo push under shared epoch succeeded, want error")
	}
}

func nan() float64 {
	f := 0.0
	return f / f
}
