package gsql

import (
	"fmt"
	"math/bits"
)

// ParallelRun.PushBatch: the sharded counterpart of Run.PushBatch. The
// coordinator runs the batched finite scan, the epoch segmentation, and the
// vectorized WHERE and group kernels, then routes surviving rows to their
// shards with the evaluated group values attached (the shards never re-run
// the group closures). Epoch rolls quiesce the shards between segments via
// the same rollTo barrier scalar Push uses, and checkpoints keep their
// batch-boundary cut: Checkpoint is a producer call, so it can only land
// between PushBatch calls.

// PushBatch routes every row of b to its shard, equivalently to Pushing the
// batch's rows one by one under the standard caller policy: rows rejected by
// the finite check are counted (the rejected return) and skipped, any other
// error stops processing where the scalar path would have stopped. The
// batch's selection bitmap is consumed as working state.
func (pr *ParallelRun) PushBatch(b *Batch) (rejected int, err error) {
	if pr.err != nil {
		return 0, pr.err
	}
	if pr.closed {
		return 0, errClosed
	}
	if b == nil || b.Len() == 0 {
		return 0, nil
	}
	if !b.compatibleWith(pr.p.schema) {
		return 0, pr.fail(fmt.Errorf("gsql: batch schema %s is incompatible with stream %s",
			b.schema.Name, pr.p.schema.Name))
	}
	if pr.bx == nil {
		pr.bx = newBatchExec(pr.p, pr.ep)
	}
	bx := pr.bx
	tuples0 := pr.tuples

	bx.valid = growBits(bx.valid, b.n)
	b.scanFinite(bx.valid)

	lo, skipObserve := 0, false
	for lo < b.n {
		hi, newL, roll := b.n, 0.0, false
		if pr.ep != nil {
			hi, newL, roll = bx.scanEpoch(pr.ep, b, lo, skipObserve)
		}
		if err := pr.processSegment(b, lo, hi); err != nil {
			return countRejected(bx.valid, tuples0, pr.tuples), err
		}
		if roll {
			if err := pr.rollTo(newL); err != nil {
				// Scalar Push counts the rolling tuple before the roll fails.
				pr.tuples++
				return countRejected(bx.valid, tuples0, pr.tuples), pr.fail(err)
			}
		}
		lo, skipObserve = hi, roll
	}
	return countRejected(bx.valid, tuples0, pr.tuples), nil
}

// processSegment routes rows [lo,hi) under a fixed landmark: vectorized when
// the plan compiled and the kernels run clean, otherwise replayed through
// the scalar routing path row by row.
func (pr *ParallelRun) processSegment(b *Batch, lo, hi int) error {
	if lo >= hi {
		return nil
	}
	bx := pr.bx
	vp := pr.p.vec
	if vp == nil {
		return pr.replaySegment(b, lo, hi)
	}

	ctx := &bx.ctx
	ctx.reset(b, vp)
	b.sel = growBits(b.sel, b.n)
	sel := b.sel
	maskRange(sel, bx.valid, lo, hi)

	if vp.where != nil {
		vp.where.run(ctx, sel)
		if ctx.err == nil {
			wb := ctx.bits(vp.where)
			for w := range sel {
				sel[w] &= wb[w]
			}
		}
	}
	if ctx.err == nil {
		for _, g := range vp.groups {
			g.run(ctx, sel)
		}
	}
	if ctx.err != nil {
		// No run state touched yet; the scalar replay reproduces the exact
		// scalar outcome, error row included.
		return pr.replaySegment(b, lo, hi)
	}

	// Inline bitmap walk (not forSel) so the routing state stays on the
	// stack — the coordinator's steady-state batch cycle allocates nothing.
	segBase := pr.tuples
	pr.tuples += uint64(hi - lo)
	gv := pr.gv
	for w, m := range sel {
		if m == 0 {
			continue
		}
		base := w << 6
		for ; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			h := routeSeed
			for gi, gn := range vp.groups {
				v := ctx.valueAt(gn, i)
				gv[gi] = v
				if gi == pr.p.temporalIdx {
					if !pr.bucketSet {
						pr.bucket, pr.bucketSet = v, true
					} else if pr.p.bucketAfter(v, pr.bucket) {
						if err := pr.flushAll(); err != nil {
							pr.tuples = segBase + uint64(i-lo+1)
							return pr.fail(err)
						}
						pr.bucket = v
					}
					continue
				}
				h = hashValue(h, v)
			}
			var shard int
			if pr.hasKey {
				shard = int(h % uint64(len(pr.workers)))
			} else {
				shard = pr.rr
				pr.rr++
				if pr.rr == len(pr.workers) {
					pr.rr = 0
				}
			}
			pr.enqueueRow(b, shard, i, gv)
		}
	}
	return nil
}

// enqueueRow copies one batch row (column cells materialized straight into
// the outgoing flat buffer — no intermediate Tuple) plus its evaluated group
// values into the shard's pending batch.
func (pr *ParallelRun) enqueueRow(b *Batch, shard, row int, gv Tuple) {
	tb := pr.pendingFor(shard)
	base := tb.n * pr.width
	for ci := range b.cols {
		tb.vals[base+ci] = b.colValue(ci, row)
	}
	if gw := len(pr.p.groupFns); gw > 0 {
		copy(tb.gvals[tb.n*gw:(tb.n+1)*gw], gv)
	}
	tb.n++
	pr.shipIfFull(shard)
}

// replaySegment is the scalar fallback: each row materializes and routes
// through the exact per-tuple path (epoch observation has already run for
// the segment). Invalid rows count and skip, as every scalar caller does on
// a NonFiniteValueError.
func (pr *ParallelRun) replaySegment(b *Batch, lo, hi int) error {
	bx := pr.bx
	for i := lo; i < hi; i++ {
		pr.tuples++
		if !bitGet(bx.valid, i) {
			continue
		}
		b.row(i, bx.row)
		if err := pr.routeTuple(bx.row); err != nil {
			return err
		}
	}
	return nil
}
