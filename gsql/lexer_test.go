package gsql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("select tb, destIP, sum(len*2)/3600 from TCP group by time/60 as tb")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	if texts[0] != "select" || kinds[0] != tokKeyword {
		t.Errorf("first token %q/%d", texts[0], kinds[0])
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"destip", "sum", "len", "3600", "tcp", "group", "by", "time", "60", "tb"} {
		if !strings.Contains(strings.ToLower(joined), want) {
			t.Errorf("missing token %q in %q", want, joined)
		}
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("1 2.5 3e4 1.5e-3 .25")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", "3e4", "1.5e-3", ".25"}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].text != w {
			t.Errorf("token %d = %q (%d), want number %q", i, toks[i].text, toks[i].kind, w)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lex("'hello' 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "hello" || toks[1].text != "it's" {
		t.Errorf("string tokens: %q, %q", toks[0].text, toks[1].text)
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("expected error for unterminated string")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex("<= >= <> != < > = + - * / % ( ) ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<=", ">=", "<>", "!=", "<", ">", "=", "+", "-", "*", "/", "%", "(", ")", ","}
	for i, w := range want {
		if toks[i].kind != tokOp || toks[i].text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"a ! b", "a # b", "a @ b"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("expected lex error for %q", bad)
		}
	}
}

func TestParsePaperQuery(t *testing.T) {
	isAgg := func(n string) bool { return n == "sum" || n == "count" }
	q, err := parseQuery(`select tb, destIP, destPort,
		sum(len*(time % 60)*(time % 60))/3600 from TCP
		group by time/60 as tb, destIP, destPort`, isAgg)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.sel) != 4 || len(q.group) != 3 || q.from != "TCP" {
		t.Fatalf("parsed shape: sel=%d group=%d from=%q", len(q.sel), len(q.group), q.from)
	}
	if q.group[0].alias != "tb" {
		t.Errorf("group alias = %q", q.group[0].alias)
	}
	// The 4th select item is arithmetic around an aggregate.
	if !hasAgg(q.sel[3].e) {
		t.Error("4th select item should contain an aggregate")
	}
	if hasAgg(q.sel[0].e) {
		t.Error("1st select item should not contain an aggregate")
	}
	got := q.sel[3].e.String()
	if !strings.Contains(got, "sum(") || !strings.Contains(got, "% 60") {
		t.Errorf("canonical form %q lost structure", got)
	}
}

func TestParsePrecedence(t *testing.T) {
	q, err := parseQuery("select 1+2*3 from s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.sel[0].e.String(); got != "(1 + (2 * 3))" {
		t.Errorf("precedence: %q", got)
	}
	q, err = parseQuery("select (1+2)*3 from s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.sel[0].e.String(); got != "((1 + 2) * 3)" {
		t.Errorf("parens: %q", got)
	}
	q, err = parseQuery("select a from s where x > 1 and y < 2 or not z = 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.where.String(); got != "(((x > 1) and (y < 2)) or (not (z = 3)))" {
		t.Errorf("logical precedence: %q", got)
	}
}

func TestParseCountStar(t *testing.T) {
	isAgg := func(n string) bool { return n == "count" }
	q, err := parseQuery("select count(*) from s", isAgg)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := q.sel[0].e.(*aggExpr)
	if !ok || !a.star || a.name != "count" {
		t.Errorf("count(*) parsed as %#v", q.sel[0].e)
	}
}

func TestParseHavingAndWhere(t *testing.T) {
	isAgg := func(n string) bool { return n == "count" }
	q, err := parseQuery("select d, count(*) from s where proto = 6 group by d having count(*) > 10", isAgg)
	if err != nil {
		t.Fatal(err)
	}
	if q.where == nil || q.having == nil {
		t.Fatal("where/having missing")
	}
	if !hasAgg(q.having) {
		t.Error("having should reference the aggregate")
	}
}

func TestParseErrors(t *testing.T) {
	isAgg := func(n string) bool { return n == "sum" }
	bad := []string{
		"",
		"select",
		"select a",
		"select a from",
		"select a from s group a",
		"select a from s where",
		"select a, from s",
		"select f( from s",
		"select a from s extra",
		"select sum(a from s",
	}
	for _, src := range bad {
		if _, err := parseQuery(src, isAgg); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestASTStringRoundTrips(t *testing.T) {
	isAgg := func(n string) bool { return n == "sum" || n == "count" }
	src := "select tb, sum(len)/60 as rate from TCP where proto = 6 group by time/60 as tb having sum(len) > 0"
	q, err := parseQuery(src, isAgg)
	if err != nil {
		t.Fatal(err)
	}
	// Reparsing the canonical form must produce the identical canonical form.
	q2, err := parseQuery(q.String(), isAgg)
	if err != nil {
		t.Fatalf("canonical form %q does not reparse: %v", q.String(), err)
	}
	if q.String() != q2.String() {
		t.Errorf("not a fixed point:\n%s\n%s", q, q2)
	}
}
