package gsql

import (
	"fmt"
	"math"

	"forwarddecay/decay"
)

// Epoch rollover: runtime-wide landmark advancement (§III-A, §VI-A of the
// paper). Forward decay's static weights g(tᵢ−L) grow without bound, so any
// aggregate holding them in the linear domain degrades or overflows on
// week-long runs. Under exponential decay the landmark can be moved without
// revisiting items (ln g(n−δ) = ln g(n) − αδ, the rescaling trick of
// §VI-A), and every aggregate in this repository keeps its linear-domain
// state under a floating log scale — so a rollover is a uniform, exact,
// O(groups) translation of log quantities, not a lossy rescaling pass.
//
// The supervisor lives in the run (serial and sharded): it watches stream
// time (from tuples via EpochConfig.Time, and from heartbeats), rolls the
// landmark forward every EpochConfig.Every stream-time units, and keeps an
// overflow sentinel that fires when the model's log normalizer — the
// exponent a linear-domain consumer of decayed weights would have to
// exponentiate — crosses MaxLogWeight. On the sharded runtime a rollover
// quiesces the shards: pending batches are shipped, then an epoch request
// rides the same FIFO work channels, so every shard applies the shift at
// exactly the same point of its tuple sequence as the serial run would.

// DefaultMaxLogWeight is the sentinel threshold when EpochConfig leaves
// MaxLogWeight zero. exp(250) ≈ 3.7e108 is far inside float64 range
// (overflow near exp(709.78)) and below the accumulators' internal rebase
// point (core.MaxSafeExp = 300), so a roll triggered here is always exact:
// no state has started degrading yet.
const DefaultMaxLogWeight = 250

// LandmarkShifter is implemented by aggregators whose state can be rebased
// onto a new landmark (the agg package's decayed aggregates and the sample
// package's forward samplers, under exponential decay). The epoch supervisor
// shifts every aggregator that implements it; aggregators that do not —
// undecayed builtins, UDAFs fed caller-computed weights — are left alone.
type LandmarkShifter interface {
	ShiftLandmark(newL float64) error
}

// LandmarkReporter is implemented by aggregators that know their decay
// model's landmark. Restore uses it to verify that a checkpoint's stamped
// landmark matches the landmark embedded in every restored aggregate state,
// refusing checkpoints whose header and state frames disagree.
type LandmarkReporter interface {
	Landmark() float64
}

// EpochConfig enables the epoch supervisor on a run (Options.Epoch /
// ParallelOptions.Epoch).
type EpochConfig struct {
	// Model is the forward decay model whose landmark the supervisor
	// advances. Its function must support landmark shifting (exponential
	// decay) unless MonitorOnly is set.
	Model decay.Forward
	// Every is the rollover period in stream-time units (the same units as
	// Model's timestamps). Zero disables periodic rollover; the overflow
	// sentinel can still trigger rolls.
	Every float64
	// MaxLogWeight is the overflow-sentinel threshold on the model's log
	// normalizer ln g(t−L); zero means DefaultMaxLogWeight. When stream time
	// pushes the normalizer past it the sentinel trips and (unless
	// MonitorOnly) the landmark immediately rolls to the current stream
	// time.
	MaxLogWeight float64
	// MonitorOnly counts sentinel trips but never rolls the landmark —
	// neither periodically nor on overflow pressure. It exists to observe
	// the failure mode rollover removes.
	MonitorOnly bool
	// Time extracts the stream timestamp from an input tuple (ok=false to
	// skip). When nil, the supervisor advances only on Heartbeat.
	Time func(Tuple) (ts float64, ok bool)
	// TimeColumn optionally names the schema column Time reads, letting the
	// batch executor pull timestamps straight off the column vector instead
	// of materializing every row for the Time closure. It is a promise, not a
	// replacement: when set it must agree with Time (which stays authoritative
	// on the scalar path) for every tuple. Empty is always safe.
	TimeColumn string
}

// epochState is the per-run supervisor state.
type epochState struct {
	cfg     EpochConfig
	model   decay.Forward // current model; Landmark advances on each roll
	epoch   uint64        // completed rollovers over the run's lifetime (restored from checkpoints)
	rolls   uint64        // rollovers applied by this run instance
	trips   uint64        // sentinel threshold crossings
	tripped bool          // above threshold since the last roll
	maxLW   float64       // resolved sentinel threshold
}

// newEpochState validates the config; a nil config yields a nil state (the
// supervisor disabled) at zero per-tuple cost beyond one pointer test.
func newEpochState(cfg *EpochConfig) (*epochState, error) {
	if cfg == nil {
		return nil, nil
	}
	if cfg.Model.Func == nil {
		return nil, fmt.Errorf("gsql: epoch config needs a decay model")
	}
	if !cfg.MonitorOnly {
		if _, _, ok := cfg.Model.Shifted(cfg.Model.Landmark); !ok {
			return nil, &decay.NotShiftableError{Func: cfg.Model.Func.String()}
		}
	}
	mlw := cfg.MaxLogWeight
	if mlw <= 0 {
		mlw = DefaultMaxLogWeight
	}
	return &epochState{cfg: *cfg, model: cfg.Model, maxLW: mlw}, nil
}

// time extracts the stream timestamp from a tuple, if configured.
func (ep *epochState) time(t Tuple) (float64, bool) {
	if ep.cfg.Time == nil {
		return 0, false
	}
	return ep.cfg.Time(t)
}

// observe advances the supervisor clock to stream time ts and reports
// whether the landmark must roll, and to where. The sentinel path rolls all
// the way to ts (resetting pressure to zero); the periodic path rolls to the
// last whole period boundary, keeping roll times aligned regardless of gaps
// in the stream.
func (ep *epochState) observe(ts float64) (newL float64, roll bool) {
	if math.IsNaN(ts) || math.IsInf(ts, 0) {
		return 0, false
	}
	if pressure := ep.model.LogNormalizer(ts); pressure >= ep.maxLW {
		if !ep.tripped {
			ep.trips++
			ep.tripped = true
		}
		if !ep.cfg.MonitorOnly {
			return ts, true
		}
	} else {
		ep.tripped = false
	}
	if ep.cfg.Every > 0 && !ep.cfg.MonitorOnly {
		if d := ts - ep.model.Landmark; d >= ep.cfg.Every {
			return ep.model.Landmark + ep.cfg.Every*math.Floor(d/ep.cfg.Every), true
		}
	}
	return 0, false
}

// advanced records a completed roll onto newL.
func (ep *epochState) advanced(newL float64) {
	if m, _, ok := ep.model.Shifted(newL); ok {
		ep.model = m
	} else {
		ep.model.Landmark = newL
	}
	ep.epoch++
	ep.rolls++
	ep.tripped = false
}

// restoreFrom reinstates the epoch counter and landmark stamped into a
// checkpoint header.
func (ep *epochState) restoreFrom(epoch uint64, landmark float64) {
	ep.epoch = epoch
	ep.model = decay.Forward{Func: ep.cfg.Model.Func, Landmark: landmark}
}

// shiftAggs rolls every landmark-aware aggregator of one group onto newL.
// An error (an aggregate whose own decay function cannot shift) poisons the
// run: state across groups may then straddle two landmarks, so the caller
// must not continue pushing.
func shiftAggs(aggs []Aggregator, newL float64) error {
	for _, a := range aggs {
		if ls, ok := a.(LandmarkShifter); ok {
			if err := ls.ShiftLandmark(newL); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyLandmark checks every landmark-reporting aggregate of a restored
// group against the checkpoint's stamped landmark.
func verifyLandmark(aggs []Aggregator, epochSet bool, landmark float64) error {
	if !epochSet {
		return nil
	}
	for _, a := range aggs {
		if lr, ok := a.(LandmarkReporter); ok {
			if l := lr.Landmark(); l != landmark {
				return fmt.Errorf("gsql: checkpoint landmark mismatch: header stamps %g but aggregate state carries %g", landmark, l)
			}
		}
	}
	return nil
}

// ShiftLandmark rolls every live aggregate of the run onto a new landmark —
// the runtime-wide rollover. It is called automatically by the epoch
// supervisor and may also be invoked directly. On error (an aggregate whose
// decay function cannot shift) the run's state may straddle two landmarks
// and must be abandoned.
func (r *Run) ShiftLandmark(newL float64) error {
	for _, g := range r.high {
		if err := shiftAggs(g.aggs, newL); err != nil {
			return err
		}
	}
	for _, i := range r.lowUsed {
		if r.low[i].used {
			if err := shiftAggs(r.low[i].aggs, newL); err != nil {
				return err
			}
		}
	}
	r.curL, r.landmarkSet = newL, true
	if r.ep != nil {
		r.ep.advanced(newL)
	}
	return nil
}

// newGroupAggs instantiates one aggregator per plan slot for a newborn
// group, rebasing them onto the run's current landmark when a rollover has
// moved it: a group born mid-epoch must live in the same frame as every
// shifted group, or checkpoint verification (and cross-frame merges) would
// see state straddling two landmarks.
func (r *Run) newGroupAggs() ([]Aggregator, error) {
	aggs := newAggs(r.p)
	if r.landmarkSet {
		if err := shiftAggs(aggs, r.curL); err != nil {
			return nil, err
		}
	}
	return aggs, nil
}

// maybeRoll is the serial per-tuple epoch hook.
func (r *Run) maybeRoll(t Tuple) error {
	ts, ok := r.ep.time(t)
	if !ok {
		return nil
	}
	newL, roll := r.ep.observe(ts)
	if !roll {
		return nil
	}
	return r.ShiftLandmark(newL)
}

// epochHeartbeat advances the supervisor from a heartbeat timestamp.
func (r *Run) epochHeartbeat(ts Value) error {
	newL, roll := r.ep.observe(ts.AsFloat())
	if !roll {
		return nil
	}
	return r.ShiftLandmark(newL)
}
