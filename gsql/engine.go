package gsql

import (
	"fmt"
	"strings"
)

// Engine holds registered streams and aggregate functions and prepares
// queries against them.
type Engine struct {
	streams map[string]*Schema
	aggs    map[string]AggSpec
}

// NewEngine returns an engine with the builtin aggregates registered.
func NewEngine() *Engine {
	return &Engine{
		streams: make(map[string]*Schema),
		aggs:    builtinAggs(),
	}
}

// RegisterStream makes a stream schema queryable in FROM clauses.
func (e *Engine) RegisterStream(s *Schema) error {
	if s == nil || s.Name == "" {
		return fmt.Errorf("gsql: nil or unnamed schema")
	}
	k := strings.ToLower(s.Name)
	if _, dup := e.streams[k]; dup {
		return fmt.Errorf("gsql: stream %s already registered", s.Name)
	}
	e.streams[k] = s
	return nil
}

// RegisterUDAF installs a user-defined aggregate function; queries may then
// call it like any builtin aggregate. This is the extension mechanism the
// paper uses for the holistic aggregates and samplers (no query-language
// changes needed).
func (e *Engine) RegisterUDAF(spec AggSpec) error {
	if err := validateSpec(spec); err != nil {
		return err
	}
	k := strings.ToLower(spec.Name)
	if _, dup := e.aggs[k]; dup {
		return fmt.Errorf("gsql: aggregate %s already registered", spec.Name)
	}
	e.aggs[k] = spec
	return nil
}

// Statement is a prepared query. Prepare once, then create any number of
// independent Runs.
type Statement struct {
	p    *plan
	text string
}

// WherePredicate returns the statement's compiled WHERE evaluator, or nil
// when the query has no filter. The perf-regression gate (fdbench
// -bench-json) uses it to time predicate evaluation in isolation from the
// rest of the Push cycle.
func (st *Statement) WherePredicate() func(Tuple) (Value, error) {
	if st.p.where == nil {
		return nil
	}
	return st.p.where
}

// BatchPredicate returns a vectorized evaluator of the statement's WHERE
// clause: it fills the batch's selection bitmap with the finite rows that
// pass the filter and returns how many survived. Nil when the query has no
// filter (or it did not compile to kernels — fallback-heavy filters still
// vectorize, so this is rare). The closure owns its scratch state; use one
// instance per goroutine. It is the batch-side counterpart of WherePredicate
// for the perf-regression gate.
func (st *Statement) BatchPredicate() func(*Batch) (int, error) {
	vp := st.p.vec
	if vp == nil || vp.where == nil {
		return nil
	}
	var ctx vctx
	var valid []uint64
	return func(b *Batch) (int, error) {
		ctx.reset(b, vp)
		valid = growBits(valid, b.n)
		b.scanFinite(valid)
		b.sel = growBits(b.sel, b.n)
		maskRange(b.sel, valid, 0, b.n)
		vp.where.run(&ctx, b.sel)
		if ctx.err != nil {
			return 0, ctx.err
		}
		wb := ctx.bits(vp.where)
		for w := range b.sel {
			b.sel[w] &= wb[w]
		}
		return popRange(b.sel, b.n), nil
	}
}

// Prepare parses, plans and compiles a query.
func (e *Engine) Prepare(query string) (*Statement, error) {
	isAgg := func(name string) bool {
		_, ok := e.aggs[name]
		return ok
	}
	ast, err := parseQuery(query, isAgg)
	if err != nil {
		return nil, err
	}
	schema, ok := e.streams[strings.ToLower(ast.from)]
	if !ok {
		return nil, fmt.Errorf("gsql: unknown stream %q", ast.from)
	}
	p, err := buildPlan(ast, schema, e.aggs)
	if err != nil {
		return nil, err
	}
	p.fp = fingerprint(query, schema.Name)
	return &Statement{p: p, text: query}, nil
}

// Columns returns the output column names.
func (s *Statement) Columns() []string { return s.p.Columns() }

// Mergeable reports whether all of the statement's aggregates support
// partial merging (the precondition for the two-level split).
func (s *Statement) Mergeable() bool { return s.p.mergeable }

// Temporal reports whether the statement has a tumbling time-bucket
// group-by expression.
func (s *Statement) Temporal() bool { return s.p.temporalIdx >= 0 }

// Describe returns a terse plan summary for diagnostics.
func (s *Statement) Describe() string { return s.p.describe() }

// Text returns the original query text.
func (s *Statement) Text() string { return s.text }

// Start begins an execution run delivering output rows to sink.
func (s *Statement) Start(sink func(Tuple) error, opts Options) *Run {
	return newRun(s.p, sink, opts)
}

// Execute runs the statement over a finite tuple source, collecting all
// output rows — a convenience for tests and examples. next returns the next
// tuple and false when exhausted.
func (s *Statement) Execute(next func() (Tuple, bool), opts Options) ([]Tuple, error) {
	var out []Tuple
	run := s.Start(func(row Tuple) error {
		out = append(out, row)
		return nil
	}, opts)
	for {
		t, ok := next()
		if !ok {
			break
		}
		if err := run.Push(t); err != nil {
			return out, err
		}
	}
	if err := run.Close(); err != nil {
		return out, err
	}
	return out, nil
}

// SliceSource adapts a slice of tuples to an Execute source.
func SliceSource(tuples []Tuple) func() (Tuple, bool) {
	i := 0
	return func() (Tuple, bool) {
		if i >= len(tuples) {
			return nil, false
		}
		t := tuples[i]
		i++
		return t, true
	}
}
