package gsql

import (
	"testing"
)

// Benchmarks for the per-tuple execution hot path: expression evaluation
// (WHERE, group-by, aggregate arguments) and the full Push cycle. These are
// the numbers the ci.sh regression gate watches via fdbench -bench-json.

// benchStatement prepares the canonical benchmark query: a filter, an
// arithmetic temporal bucket, a key column, and three aggregates — the shape
// of the paper's per-minute traffic queries.
func benchStatement(b *testing.B) *Statement {
	b.Helper()
	e := NewEngine()
	if err := e.RegisterStream(PacketSchema("TCP")); err != nil {
		b.Fatal(err)
	}
	st, err := e.Prepare(`select tb, dstIP, count(*), sum(len), avg(float(len))
	                        from TCP
	                        where len > 0 and destPort = 80
	                        group by time/60 as tb, dstIP`)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// benchTuples builds a cycle of packet tuples spanning 16 groups in one
// time bucket.
func benchTuples() []Tuple {
	tuples := make([]Tuple, 64)
	for i := range tuples {
		tuples[i] = Tuple{
			Int(30), Float(30), Int(100), Int(int64(i % 16)),
			Int(4242), Int(80), Int(6), Int(100 + int64(i)),
		}
	}
	return tuples
}

// BenchmarkExecPush measures the steady-state serial Push path: WHERE
// evaluation, group-key extraction, low-table probe, and aggregate stepping.
func BenchmarkExecPush(b *testing.B) {
	st := benchStatement(b)
	run := st.Start(func(Tuple) error { return nil }, Options{})
	tuples := benchTuples()
	for _, t := range tuples { // materialize all groups
		if err := run.Push(t); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run.Push(tuples[i&63]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := run.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExprPredicate measures compiled predicate evaluation alone: a
// conjunction of comparisons over int columns plus arithmetic.
func BenchmarkExprPredicate(b *testing.B) {
	e := NewEngine()
	if err := e.RegisterStream(PacketSchema("TCP")); err != nil {
		b.Fatal(err)
	}
	st, err := e.Prepare(`select tb, count(*) from TCP
	                        where len*8 > 256 and destPort = 80 and time % 60 < 59
	                        group by time/60 as tb`)
	if err != nil {
		b.Fatal(err)
	}
	where := st.p.where
	tuples := benchTuples()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := where(tuples[i&63]); err != nil {
			b.Fatal(err)
		}
	}
}
