package gsql

import (
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"forwarddecay/agg"
	"forwarddecay/decay"
)

// tcount is a minimal epoch-aware UDAF used by the in-package tests: a
// decayed count wrapping agg.Counter, carrying its model internally so the
// supervisor can shift it (udaf's fd* family follows the same shape, but
// udaf cannot be imported from inside gsql).
type tcountAgg struct {
	s    *agg.Counter
	last float64
}

func (a *tcountAgg) Step(args []Value) error {
	ts := args[0].AsFloat()
	a.s.Observe(ts)
	if ts > a.last {
		a.last = ts
	}
	return nil
}

func (a *tcountAgg) Final() Value { return Float(a.s.Value(a.last)) }

func (a *tcountAgg) Merge(o Aggregator) error {
	oa, ok := o.(*tcountAgg)
	if !ok {
		return errors.New("tcount: bad merge partner")
	}
	if oa.last > a.last {
		a.last = oa.last
	}
	return a.s.Merge(oa.s)
}

func (a *tcountAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *tcountAgg) Landmark() float64                { return a.s.Model().Landmark }

func (a *tcountAgg) MarshalBinary() ([]byte, error) {
	b, err := a.s.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(a.last)), nil
}

func (a *tcountAgg) UnmarshalBinary(b []byte) error {
	if len(b) < 8 {
		return errors.New("tcount: truncated")
	}
	a.last = math.Float64frombits(binary.LittleEndian.Uint64(b[len(b)-8:]))
	return a.s.UnmarshalBinary(b[:len(b)-8])
}

// epochEngine registers the packet schema and the tcount UDAF for model m.
func epochEngine(t *testing.T, m decay.Forward) *Engine {
	t.Helper()
	e := mkEngine(t)
	if err := e.RegisterUDAF(AggSpec{
		Name: "tcount", MinArgs: 1, MaxArgs: 1, Mergeable: true,
		New: func() Aggregator { return &tcountAgg{s: agg.NewCounter(m)} },
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// tupleTime extracts the ftime column of a packet tuple.
func tupleTime(t Tuple) (float64, bool) { return t[1].AsFloat(), true }

func TestEpochObservePeriodic(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.25), 0)
	ep, err := newEpochState(&EpochConfig{Model: m, Every: 100, Time: tupleTime})
	if err != nil {
		t.Fatal(err)
	}
	if _, roll := ep.observe(50); roll {
		t.Fatal("rolled before the first period elapsed")
	}
	// Crossing several periods at once lands on the last whole boundary,
	// not on the observation time.
	newL, roll := ep.observe(250)
	if !roll || newL != 200 {
		t.Fatalf("observe(250) = (%g, %v), want (200, true)", newL, roll)
	}
	ep.advanced(newL)
	if ep.model.Landmark != 200 || ep.rolls != 1 {
		t.Fatalf("after advance: landmark %g rolls %d", ep.model.Landmark, ep.rolls)
	}
	// NaN and Inf observations are ignored.
	if _, roll := ep.observe(math.NaN()); roll {
		t.Fatal("NaN timestamp triggered a roll")
	}
	if _, roll := ep.observe(math.Inf(1)); roll {
		t.Fatal("+Inf timestamp triggered a roll")
	}
}

func TestEpochObserveSentinel(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	ep, err := newEpochState(&EpochConfig{Model: m, MaxLogWeight: 50, Time: tupleTime})
	if err != nil {
		t.Fatal(err)
	}
	if _, roll := ep.observe(40); roll || ep.trips != 0 {
		t.Fatalf("below threshold: roll=%v trips=%d", roll, ep.trips)
	}
	// Pressure = LogNormalizer(60) = 60 >= 50: the sentinel fires and the
	// roll goes all the way to the observation time.
	newL, roll := ep.observe(60)
	if !roll || newL != 60 || ep.trips != 1 {
		t.Fatalf("observe(60) = (%g, %v) trips=%d, want (60, true) trips=1", newL, roll, ep.trips)
	}
	ep.advanced(newL)
	// Pressure resets after the roll; a later crossing counts a new trip.
	if _, roll := ep.observe(100); roll || ep.trips != 1 {
		t.Fatalf("post-roll observe(100): roll=%v trips=%d", roll, ep.trips)
	}
	newL, roll = ep.observe(115)
	if !roll || newL != 115 || ep.trips != 2 {
		t.Fatalf("observe(115) = (%g, %v) trips=%d, want (115, true) trips=2", newL, roll, ep.trips)
	}
}

func TestEpochMonitorOnly(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	ep, err := newEpochState(&EpochConfig{Model: m, Every: 100, MaxLogWeight: 50, MonitorOnly: true, Time: tupleTime})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []float64{60, 70, 80, 200, 300} {
		if _, roll := ep.observe(ts); roll {
			t.Fatalf("monitor-only rolled at ts=%g", ts)
		}
	}
	// The latch counts one trip per crossing, not one per observation.
	if ep.trips != 1 {
		t.Fatalf("trips = %d, want 1 (latched)", ep.trips)
	}
	// Monitor-only accepts non-shiftable models: it never rolls.
	if _, err := newEpochState(&EpochConfig{Model: decay.NewForward(decay.NewPoly(2), 0), MonitorOnly: true}); err != nil {
		t.Fatalf("monitor-only rejected a polynomial model: %v", err)
	}
}

func TestEpochConfigRejected(t *testing.T) {
	if _, err := newEpochState(&EpochConfig{}); err == nil {
		t.Fatal("config without a model accepted")
	}
	_, err := newEpochState(&EpochConfig{Model: decay.NewForward(decay.NewPoly(2), 0), Every: 10})
	var nse *decay.NotShiftableError
	if !errors.As(err, &nse) {
		t.Fatalf("polynomial model error = %v, want *decay.NotShiftableError", err)
	}

	// The same rejection surfaces through the runtimes: the serial run
	// reports it on first use, the parallel run at start.
	e := epochEngine(t, decay.NewForward(decay.NewPoly(2), 0))
	st, err := e.Prepare(`select dstIP, tcount(ftime) from TCP group by dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	bad := Options{Epoch: &EpochConfig{Model: decay.NewForward(decay.NewPoly(2), 0), Every: 10, Time: tupleTime}}
	r := st.Start(func(Tuple) error { return nil }, bad)
	if err := r.Push(pkt(1, 1, 80, 10)); !errors.As(err, &nse) {
		t.Fatalf("serial Push error = %v, want *decay.NotShiftableError", err)
	}
	_, err = st.StartParallel(func(Tuple) error { return nil }, ParallelOptions{
		Shards: 2,
		Epoch:  &EpochConfig{Model: decay.NewForward(decay.NewPoly(2), 0), Every: 10, Time: tupleTime},
	})
	if !errors.As(err, &nse) {
		t.Fatalf("StartParallel error = %v, want *decay.NotShiftableError", err)
	}
}

// epochStream builds a deterministic packet stream over [0, n·gap) seconds.
func epochStream(n int, gap int64) []Tuple {
	tuples := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		sec := int64(i) * gap
		tuples = append(tuples, pkt(sec, 1+sec%3, 80, 10+sec%7))
	}
	return tuples
}

// rowKey renders the group columns of an output row (all but the last
// aggregate column) as a map key.
func rowKey(row Tuple, aggCols int) string {
	var sb strings.Builder
	for _, v := range row[:len(row)-aggCols] {
		sb.WriteString(v.String())
		sb.WriteByte('|')
	}
	return sb.String()
}

// lastRows collapses emitted rows last-write-wins by group key.
func lastRows(rows []Tuple, aggCols int) map[string]Tuple {
	out := make(map[string]Tuple, len(rows))
	for _, r := range rows {
		out[rowKey(r, aggCols)] = r
	}
	return out
}

// bitEqual reports bitwise equality of two values (distinguishing floats by
// their bit patterns, so -0 != +0 and NaN == NaN).
func bitEqual(a, b Value) bool {
	if a.T != b.T {
		return false
	}
	if a.T == TFloat {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	return a == b
}

const testQuery = `select tb, dstIP, tcount(ftime) from TCP group by time/3600 as tb, dstIP`

// TestSerialRolloverEquivalence drives the same stream through a run that
// rolls its landmark every hour and a run that never rolls. Exponential
// decay with a dyadic alpha over integer timestamps makes the rollover an
// exact log-domain translation, so every output bit must match.
func TestSerialRolloverEquivalence(t *testing.T) {
	alpha := math.Exp2(-12)
	m := decay.NewForward(decay.NewExp(alpha), 0)
	e := epochEngine(t, m)
	tuples := epochStream(400, 600) // ~2.8 days, hourly buckets

	var subjRows, oracRows []Tuple
	st, err := e.Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	subj := st.Start(func(r Tuple) error { subjRows = append(subjRows, r); return nil },
		Options{Epoch: &EpochConfig{Model: m, Every: 3600, Time: tupleTime}})
	orac := st.Start(func(r Tuple) error { oracRows = append(oracRows, r); return nil }, Options{})
	for _, tp := range tuples {
		if err := subj.Push(tp); err != nil {
			t.Fatal(err)
		}
		if err := orac.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := subj.Close(); err != nil {
		t.Fatal(err)
	}
	if err := orac.Close(); err != nil {
		t.Fatal(err)
	}

	if rolls := subj.RuntimeStats().EpochRollovers; rolls < 60 {
		t.Fatalf("subject rolled %d times, want >= 60 over ~2.8 days hourly", rolls)
	}
	if got := orac.RuntimeStats().EpochRollovers; got != 0 {
		t.Fatalf("oracle rolled %d times, want 0", got)
	}
	compareRowMaps(t, lastRows(subjRows, 1), lastRows(oracRows, 1))
}

// TestParallelRolloverEquivalence does the same comparison on the sharded
// runtime: the quiesce barrier must apply every shift at the same point of
// each shard's tuple sequence, keeping the output bit-identical to a
// never-rolling parallel run.
func TestParallelRolloverEquivalence(t *testing.T) {
	alpha := math.Exp2(-12)
	m := decay.NewForward(decay.NewExp(alpha), 0)
	e := epochEngine(t, m)
	tuples := epochStream(400, 600)
	st, err := e.Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}

	run := func(epoch *EpochConfig) (map[string]Tuple, RuntimeStats) {
		var rows []Tuple
		pr, err := st.StartParallel(func(r Tuple) error { rows = append(rows, r); return nil },
			ParallelOptions{Shards: 3, BatchSize: 16, Epoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range tuples {
			if err := pr.Push(tp); err != nil {
				t.Fatal(err)
			}
		}
		stats := pr.RuntimeStats()
		if err := pr.Close(); err != nil {
			t.Fatal(err)
		}
		return lastRows(rows, 1), stats
	}

	subjRows, _ := run(&EpochConfig{Model: m, Every: 3600, Time: tupleTime})
	oracRows, _ := run(nil)
	compareRowMaps(t, subjRows, oracRows)
}

func compareRowMaps(t *testing.T, subj, orac map[string]Tuple) {
	t.Helper()
	if len(subj) != len(orac) {
		t.Fatalf("row count differs: subject %d, oracle %d", len(subj), len(orac))
	}
	for k, sr := range subj {
		or, ok := orac[k]
		if !ok {
			t.Fatalf("subject group %q missing from oracle", k)
		}
		for i := range sr {
			if !bitEqual(sr[i], or[i]) {
				t.Fatalf("group %q column %d: subject %v oracle %v (bits %x vs %x)",
					k, i, sr[i], or[i], math.Float64bits(sr[i].F), math.Float64bits(or[i].F))
			}
		}
	}
}

// TestEpochStatsCounters pins the RuntimeStats rollover and sentinel
// counters to exact values on a hand-built stream.
func TestEpochStatsCounters(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	e := epochEngine(t, m)
	st, err := e.Prepare(`select dstIP, tcount(ftime) from TCP group by dstIP`)
	if err != nil {
		t.Fatal(err)
	}

	// Periodic only: tuples at 0,50,...,1000 with Every=100 roll at each
	// boundary crossing: exactly 10 rolls, no trips (threshold never hit).
	r := st.Start(func(Tuple) error { return nil },
		Options{Epoch: &EpochConfig{Model: m, Every: 100, MaxLogWeight: 1e9, Time: tupleTime}})
	for sec := int64(0); sec <= 1000; sec += 50 {
		if err := r.Push(pkt(sec, 1, 80, 1)); err != nil {
			t.Fatal(err)
		}
	}
	stats := r.RuntimeStats()
	if stats.EpochRollovers != 10 || stats.SentinelTrips != 0 {
		t.Fatalf("periodic: rolls=%d trips=%d, want 10/0", stats.EpochRollovers, stats.SentinelTrips)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Sentinel only: alpha=1, threshold 10. Trips at 12 (rolls to 12) and
	// again at 25 (pressure 13): exactly 2 trips, 2 rolls.
	r = st.Start(func(Tuple) error { return nil },
		Options{Epoch: &EpochConfig{Model: m, MaxLogWeight: 10, Time: tupleTime}})
	for _, sec := range []int64{5, 12, 20, 25} {
		if err := r.Push(pkt(sec, 1, 80, 1)); err != nil {
			t.Fatal(err)
		}
	}
	stats = r.RuntimeStats()
	if stats.EpochRollovers != 2 || stats.SentinelTrips != 2 {
		t.Fatalf("sentinel: rolls=%d trips=%d, want 2/2", stats.EpochRollovers, stats.SentinelTrips)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Monitor-only: the same stream counts the trip but never rolls.
	r = st.Start(func(Tuple) error { return nil },
		Options{Epoch: &EpochConfig{Model: m, MaxLogWeight: 10, MonitorOnly: true, Time: tupleTime}})
	for _, sec := range []int64{5, 12, 20} {
		if err := r.Push(pkt(sec, 1, 80, 1)); err != nil {
			t.Fatal(err)
		}
	}
	stats = r.RuntimeStats()
	if stats.EpochRollovers != 0 || stats.SentinelTrips != 1 {
		t.Fatalf("monitor-only: rolls=%d trips=%d, want 0/1", stats.EpochRollovers, stats.SentinelTrips)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHeartbeatDrivesRollover checks that stream-time heartbeats advance the
// supervisor on both runtimes even when no tuples arrive.
func TestHeartbeatDrivesRollover(t *testing.T) {
	m := decay.NewForward(decay.NewExp(math.Exp2(-4)), 0)
	e := epochEngine(t, m)
	st, err := e.Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	cfg := func() *EpochConfig { return &EpochConfig{Model: m, Every: 100, Time: tupleTime} }

	r := st.Start(func(Tuple) error { return nil }, Options{Epoch: cfg()})
	if err := r.Push(pkt(10, 1, 80, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Heartbeat(Int(500)); err != nil {
		t.Fatal(err)
	}
	if rolls := r.RuntimeStats().EpochRollovers; rolls != 1 {
		t.Fatalf("serial heartbeat: rolls=%d, want 1", rolls)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	pr, err := st.StartParallel(func(Tuple) error { return nil }, ParallelOptions{Shards: 2, Epoch: cfg()})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Push(pkt(10, 1, 80, 1)); err != nil {
		t.Fatal(err)
	}
	if err := pr.Heartbeat(Int(500)); err != nil {
		t.Fatal(err)
	}
	if rolls := pr.RuntimeStats().EpochRollovers; rolls != 1 {
		t.Fatalf("parallel heartbeat: rolls=%d, want 1", rolls)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointEpochRoundTrip interrupts an epoch-rolling run mid-epoch and
// verifies the restored run reaches exactly the state of an uninterrupted
// one — including the reinstated landmark, which the next checkpoint must
// stamp identically.
func TestCheckpointEpochRoundTrip(t *testing.T) {
	alpha := math.Exp2(-8)
	m := decay.NewForward(decay.NewExp(alpha), 0)
	e := epochEngine(t, m)
	st, err := e.Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	opts := func() Options {
		return Options{DisableTwoLevel: true, Epoch: &EpochConfig{Model: m, Every: 3600, Time: tupleTime}}
	}
	tuples := epochStream(200, 300) // ~16.6 hours: several rolls

	var fullRows []Tuple
	full := st.Start(func(r Tuple) error { fullRows = append(fullRows, r); return nil }, opts())
	for _, tp := range tuples {
		if err := full.Push(tp); err != nil {
			t.Fatal(err)
		}
	}

	// Interrupted run: cut at a point strictly inside an epoch.
	cut := 101 // t = 30300s: mid-way through the 9th hour
	var rows []Tuple
	r1 := st.Start(func(r Tuple) error { rows = append(rows, r); return nil }, opts())
	for _, tp := range tuples[:cut] {
		if err := r1.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := r1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rolledAtCkpt := r1.RuntimeStats().EpochRollovers
	if rolledAtCkpt == 0 {
		t.Fatal("checkpoint taken before any rollover; stream too short")
	}
	r2, err := st.Restore(ck, func(r Tuple) error { rows = append(rows, r); return nil }, opts())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r2.ep.model.Landmark, r1.ep.model.Landmark; got != want {
		t.Fatalf("restored landmark %g, want %g", got, want)
	}
	if r2.ep.epoch != r1.ep.epoch {
		t.Fatalf("restored epoch %d, want %d", r2.ep.epoch, r1.ep.epoch)
	}
	for _, tp := range tuples[cut:] {
		if err := r2.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	// The restored run keeps rolling on the original period grid.
	if r2.ep.model.Landmark != full.ep.model.Landmark {
		t.Fatalf("final landmark %g, want %g", r2.ep.model.Landmark, full.ep.model.Landmark)
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	compareRowMaps(t, lastRows(rows, 1), lastRows(fullRows, 1))
}

// TestCheckpointLandmarkMismatchRefused hand-tampers a checkpoint so the
// stamped landmark disagrees with the landmark embedded in the aggregate
// states, and verifies restore refuses to merge across frames.
func TestCheckpointLandmarkMismatchRefused(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.25), 0)
	e := epochEngine(t, m)
	st, err := e.Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Epoch: &EpochConfig{Model: m, Every: 1e12, Time: tupleTime}}
	r := st.Start(func(Tuple) error { return nil }, opts)
	for sec := int64(0); sec < 10; sec++ {
		if err := r.Push(pkt(sec, 1, 80, 1)); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	body, err := unsealCkpt(ck)
	if err != nil {
		t.Fatal(err)
	}
	// Header layout with an Int bucket: magic(4) fp(8) ng(8) na(8)
	// bucketFlag(1) bucket(1+8) tuples(8) epochFlag(1) epoch(8) landmark(8).
	const lmOff = 4 + 8 + 8 + 8 + 1 + 9 + 8 + 1 + 8
	if got := math.Float64frombits(binary.LittleEndian.Uint64(body[lmOff:])); got != 0 {
		t.Fatalf("header landmark at offset %d is %g, want 0 — layout drifted", lmOff, got)
	}
	tampered := append([]byte(nil), body...)
	binary.LittleEndian.PutUint64(tampered[lmOff:], math.Float64bits(3600.0))
	if _, err := st.Restore(sealCkpt(tampered), func(Tuple) error { return nil }, opts); err == nil ||
		!strings.Contains(err.Error(), "landmark mismatch") {
		t.Fatalf("tampered restore error = %v, want landmark mismatch", err)
	}
	// A non-finite stamped landmark is refused before any entry is read.
	tampered = append([]byte(nil), body...)
	binary.LittleEndian.PutUint64(tampered[lmOff:], math.Float64bits(math.NaN()))
	if _, err := st.Restore(sealCkpt(tampered), func(Tuple) error { return nil }, opts); err == nil ||
		!strings.Contains(err.Error(), "non-finite landmark") {
		t.Fatalf("NaN-landmark restore error = %v, want non-finite landmark", err)
	}
}

// TestShiftLandmarkDirect exercises the public rollover entry points outside
// the supervisor: callers may roll a run by hand.
func TestShiftLandmarkDirect(t *testing.T) {
	alpha := math.Exp2(-6)
	m := decay.NewForward(decay.NewExp(alpha), 0)
	e := epochEngine(t, m)
	st, err := e.Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	var subjRows, oracRows []Tuple
	subj := st.Start(func(r Tuple) error { subjRows = append(subjRows, r); return nil }, Options{})
	orac := st.Start(func(r Tuple) error { oracRows = append(oracRows, r); return nil }, Options{})
	for sec := int64(0); sec < 500; sec += 10 {
		tp := pkt(sec, 1, 80, 1)
		if err := subj.Push(tp); err != nil {
			t.Fatal(err)
		}
		if err := orac.Push(tp); err != nil {
			t.Fatal(err)
		}
		if sec == 250 {
			if err := subj.ShiftLandmark(128); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := subj.Close(); err != nil {
		t.Fatal(err)
	}
	if err := orac.Close(); err != nil {
		t.Fatal(err)
	}
	compareRowMaps(t, lastRows(subjRows, 1), lastRows(oracRows, 1))
}
