package gsql

import "testing"

// TestCompiledExprSteadyStateAllocs guards the compiled-expression tuple
// path in isolation: a predicate mixing type-specialized comparisons,
// arithmetic and boolean connectives must evaluate with zero allocations.
func TestCompiledExprSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	e := mkEngine(t)
	st, err := e.Prepare(`select tb, count(*) from TCP
	                        where len*8 > 256 and destPort = 80 and time % 60 < 59
	                        group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	where := st.p.where
	tuples := make([]Tuple, 16)
	for i := range tuples {
		tuples[i] = pkt(30, int64(i), 80, int64(100+i))
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := where(tuples[i%len(tuples)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Errorf("compiled predicate allocates %.2f objects/op, want 0", avg)
	}
}

// TestPushSteadyStateAllocs guards the serial hot path's zero-allocation
// property: once every group of the current bucket exists, Push must not
// allocate — group values land in the reused scratch slice, aggregate
// arguments in the reused args buffer, and map probes use the
// string(keyBuf) non-allocating index form.
func TestPushSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	e := mkEngine(t)
	st, err := e.Prepare(`select tb, dstIP, count(*), sum(len), avg(float(len))
	                        from TCP group by time/60 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"two-level", Options{}},
		{"high-only", Options{DisableTwoLevel: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := st.Start(func(Tuple) error { return nil }, tc.opts)
			// Warm up: materialize all 16 groups of the bucket so the
			// steady state is pure probe + step.
			tuples := make([]Tuple, 16)
			for i := range tuples {
				tuples[i] = pkt(30, int64(i), 80, int64(100+i))
			}
			for _, tp := range tuples {
				if err := run.Push(tp); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(1000, func() {
				if err := run.Push(tuples[i%len(tuples)]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Errorf("steady-state Push allocates %.2f objects/op, want 0", avg)
			}
			if err := run.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
