package gsql_test

import (
	"strings"
	"testing"

	"forwarddecay/gsql"
)

// FuzzCheckpointDecode drives the checkpoint decoder with arbitrary bytes.
// Contract: corrupt input returns an error — never a panic, never a partial
// run — and input that does decode yields a run that can push tuples and
// close. Seeded with real checkpoints (empty, mid-window, sketch-bearing)
// so the mutator reaches the group-entry and aggregate-blob paths behind
// the integrity hash.
func FuzzCheckpointDecode(f *testing.F) {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		f.Fatal(err)
	}
	st, err := e.Prepare(`select tb, dstIP, count(*), sum(len), avg(float(len)), min(len), max(len)
	  from TCP group by time/60 as tb, dstIP`)
	if err != nil {
		f.Fatal(err)
	}
	nop := func(gsql.Tuple) error { return nil }

	run := st.Start(nop, gsql.Options{})
	ckpt0, err := run.Checkpoint() // empty-state checkpoint
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ckpt0)
	for _, tp := range trace(3_000, 0, 41) {
		if err := run.Push(tp); err != nil {
			f.Fatal(err)
		}
	}
	ckpt1, err := run.Checkpoint() // mid-window, populated
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ckpt1)
	f.Add([]byte{})
	f.Add([]byte("FDC"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := st.Restore(data, nop, gsql.Options{}); err == nil {
			if err := r.Push(pkt2(100, 1, 80, 50)); err != nil {
				t.Fatalf("restored run rejects a valid tuple: %v", err)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("restored run fails to close: %v", err)
			}
		}
		if pr, err := st.RestoreParallel(data, nop, gsql.ParallelOptions{Shards: 2, BatchSize: 4}); err == nil {
			if err := pr.Push(pkt2(100, 1, 80, 50)); err != nil {
				t.Fatalf("parallel restored run rejects a valid tuple: %v", err)
			}
			if err := pr.Close(); err != nil {
				t.Fatalf("parallel restored run fails to close: %v", err)
			}
		}
	})
}

// FuzzQuery drives the lexer, parser and planner with arbitrary query
// text: Prepare must reject garbage with an error, never panic, for any
// byte sequence — including invalid UTF-8 and deeply nested expressions.
func FuzzQuery(f *testing.F) {
	seeds := []string{
		`select tb, dstIP, count(*) from TCP group by time/60 as tb, dstIP`,
		`select tb, dstIP, count(*), sum(len), avg(float(len)), min(len), max(len)
		   from TCP group by time/60 as tb, dstIP having count(*) > 3`,
		`select tb, proto, count(*) from TCP where len > 200 and proto = 6 group by time/60 as tb, proto`,
		`select tb, sum(float(len)*(time % 60))/60 from TCP group by time/60 as tb`,
		`select`, `select * from`, `((((((`, `select "unterminated`,
		`select 1e309 from TCP group by time/60 as tb`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, query string) {
		// Bound pathological inputs: the parser is recursive-descent, so a
		// megabyte of '(' would legitimately exhaust the stack. Real queries
		// are tiny; the contract is no panic on any plausible input size.
		if len(query) > 4096 {
			return
		}
		st, err := e.Prepare(query)
		if err != nil {
			if !strings.Contains(err.Error(), "gsql") {
				t.Fatalf("error without package prefix: %v", err)
			}
			return
		}
		// A query that parses must plan a runnable statement.
		run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
		_ = run.Close()
	})
}
