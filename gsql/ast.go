package gsql

import (
	"fmt"
	"strconv"
	"strings"
)

// expr is a parsed expression tree node. Nodes render canonically via
// exprString, which the planner uses to match select items against group-by
// expressions.
type expr interface {
	// String returns the canonical (lowercased, fully parenthesized) form.
	String() string
}

// numLit is a numeric literal (integer or float).
type numLit struct {
	v Value
}

func (n *numLit) String() string { return n.v.String() }

// strLit is a string literal.
type strLit struct {
	s string
}

func (s *strLit) String() string { return "'" + s.s + "'" }

// boolLit is a boolean literal.
type boolLit struct {
	b bool
}

func (b *boolLit) String() string { return strconv.FormatBool(b.b) }

// colRef references a stream column by name.
type colRef struct {
	name string // lowercased
	idx  int    // resolved column index
	typ  Type
}

func (c *colRef) String() string { return c.name }

// binExpr is a binary operation: arithmetic (+ - * / %), comparison
// (= != < <= > >=) or logical (and, or).
type binExpr struct {
	op   string
	l, r expr
}

func (b *binExpr) String() string {
	return "(" + b.l.String() + " " + b.op + " " + b.r.String() + ")"
}

// unExpr is a unary operation: - or not.
type unExpr struct {
	op string
	e  expr
}

func (u *unExpr) String() string { return "(" + u.op + " " + u.e.String() + ")" }

// callExpr is a scalar function call.
type callExpr struct {
	name string // lowercased
	args []expr
}

func (c *callExpr) String() string {
	parts := make([]string, len(c.args))
	for i, a := range c.args {
		parts[i] = a.String()
	}
	return c.name + "(" + strings.Join(parts, ", ") + ")"
}

// aggExpr is an aggregate (builtin or UDAF) call; star marks count(*).
type aggExpr struct {
	name string // lowercased
	args []expr
	star bool
	slot int // assigned by the planner
}

func (a *aggExpr) String() string {
	if a.star {
		return a.name + "(*)"
	}
	parts := make([]string, len(a.args))
	for i, arg := range a.args {
		parts[i] = arg.String()
	}
	return a.name + "(" + strings.Join(parts, ", ") + ")"
}

// selectItem is one output expression with an optional alias.
type selectItem struct {
	e     expr
	alias string
}

// groupItem is one group-by expression with an optional alias.
type groupItem struct {
	e     expr
	alias string
}

// queryAST is a parsed query.
type queryAST struct {
	sel    []selectItem
	from   string
	where  expr // nil if absent
	group  []groupItem
	having expr // nil if absent
}

func (q *queryAST) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	for i, s := range q.sel {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.e.String())
		if s.alias != "" {
			fmt.Fprintf(&sb, " as %s", s.alias)
		}
	}
	fmt.Fprintf(&sb, " from %s", q.from)
	if q.where != nil {
		fmt.Fprintf(&sb, " where %s", q.where.String())
	}
	if len(q.group) > 0 {
		sb.WriteString(" group by ")
		for i, g := range q.group {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.e.String())
			if g.alias != "" {
				fmt.Fprintf(&sb, " as %s", g.alias)
			}
		}
	}
	if q.having != nil {
		fmt.Fprintf(&sb, " having %s", q.having.String())
	}
	return sb.String()
}
