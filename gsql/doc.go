// Package gsql is a small streaming query engine modelled on the GS
// (Gigascope) system in which the forward-decay paper's experiments run: an
// SQL-like language over unbounded tuple streams with tumbling time-bucket
// semantics, a two-level aggregation architecture, and user-defined
// aggregate functions (UDAFs).
//
// The features the paper exercises are all present:
//
//   - Queries like the paper's §IV-A decayed count,
//
//     select tb, destIP, destPort,
//     sum(len*(time % 60)*(time % 60))/3600
//     from TCP
//     group by time/60 as tb, destIP, destPort
//
//     parse and run unmodified: integer arithmetic (%, /), group-by
//     expressions with aliases, aggregates nested in arithmetic, WHERE and
//     HAVING filters, and scalar functions (exp, ln, sqrt, pow, abs).
//
//   - Tumbling time buckets: when a monotone group-by expression (one
//     derived from a timestamp column, e.g. time/60) advances, all groups
//     of the closed bucket are emitted — GS's time-bucket semantics.
//     Run.Heartbeat closes buckets during traffic lulls (GS's heartbeat
//     mechanism). Late tuples are never dropped: a tuple arriving after its
//     bucket closed aggregates under its old bucket key and is emitted as a
//     supplementary row at the next flush.
//
//   - Two-level aggregation: a fixed-size low-level hash table performs
//     partial aggregation and evicts partials on collision to a high-level
//     aggregator that merges them (the architecture behind Figure 2(a));
//     Options.DisableTwoLevel turns the split off, as the paper does for
//     Figure 2(b). Non-mergeable UDAFs automatically run at the high level
//     only, matching the paper's setup.
//
//   - UDAFs: RegisterUDAF installs arbitrary aggregate implementations; the
//     repository registers forward-decay samplers, SpaceSaving heavy
//     hitters and the backward-decay baselines this way (see the bench
//     package), with no query-language extensions — the paper's central
//     systems claim.
//
// The engine is deliberately a substrate, not a product: one stream per
// query, no joins, no subqueries.
package gsql
