package gsql

import (
	"math"
	"testing"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v   Value
		typ Type
		str string
		ok  bool // Truthy
	}{
		{Int(42), TInt, "42", true},
		{Int(0), TInt, "0", false},
		{Int(-7), TInt, "-7", true},
		{Float(2.5), TFloat, "2.5", true},
		{Float(0), TFloat, "0", false},
		{Str("hi"), TString, "hi", true},
		{Str(""), TString, "", false},
		{Bool(true), TBool, "true", true},
		{Bool(false), TBool, "false", false},
		{Null, TNull, "NULL", false},
	}
	for _, c := range cases {
		if c.v.T != c.typ {
			t.Errorf("%v: type %v, want %v", c.v, c.v.T, c.typ)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
		if got := c.v.Truthy(); got != c.ok {
			t.Errorf("%v: Truthy = %v, want %v", c.v, got, c.ok)
		}
	}
}

func TestValueConversions(t *testing.T) {
	if Int(7).AsFloat() != 7 || Float(2.9).AsInt() != 2 || Bool(true).AsInt() != 1 {
		t.Error("conversions broken")
	}
	if Null.AsFloat() != 0 || Null.AsInt() != 0 {
		t.Error("NULL conversions should be zero")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull broken")
	}
}

func TestNumericBinopPromotion(t *testing.T) {
	// int ∘ int stays int.
	v, err := numericBinop('/', Int(7), Int(2))
	if err != nil || v.T != TInt || v.I != 3 {
		t.Errorf("7/2 = %v (%v)", v, err)
	}
	v, _ = numericBinop('%', Int(-7), Int(3))
	if v.I != -1 { // Go semantics
		t.Errorf("-7%%3 = %v, want -1", v)
	}
	// Mixed promotes to float.
	v, _ = numericBinop('/', Int(7), Float(2))
	if v.T != TFloat || v.F != 3.5 {
		t.Errorf("7/2.0 = %v", v)
	}
	v, _ = numericBinop('%', Float(7.5), Float(2))
	if math.Abs(v.F-1.5) > 1e-12 {
		t.Errorf("7.5 mod 2 = %v", v)
	}
	// Division by zero errors for ints.
	if _, err := numericBinop('/', Int(1), Int(0)); err == nil {
		t.Error("int division by zero must error")
	}
	if _, err := numericBinop('%', Int(1), Int(0)); err == nil {
		t.Error("int modulo by zero must error")
	}
	// Float division by zero yields ±Inf (SQL-ish permissiveness).
	v, err = numericBinop('/', Float(1), Float(0))
	if err != nil || !math.IsInf(v.F, 1) {
		t.Errorf("1.0/0.0 = %v (%v)", v, err)
	}
}

func TestCompareSemantics(t *testing.T) {
	c, err := compare(Int(1), Float(1.0))
	if err != nil || c != 0 {
		t.Errorf("1 vs 1.0: %d (%v)", c, err)
	}
	c, _ = compare(Int(2), Int(10))
	if c >= 0 {
		t.Error("2 < 10 failed")
	}
	c, _ = compare(Str("b"), Str("a"))
	if c <= 0 {
		t.Error("string compare failed")
	}
	if _, err := compare(Str("x"), Int(1)); err == nil {
		t.Error("string vs int must error")
	}
	c, _ = compare(Bool(true), Int(0))
	if c <= 0 {
		t.Error("true > 0 failed")
	}
}

func TestAppendKeyDistinguishes(t *testing.T) {
	pairs := [][2]Value{
		{Int(1), Int(2)},
		{Int(1), Float(1)},
		{Str("a"), Str("b")},
		{Str("a"), Int(0)},
		{Bool(true), Bool(false)},
		{Null, Int(0)},
	}
	for _, p := range pairs {
		a := string(p[0].appendKey(nil))
		b := string(p[1].appendKey(nil))
		if a == b {
			t.Errorf("appendKey collision between %v and %v", p[0], p[1])
		}
	}
	// Same value encodes identically.
	if string(Int(5).appendKey(nil)) != string(Int(5).appendKey(nil)) {
		t.Error("appendKey not deterministic")
	}
	// String keys with embedded separators stay distinct (terminator).
	x := Str("a").appendKey(nil)
	x = Str("b").appendKey(x)
	y := Str("ab").appendKey(nil)
	y = Str("").appendKey(y)
	if string(x) == string(y) {
		t.Error(`("a","b") and ("ab","") keys collide`)
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{
		TNull: "null", TInt: "int", TFloat: "float", TString: "string", TBool: "bool",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type should render something")
	}
}
