package gsql

import (
	"fmt"
	"strings"
)

// plan is a fully compiled query.
type plan struct {
	schema *Schema
	where  evalFn // nil if absent

	// Group-by expressions evaluated per tuple; groupVals form the group
	// identity.
	groupFns []evalFn
	// temporalIdx is the index of the group expression defining tumbling
	// time buckets, or -1 (single landmark bucket, flushed at close);
	// temporalCol is the schema column it derives from.
	temporalIdx int
	temporalCol int

	// Aggregates, in slot order. aggArgFns[i] are the compiled argument
	// expressions of aggregate i.
	aggSpecs  []AggSpec
	aggArgFns [][]evalFn
	mergeable bool // all aggregates mergeable → two-level split possible

	// keyAppend appends the canonical byte key of a group-value tuple,
	// specialized at plan time over the statically inferred group types.
	keyAppend func(dst []byte, gv Tuple) []byte
	// bucketAfter reports whether bucket value b is strictly later than cur,
	// specialized to the temporal expression's static type.
	bucketAfter func(b, cur Value) bool

	// Output expressions over the combined record groupVals ++ aggFinals.
	outFns   []evalFn
	outNames []string
	having   evalFn // nil if absent

	// vec is the batch-compiled form of the tuple-level expressions (WHERE,
	// group-by, aggregate arguments), or nil when vectorization failed —
	// PushBatch then replays batches through the scalar path row by row.
	vec *vecPlan

	// fp fingerprints the (query text, schema) pair for checkpoint
	// compatibility checks; set by Prepare.
	fp uint64
}

// planHooks parameterize buildPlan for the multi-query runtime. The zero
// value compiles a standalone plan exactly as before.
type planHooks struct {
	// shared is installed as the tuple-level compileEnv's shared hook: the
	// MultiRun's hash-consed slot compiler (see multi.go).
	shared func(e expr) evalFn
	// stripWhere validates and compiles the WHERE clause (so its slots are
	// interned and its errors surface at plan time) but leaves p.where nil
	// and keeps it out of the vectorized plan: the MultiRun applies the
	// filter once per predicate class, before fanning into per-query folds.
	stripWhere bool
	// plainArgs compiles aggregate arguments without the shared hook.
	// Sharded backends evaluate arguments on shard-worker goroutines, where
	// a shared slot's single-threaded memo would race.
	plainArgs bool
}

// buildPlan analyzes and compiles a standalone query.
func buildPlan(q *queryAST, schema *Schema, aggs map[string]AggSpec) (*plan, error) {
	return buildPlanH(q, schema, aggs, planHooks{})
}

// buildPlanH analyzes and compiles a parsed query under the given hooks.
func buildPlanH(q *queryAST, schema *Schema, aggs map[string]AggSpec, hooks planHooks) (*plan, error) {
	p := &plan{schema: schema, temporalIdx: -1, temporalCol: -1, mergeable: true}

	tupleEnv := &compileEnv{
		resolve: func(name string) int { return schema.ColumnIndex(name) },
		colType: func(name string) Type {
			if i := schema.ColumnIndex(name); i >= 0 {
				return schema.Cols[i].Type
			}
			return TNull
		},
		shared: hooks.shared,
		funcs:  builtinFuncs,
	}
	argEnv := tupleEnv
	if hooks.plainArgs {
		plain := *tupleEnv
		plain.shared = nil
		argEnv = &plain
	}

	// WHERE clause: tuple-level, no aggregates.
	if q.where != nil {
		if hasAgg(q.where) {
			return nil, fmt.Errorf("gsql: aggregates are not allowed in WHERE")
		}
		fn, err := tupleEnv.compile(q.where)
		if err != nil {
			return nil, err
		}
		if !hooks.stripWhere {
			p.where = fn
		}
	}

	// Group-by expressions: tuple-level; record canonical keys and aliases
	// for matching select items, and find the temporal expression.
	groupKeyToIdx := map[string]int{}
	groupTypes := make([]Type, 0, len(q.group))
	for i, g := range q.group {
		if hasAgg(g.e) {
			return nil, fmt.Errorf("gsql: aggregates are not allowed in GROUP BY")
		}
		fn, err := tupleEnv.compile(g.e)
		if err != nil {
			return nil, err
		}
		p.groupFns = append(p.groupFns, fn)
		groupTypes = append(groupTypes, tupleEnv.staticType(g.e))
		groupKeyToIdx[exprKey(g.e)] = i
		if g.alias != "" {
			groupKeyToIdx[g.alias] = i
		}
		if p.temporalIdx < 0 {
			if col := monotoneCol(g.e, schema); col >= 0 {
				p.temporalIdx = i
				p.temporalCol = col
			}
		}
	}
	p.keyAppend = buildKeyAppender(groupTypes)
	p.bucketAfter = func(b, cur Value) bool { c, _ := compare(b, cur); return c > 0 }
	if p.temporalIdx >= 0 {
		switch groupTypes[p.temporalIdx] {
		case TInt:
			p.bucketAfter = func(b, cur Value) bool { return b.I > cur.I }
		case TFloat:
			p.bucketAfter = func(b, cur Value) bool { return b.F > cur.F }
		}
	}

	// Aggregate slot assignment: identical aggregate calls share a slot.
	// argASTs mirrors p.aggArgFns with the source expressions, for the batch
	// compiler below.
	aggKeyToSlot := map[string]int{}
	var argASTs [][]expr
	addAgg := func(a *aggExpr) (int, error) {
		key := exprKey(a)
		if slot, ok := aggKeyToSlot[key]; ok {
			return slot, nil
		}
		spec, ok := aggs[a.name]
		if !ok {
			return 0, fmt.Errorf("gsql: unknown aggregate %q", a.name)
		}
		nargs := len(a.args)
		if a.star {
			nargs = 0
		}
		if nargs < spec.MinArgs || nargs > spec.MaxArgs {
			return 0, fmt.Errorf("gsql: %s expects between %d and %d argument(s), got %d",
				a.name, spec.MinArgs, spec.MaxArgs, nargs)
		}
		var argFns []evalFn
		for _, arg := range a.args {
			if hasAgg(arg) {
				return 0, fmt.Errorf("gsql: nested aggregates are not allowed")
			}
			fn, err := argEnv.compile(arg)
			if err != nil {
				return 0, err
			}
			argFns = append(argFns, fn)
		}
		slot := len(p.aggSpecs)
		p.aggSpecs = append(p.aggSpecs, spec)
		p.aggArgFns = append(p.aggArgFns, argFns)
		argASTs = append(argASTs, a.args)
		if !spec.Mergeable {
			p.mergeable = false
		}
		aggKeyToSlot[key] = slot
		return slot, nil
	}

	// Output expressions evaluate against groupVals ++ aggFinals. A select
	// item subtree that textually matches a group-by expression (or its
	// alias) compiles to a reference; aggregate calls compile to their slot.
	nGroups := len(p.groupFns)
	outEnv := &compileEnv{
		resolve: func(name string) int {
			if idx, ok := groupKeyToIdx[name]; ok {
				return idx
			}
			return -1
		},
		aggSlot: func(a *aggExpr) (int, error) {
			slot, err := addAgg(a)
			if err != nil {
				return 0, err
			}
			return nGroups + slot, nil
		},
		subMatch: func(e expr) int {
			if idx, ok := groupKeyToIdx[exprKey(e)]; ok {
				return idx
			}
			return -1
		},
		funcs: builtinFuncs,
	}

	for i, item := range q.sel {
		fn, err := outEnv.compile(item.e)
		if err != nil {
			return nil, err
		}
		// Non-aggregate select items must be derived from the group-by
		// expressions; a bare column that is neither grouped nor aliased
		// has no well-defined value per group.
		if !hasAgg(item.e) && !derivesFromGroups(item.e, groupKeyToIdx) {
			return nil, fmt.Errorf("gsql: select item %d (%s) is neither an aggregate nor a group-by expression",
				i+1, item.e.String())
		}
		p.outFns = append(p.outFns, fn)
		name := item.alias
		if name == "" {
			name = item.e.String()
		}
		p.outNames = append(p.outNames, name)
	}

	if q.having != nil {
		fn, err := outEnv.compile(q.having)
		if err != nil {
			return nil, err
		}
		p.having = fn
	}

	if len(p.aggSpecs) == 0 && len(q.group) > 0 {
		return nil, fmt.Errorf("gsql: GROUP BY without aggregates is not supported")
	}

	// Batch-compile the tuple-level expressions from the same ASTs the scalar
	// closures came from. The scalar compile above already validated every
	// expression, so a nil result here only disables vectorization.
	groupASTs := make([]expr, len(q.group))
	for i, g := range q.group {
		groupASTs[i] = g.e
	}
	vecWhere := q.where
	if hooks.stripWhere {
		vecWhere = nil
	}
	p.vec = compileVecPlan(tupleEnv, schema, vecWhere, groupASTs, argASTs)
	return p, nil
}

// derivesFromGroups reports whether every leaf of e is a literal or matches
// a group-by expression/alias.
func derivesFromGroups(e expr, groups map[string]int) bool {
	if _, ok := groups[exprKey(e)]; ok {
		return true
	}
	switch n := e.(type) {
	case *numLit, *strLit, *boolLit:
		return true
	case *colRef:
		_, ok := groups[n.name]
		return ok
	case *unExpr:
		return derivesFromGroups(n.e, groups)
	case *binExpr:
		return derivesFromGroups(n.l, groups) && derivesFromGroups(n.r, groups)
	case *callExpr:
		for _, a := range n.args {
			if !derivesFromGroups(a, groups) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// temporalOf evaluates the temporal group expression for a heartbeat: a
// synthetic tuple carrying ts in the temporal source column.
func (p *plan) temporalOf(ts Value) (Value, error) {
	if p.temporalIdx < 0 || p.temporalCol < 0 {
		return Null, fmt.Errorf("gsql: query has no temporal bucket")
	}
	scratch := make(Tuple, len(p.schema.Cols))
	scratch[p.temporalCol] = ts
	return p.groupFns[p.temporalIdx](scratch)
}

// Columns returns the output column names, in select-list order.
func (p *plan) Columns() []string {
	out := make([]string, len(p.outNames))
	copy(out, p.outNames)
	return out
}

// describe renders a terse plan summary (used by tests and the CLI).
func (p *plan) describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "groups=%d aggs=%d temporal=%d mergeable=%v",
		len(p.groupFns), len(p.aggSpecs), p.temporalIdx, p.mergeable)
	return sb.String()
}
