package gsql

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
	agg  func(name string) bool // reports whether a name is an aggregate
}

// parseQuery parses a full query. isAgg tells the parser which function
// names denote aggregates (builtins plus registered UDAFs).
func parseQuery(src string, isAgg func(string) bool) (*queryAST, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, agg: isAgg}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected %q after end of query", p.cur().text)
	}
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errorf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("gsql: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) query() (*queryAST, error) {
	if _, err := p.expect(tokKeyword, "select"); err != nil {
		return nil, err
	}
	q := &queryAST{}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		item := selectItem{e: e}
		if p.accept(tokKeyword, "as") {
			id, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			item.alias = strings.ToLower(id.text)
		}
		q.sel = append(q.sel, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "from"); err != nil {
		return nil, err
	}
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	q.from = id.text
	if p.accept(tokKeyword, "where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.where = e
	}
	if p.accept(tokKeyword, "group") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			gi := groupItem{e: e}
			if p.accept(tokKeyword, "as") {
				id, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				gi.alias = strings.ToLower(id.text)
			}
			q.group = append(q.group, gi)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "having") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.having = e
	}
	return q, nil
}

// expr parses with precedence: or < and < not < comparison < additive <
// multiplicative < unary < primary.
func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) notExpr() (expr, error) {
	if p.accept(tokKeyword, "not") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &unExpr{op: "not", e: e}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]string{"=": "=", "!=": "!=", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

func (p *parser) cmpExpr() (expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp {
		if canon, ok := cmpOps[p.cur().text]; ok {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &binExpr{op: canon, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") || p.at(tokOp, "%") {
		op := p.next().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unExpr{op: "-", e: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q: %v", t.text, err)
			}
			return &numLit{Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q: %v", t.text, err)
		}
		return &numLit{Int(n)}, nil
	case t.kind == tokString:
		p.next()
		return &strLit{t.text}, nil
	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.next()
		return &boolLit{t.text == "true"}, nil
	case t.kind == tokIdent:
		p.next()
		name := strings.ToLower(t.text)
		if !p.accept(tokOp, "(") {
			return &colRef{name: name, idx: -1}, nil
		}
		// Function or aggregate call.
		if p.agg != nil && p.agg(name) {
			return p.aggCall(name)
		}
		var args []expr
		if !p.at(tokOp, ")") {
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokOp, ",") {
					break
				}
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &callExpr{name: name, args: args}, nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected %q", t.text)
	}
}

// aggCall parses the argument list of an aggregate after the open paren.
func (p *parser) aggCall(name string) (expr, error) {
	if p.accept(tokOp, "*") {
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &aggExpr{name: name, star: true}, nil
	}
	var args []expr
	if !p.at(tokOp, ")") {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return &aggExpr{name: name, args: args}, nil
}
