package gsql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp      // punctuation and operators
	tokKeyword // reserved words, lowercased
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokKind
	text string
	pos  int
}

// keywords are the reserved words of the query language (lowercased).
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"as": true, "having": true, "and": true, "or": true, "not": true,
	"true": true, "false": true,
}

// lex tokenizes a query string.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			lw := strings.ToLower(word)
			if keywords[lw] {
				toks = append(toks, token{tokKeyword, lw, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := src[j]
				switch {
				case d >= '0' && d <= '9':
					j++
				case d == '.' && !seenDot && !seenExp:
					seenDot = true
					j++
				case (d == 'e' || d == 'E') && !seenExp && j+1 < n &&
					(src[j+1] >= '0' && src[j+1] <= '9' || src[j+1] == '+' || src[j+1] == '-'):
					seenExp = true
					j += 2
				default:
					goto numDone
				}
			}
		numDone:
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("gsql: unterminated string literal at offset %d", i)
				}
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case strings.IndexByte("+-*/%(),=", c) >= 0:
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case c == '<':
			if i+1 < n && (src[i+1] == '=' || src[i+1] == '>') {
				toks = append(toks, token{tokOp, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("gsql: unexpected '!' at offset %d", i)
			}
		default:
			if c < 0x80 && unicode.IsPrint(rune(c)) {
				return nil, fmt.Errorf("gsql: unexpected character %q at offset %d", c, i)
			}
			return nil, fmt.Errorf("gsql: unexpected byte 0x%02x at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
