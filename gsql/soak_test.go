package gsql_test

// Chaos-soak harness for epoch rollover: simulated multi-week streams drive
// a rolling runtime through interleaved faults (crashes with restore-and-
// replay, corrupt-checkpoint probes, heartbeats) and the result is compared
// against a fault-free, never-rolling oracle fed the identical event tape.
// Exponential decay with a dyadic alpha over integer timestamps makes every
// rollover an exact log-domain translation, so the decayed count, sum,
// average, variance and distinct-count must match the oracle bit for bit;
// min/max and the sketch-backed heavy hitters and quantiles are held to
// tight epsilons. The tapes come from internal/faultinject.SoakSchedule and
// are pure functions of the seed: a failure replays exactly.
//
// Both runs use DisableTwoLevel (and the sharded runtime its single-level
// shard tables): low-level eviction merges reorder float additions across a
// crash-restore, which would blur the bit-exact comparison the soak is
// after without exercising anything epoch-related.

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/internal/faultinject"
	"forwarddecay/udaf"
)

// soakQuery exercises the full epoch-aware aggregate surface that supports
// merging and checkpointing, bucketed by simulated day.
const soakQuery = `select tb, dstIP,
    fdcount(ftime), fdsum(ftime, float(len)), fdavg(ftime, float(len)),
    fdvar(ftime, float(len)), fdmin(ftime, float(len)), fdmax(ftime, float(len)),
    fdhh(destPort, ftime), fdpct(len, ftime), fdcard(destPort, ftime)
  from TCP group by time/86400 as tb, dstIP`

const soakAggCols = 9 // aggregate columns after the two group columns

// soakEngine builds an engine with the packet schema and the udaf registry
// (including the fd* family for model m).
func soakEngine(t *testing.T, m decay.Forward) *gsql.Engine {
	t.Helper()
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	if err := udaf.RegisterAll(e, udaf.Config{Decay: m}); err != nil {
		t.Fatal(err)
	}
	return e
}

// soakTuple maps one scheduled tuple event onto the packet schema: the key
// spreads over four dstIP groups per day and sixteen destPort values for the
// heavy-hitter and distinct aggregates; the value becomes len.
func soakTuple(e faultinject.SoakEvent) gsql.Tuple {
	sec := int64(e.T)
	return gsql.Tuple{
		gsql.Int(sec), gsql.Float(float64(sec)), gsql.Int(100),
		gsql.Int(int64(e.Key % 4)), gsql.Int(4242), gsql.Int(int64(e.Key)),
		gsql.Int(6), gsql.Int(int64(e.Val)),
	}
}

// soakTime is the EpochConfig.Time extractor: the ftime column.
func soakTime(t gsql.Tuple) (float64, bool) { return t[1].AsFloat(), true }

// soakRun abstracts the serial and sharded runtimes for the harness.
type soakRun interface {
	Push(gsql.Tuple) error
	Heartbeat(gsql.Value) error
	Checkpoint() ([]byte, error)
	RuntimeStats() gsql.RuntimeStats
	Close() error
}

// soakHarness starts, restores and abandons runs of one runtime flavor.
type soakHarness struct {
	start   func() (soakRun, error)
	restore func(ck []byte) (soakRun, error)
	// abandon models a crash: the run is dropped without a clean close. The
	// sharded runtime still needs its workers released, and any rows its
	// teardown emits are overwritten by the restored run's replay.
	abandon func(r soakRun)
}

// soakOutcome aggregates what the harness observed across run instances.
type soakOutcome struct {
	rolls   uint64
	trips   uint64
	crashes int
	probes  int
}

// driveSoak replays an event tape against the harness: tuples and
// heartbeats feed the live run, checkpoints snapshot it, corrupt probes
// verify a damaged snapshot is refused, and crashes abandon the run and
// restore-and-replay from the latest snapshot.
func driveSoak(t *testing.T, events []faultinject.SoakEvent, h soakHarness) soakOutcome {
	t.Helper()
	run, err := h.start()
	if err != nil {
		t.Fatal(err)
	}
	var out soakOutcome
	var lastCk []byte
	var replay []faultinject.SoakEvent
	collect := func() {
		st := run.RuntimeStats()
		out.rolls += st.EpochRollovers
		out.trips += st.SentinelTrips
	}
	for i, e := range events {
		switch e.Op {
		case faultinject.SoakTuple:
			if err := run.Push(soakTuple(e)); err != nil {
				t.Fatalf("event %d: push: %v", i, err)
			}
			replay = append(replay, e)
		case faultinject.SoakHeartbeat:
			if err := run.Heartbeat(gsql.Int(int64(e.T))); err != nil {
				t.Fatalf("event %d: heartbeat: %v", i, err)
			}
			replay = append(replay, e)
		case faultinject.SoakCheckpoint:
			ck, err := run.Checkpoint()
			if err != nil {
				t.Fatalf("event %d: checkpoint: %v", i, err)
			}
			lastCk, replay = ck, replay[:0]
		case faultinject.SoakCorrupt:
			if lastCk == nil {
				continue
			}
			bad := faultinject.CorruptByte(lastCk, uint64(i))
			if _, err := h.restore(bad); err == nil {
				t.Fatalf("event %d: corrupt checkpoint restored without error", i)
			}
			out.probes++
		case faultinject.SoakCrash:
			if lastCk == nil {
				continue
			}
			collect()
			h.abandon(run)
			if run, err = h.restore(lastCk); err != nil {
				t.Fatalf("event %d: restore after crash: %v", i, err)
			}
			for _, re := range replay {
				if re.Op == faultinject.SoakHeartbeat {
					err = run.Heartbeat(gsql.Int(int64(re.T)))
				} else {
					err = run.Push(soakTuple(re))
				}
				if err != nil {
					t.Fatalf("event %d: replay: %v", i, err)
				}
			}
			out.crashes++
		}
	}
	collect()
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// soakFeed drives the tuple and heartbeat events of a tape into a fault-free
// run, ignoring the fault events.
func soakFeed(t *testing.T, events []faultinject.SoakEvent, run soakRun) {
	t.Helper()
	for i, e := range events {
		var err error
		switch e.Op {
		case faultinject.SoakTuple:
			err = run.Push(soakTuple(e))
		case faultinject.SoakHeartbeat:
			err = run.Heartbeat(gsql.Int(int64(e.T)))
		}
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- row comparison -----------------------------------------------------

func soakRowKey(row gsql.Tuple, aggCols int) string {
	var sb strings.Builder
	for _, v := range row[:len(row)-aggCols] {
		sb.WriteString(v.String())
		sb.WriteByte('|')
	}
	return sb.String()
}

// soakLastRows collapses emitted rows last-write-wins by group key: crashes
// and heartbeat flushes may emit a bucket more than once, and the final
// emission carries the group's complete state.
func soakLastRows(rows []gsql.Tuple, aggCols int) map[string]gsql.Tuple {
	out := make(map[string]gsql.Tuple, len(rows))
	for _, r := range rows {
		out[soakRowKey(r, aggCols)] = r
	}
	return out
}

func soakBitEqual(a, b gsql.Value) bool {
	if a.T != b.T {
		return false
	}
	if a.T == gsql.TFloat {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	return a == b
}

func soakRelClose(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

// soakParseHH parses a rendered heavy-hitter string ("key:count,...") into
// a map.
func soakParseHH(t *testing.T, s string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	if s == "" {
		return out
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			t.Fatalf("malformed heavy-hitter entry %q in %q", part, s)
		}
		c, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			t.Fatalf("malformed heavy-hitter count %q: %v", part, err)
		}
		out[kv[0]] = c
	}
	return out
}

// soakCompare checks a subject row map against the oracle: count, sum,
// average, variance and distinct-count bit for bit; min/max within 1e-9;
// heavy hitters per-key within 1e-6; the quantile exactly.
func soakCompare(t *testing.T, subj, orac map[string]gsql.Tuple) {
	t.Helper()
	if len(subj) != len(orac) {
		t.Fatalf("row count differs: subject %d, oracle %d", len(subj), len(orac))
	}
	for k, sr := range subj {
		or, ok := orac[k]
		if !ok {
			t.Fatalf("subject group %q missing from oracle", k)
		}
		g := len(sr) - soakAggCols
		fail := func(i int, why string) {
			t.Fatalf("group %q column %d: subject %v, oracle %v: %s", k, i, sr[i], or[i], why)
		}
		for _, i := range []int{g + 0, g + 1, g + 2, g + 3, g + 8} { // count, sum, avg, var, card
			if !soakBitEqual(sr[i], or[i]) {
				fail(i, "not bit-identical")
			}
		}
		for _, i := range []int{g + 4, g + 5} { // min, max
			if !soakRelClose(sr[i].AsFloat(), or[i].AsFloat(), 1e-9) {
				fail(i, "beyond 1e-9 relative")
			}
		}
		sh, oh := soakParseHH(t, sr[g+6].S), soakParseHH(t, or[g+6].S)
		if len(sh) != len(oh) {
			fail(g+6, "different heavy-hitter sets")
		}
		for key, sc := range sh {
			oc, ok := oh[key]
			if !ok || !soakRelClose(sc, oc, 1e-6) {
				fail(g+6, "heavy hitter "+key+" diverged")
			}
		}
		if !soakBitEqual(sr[g+7], or[g+7]) { // quantile
			fail(g+7, "quantile differs")
		}
	}
}

// --- subtest A: 30-day chaos soak vs fault-free oracle -------------------

// soakScheduleA is the chaos tape: a month of stream time (two days under
// -short) with periodic heartbeats, checkpoints, corrupt probes and crashes.
func soakScheduleA(short bool) faultinject.SoakConfig {
	if short {
		return faultinject.SoakConfig{
			Seed: 1, Duration: 2 * 86400, MeanGap: 300, Keys: 16,
			HeartbeatEvery: 7200, CheckpointEvery: 14400,
			CrashEvery: 43200, CorruptEvery: 50000,
		}
	}
	return faultinject.SoakConfig{
		Seed: 1, Duration: 30 * 86400, MeanGap: 300, Keys: 16,
		HeartbeatEvery: 7200, CheckpointEvery: 43200,
		CrashEvery: 2 * 86400, CorruptEvery: 100000,
	}
}

func TestSoakChaosSerial(t *testing.T) {
	cfg := soakScheduleA(testing.Short())
	events := faultinject.SoakSchedule(cfg)
	m := decay.NewForward(decay.NewExp(math.Exp2(-12)), 0)
	e := soakEngine(t, m)
	st, err := e.Prepare(soakQuery)
	if err != nil {
		t.Fatal(err)
	}

	var subjRows []gsql.Tuple
	subjSink := func(r gsql.Tuple) error { subjRows = append(subjRows, r); return nil }
	opts := func() gsql.Options {
		return gsql.Options{
			DisableTwoLevel: true,
			Epoch:           &gsql.EpochConfig{Model: m, Every: 3600, Time: soakTime},
		}
	}
	out := driveSoak(t, events, soakHarness{
		start:   func() (soakRun, error) { return st.Start(subjSink, opts()), nil },
		restore: func(ck []byte) (soakRun, error) { return st.Restore(ck, subjSink, opts()) },
		abandon: func(soakRun) {},
	})

	var oracRows []gsql.Tuple
	orac := st.Start(func(r gsql.Tuple) error { oracRows = append(oracRows, r); return nil },
		gsql.Options{DisableTwoLevel: true})
	soakFeed(t, events, orac)

	wantRolls := uint64(cfg.Duration/3600) - 2
	if out.rolls < wantRolls {
		t.Fatalf("subject rolled %d times over %v s, want >= %d", out.rolls, cfg.Duration, wantRolls)
	}
	if out.trips != 0 {
		t.Fatalf("sentinel tripped %d times under hourly rollover, want 0", out.trips)
	}
	if out.crashes == 0 || out.probes == 0 {
		t.Fatalf("chaos tape exercised %d crashes and %d corrupt probes; want both > 0", out.crashes, out.probes)
	}
	subj, orc := soakLastRows(subjRows, soakAggCols), soakLastRows(oracRows, soakAggCols)
	if len(subj) < 8 {
		t.Fatalf("only %d groups emitted; soak too small to be meaningful", len(subj))
	}
	soakCompare(t, subj, orc)
}

func TestSoakChaosParallel(t *testing.T) {
	cfg := soakScheduleA(testing.Short())
	cfg.Seed = 2
	events := faultinject.SoakSchedule(cfg)
	m := decay.NewForward(decay.NewExp(math.Exp2(-12)), 0)
	e := soakEngine(t, m)
	st, err := e.Prepare(soakQuery)
	if err != nil {
		t.Fatal(err)
	}

	var subjRows []gsql.Tuple
	subjSink := func(r gsql.Tuple) error { subjRows = append(subjRows, r); return nil }
	popts := func(epoch bool) gsql.ParallelOptions {
		o := gsql.ParallelOptions{Shards: 3, BatchSize: 8, BufferedBatches: 2}
		if epoch {
			o.Epoch = &gsql.EpochConfig{Model: m, Every: 3600, Time: soakTime}
		}
		return o
	}
	out := driveSoak(t, events, soakHarness{
		start:   func() (soakRun, error) { return st.StartParallel(subjSink, popts(true)) },
		restore: func(ck []byte) (soakRun, error) { return st.RestoreParallel(ck, subjSink, popts(true)) },
		abandon: func(r soakRun) { _ = r.Close() },
	})

	var oracRows []gsql.Tuple
	orac, err := st.StartParallel(func(r gsql.Tuple) error { oracRows = append(oracRows, r); return nil }, popts(false))
	if err != nil {
		t.Fatal(err)
	}
	soakFeed(t, events, orac)

	if wantRolls := uint64(cfg.Duration/3600) - 2; out.rolls < wantRolls {
		t.Fatalf("subject rolled %d times, want >= %d", out.rolls, wantRolls)
	}
	if out.crashes == 0 {
		t.Fatal("chaos tape exercised no crashes")
	}
	soakCompare(t, soakLastRows(subjRows, soakAggCols), soakLastRows(oracRows, soakAggCols))
}

// --- subtest B: the overflow the rollover exists to prevent --------------

// TestSoakOverflowPin demonstrates the failure mode: a UDAF fed
// caller-computed linear-domain weights (exp(t·alpha) in the query) goes
// non-finite partway through the stream, while the epoch-aware fd* family
// stays finite over the same tape. In monitor-only mode the sentinel counts
// the pressure crossing without rolling; with the supervisor enabled the
// landmark rolls hourly and the sentinel never fires.
func TestSoakOverflowPin(t *testing.T) {
	// exp(t/2048) overflows float64 near t = 1.45M s (day ~16.8 of 30);
	// under -short a coarser alpha overflows within the two-day tape.
	days, div := 30, 2048.0
	if testing.Short() {
		days, div = 2, 64.0
	}
	alpha := 1 / div
	events := faultinject.SoakSchedule(faultinject.SoakConfig{
		Seed: 3, Duration: float64(days) * 86400, MeanGap: 600, Keys: 16,
	})
	m := decay.NewForward(decay.NewExp(alpha), 0)
	e := soakEngine(t, m)
	query := `select tb, sshh(destPort, exp(ftime/` + strconv.FormatFloat(div, 'f', -1, 64) + `)),
	    fdhh(destPort, ftime), fdcount(ftime)
	  from TCP group by time/86400 as tb`
	st, err := e.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}

	run := func(epoch *gsql.EpochConfig) (map[string]gsql.Tuple, gsql.RuntimeStats) {
		var rows []gsql.Tuple
		r := st.Start(func(row gsql.Tuple) error { rows = append(rows, row); return nil },
			gsql.Options{Epoch: epoch})
		var stats gsql.RuntimeStats
		for i, ev := range events {
			if ev.Op != faultinject.SoakTuple {
				continue
			}
			if err := r.Push(soakTuple(ev)); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
		}
		stats = r.RuntimeStats()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return soakLastRows(rows, 3), stats
	}

	// Monitor-only: the sentinel observes the overflow pressure but must not
	// intervene, and the linear-domain sketch demonstrably degrades.
	rows, stats := run(&gsql.EpochConfig{Model: m, MonitorOnly: true, Time: soakTime})
	if stats.SentinelTrips == 0 || stats.EpochRollovers != 0 {
		t.Fatalf("monitor-only: trips=%d rolls=%d, want trips>0 rolls=0", stats.SentinelTrips, stats.EpochRollovers)
	}
	overflowed := false
	for _, row := range rows {
		s := row[len(row)-3].S // sshh column
		if strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
			overflowed = true
		}
		fd := row[len(row)-2].S // fdhh column stays finite throughout
		if strings.Contains(fd, "Inf") || strings.Contains(fd, "NaN") {
			t.Fatalf("fdhh went non-finite: %q", fd)
		}
	}
	if !overflowed {
		t.Fatal("linear-domain sshh never overflowed; the pin lost its point")
	}

	// Supervisor enabled: hourly rolls keep the pressure far below the
	// sentinel, and the fd* surface stays finite and healthy.
	rows, stats = run(&gsql.EpochConfig{Model: m, Every: 3600, Time: soakTime})
	if stats.EpochRollovers == 0 || stats.SentinelTrips != 0 {
		t.Fatalf("rolling: trips=%d rolls=%d, want trips=0 rolls>0", stats.SentinelTrips, stats.EpochRollovers)
	}
	for k, row := range rows {
		c := row[len(row)-1]
		if c.T != gsql.TFloat || math.IsNaN(c.F) || math.IsInf(c.F, 0) || c.F <= 0 {
			t.Fatalf("group %q: fdcount = %v under rollover, want finite positive", k, c)
		}
	}
}

// --- subtest C: mid-epoch checkpoint equality ----------------------------

// TestSoakMidEpochRestore interrupts a rolling run strictly inside an epoch
// and verifies the restored run finishes in exactly the state of an
// uninterrupted one, on both runtimes.
func TestSoakMidEpochRestore(t *testing.T) {
	events := faultinject.SoakSchedule(faultinject.SoakConfig{
		Seed: 4, Duration: 6 * 3600, MeanGap: 60, Keys: 16,
	})
	cut := len(events) * 3 / 5
	for int64(events[cut].T)%3600 == 0 { // insist on a mid-epoch cut point
		cut++
	}
	m := decay.NewForward(decay.NewExp(math.Exp2(-10)), 0)
	e := soakEngine(t, m)
	st, err := e.Prepare(soakQuery)
	if err != nil {
		t.Fatal(err)
	}
	epoch := func() *gsql.EpochConfig {
		return &gsql.EpochConfig{Model: m, Every: 3600, Time: soakTime}
	}

	t.Run("serial", func(t *testing.T) {
		opts := func() gsql.Options {
			return gsql.Options{DisableTwoLevel: true, Epoch: epoch()}
		}
		var fullRows []gsql.Tuple
		full := st.Start(func(r gsql.Tuple) error { fullRows = append(fullRows, r); return nil }, opts())
		soakFeed(t, events, full)

		var rows []gsql.Tuple
		sink := func(r gsql.Tuple) error { rows = append(rows, r); return nil }
		r1 := st.Start(sink, opts())
		for _, ev := range events[:cut] {
			if ev.Op == faultinject.SoakTuple {
				if err := r1.Push(soakTuple(ev)); err != nil {
					t.Fatal(err)
				}
			}
		}
		ck, err := r1.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if r1.RuntimeStats().EpochRollovers == 0 {
			t.Fatal("checkpoint predates the first rollover; cut too early")
		}
		r2, err := st.Restore(ck, sink, opts())
		if err != nil {
			t.Fatal(err)
		}
		soakFeed(t, events[cut:], r2)
		if r2.RuntimeStats().EpochRollovers == 0 {
			t.Fatal("restored run never rolled; supervisor state was not reinstated")
		}
		soakCompareExact(t, soakLastRows(rows, soakAggCols), soakLastRows(fullRows, soakAggCols))
	})

	t.Run("parallel", func(t *testing.T) {
		popts := func() gsql.ParallelOptions {
			return gsql.ParallelOptions{Shards: 3, BatchSize: 8, Epoch: epoch()}
		}
		var fullRows []gsql.Tuple
		full, err := st.StartParallel(func(r gsql.Tuple) error { fullRows = append(fullRows, r); return nil }, popts())
		if err != nil {
			t.Fatal(err)
		}
		soakFeed(t, events, full)

		var rows []gsql.Tuple
		sink := func(r gsql.Tuple) error { rows = append(rows, r); return nil }
		p1, err := st.StartParallel(sink, popts())
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events[:cut] {
			if ev.Op == faultinject.SoakTuple {
				if err := p1.Push(soakTuple(ev)); err != nil {
					t.Fatal(err)
				}
			}
		}
		ck, err := p1.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if err := p1.Close(); err != nil {
			t.Fatal(err)
		}
		p2, err := st.RestoreParallel(ck, sink, popts())
		if err != nil {
			t.Fatal(err)
		}
		soakFeed(t, events[cut:], p2)
		if p2.RuntimeStats().EpochRollovers == 0 {
			t.Fatal("restored parallel run never rolled")
		}
		soakCompareExact(t, soakLastRows(rows, soakAggCols), soakLastRows(fullRows, soakAggCols))
	})
}

// soakCompareExact demands bit-identity on every column: within one runtime
// flavor, checkpoint-restore must be perfectly transparent.
func soakCompareExact(t *testing.T, subj, orac map[string]gsql.Tuple) {
	t.Helper()
	if len(subj) != len(orac) {
		t.Fatalf("row count differs: subject %d, oracle %d", len(subj), len(orac))
	}
	for k, sr := range subj {
		or, ok := orac[k]
		if !ok {
			t.Fatalf("subject group %q missing from oracle", k)
		}
		for i := range sr {
			if !soakBitEqual(sr[i], or[i]) {
				t.Fatalf("group %q column %d: subject %v, oracle %v", k, i, sr[i], or[i])
			}
		}
	}
}

// --- subtest D: rollover under load shedding -----------------------------

// TestSoakRolloverUnderShedding verifies liveness: with drop-newest
// shedding, tiny buffers and frequent rollovers, the run neither deadlocks
// nor errors, and the supervisor keeps rolling.
func TestSoakRolloverUnderShedding(t *testing.T) {
	events := faultinject.SoakSchedule(faultinject.SoakConfig{
		Seed: 5, Duration: 4 * 3600, MeanGap: 2, Keys: 16,
	})
	m := decay.NewForward(decay.NewExp(math.Exp2(-8)), 0)
	e := soakEngine(t, m)
	st, err := e.Prepare(soakQuery)
	if err != nil {
		t.Fatal(err)
	}
	var rows []gsql.Tuple
	pr, err := st.StartParallel(func(r gsql.Tuple) error { rows = append(rows, r); return nil },
		gsql.ParallelOptions{
			Shards: 2, BatchSize: 4, BufferedBatches: 1, Overload: gsql.OverloadDropNewest,
			Epoch: &gsql.EpochConfig{Model: m, Every: 600, Time: soakTime},
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		if ev.Op != faultinject.SoakTuple {
			continue
		}
		if err := pr.Push(soakTuple(ev)); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	stats := pr.RuntimeStats()
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.EpochRollovers < 10 {
		t.Fatalf("rolled %d times over 4 h at 10-minute periods, want >= 10", stats.EpochRollovers)
	}
	if len(rows) == 0 {
		t.Fatal("no output rows emitted")
	}
}

// --- subtest E: samplers roll exactly ------------------------------------

// TestSoakSamplersRollExactly covers the serial-only forward samplers
// (excluded from the chaos soak because they are deliberately not
// checkpointable): a rolling run must render exactly the samples of a
// never-rolling run, since the log-domain key rebase preserves every
// priority comparison.
func TestSoakSamplersRollExactly(t *testing.T) {
	events := faultinject.SoakSchedule(faultinject.SoakConfig{
		Seed: 6, Duration: 8 * 3600, MeanGap: 120, Keys: 16,
	})
	m := decay.NewForward(decay.NewExp(math.Exp2(-10)), 0)
	e := soakEngine(t, m)
	st, err := e.Prepare(`select tb, fdprisamp(len, ftime), fdwrsamp(len, ftime)
	  from TCP group by time/86400 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	run := func(epoch *gsql.EpochConfig) map[string]gsql.Tuple {
		var rows []gsql.Tuple
		r := st.Start(func(row gsql.Tuple) error { rows = append(rows, row); return nil },
			gsql.Options{Epoch: epoch})
		soakFeed(t, events, r)
		return soakLastRows(rows, 2)
	}
	subj := run(&gsql.EpochConfig{Model: m, Every: 3600, Time: soakTime})
	orac := run(nil)
	soakCompareExact(t, subj, orac)
}
