package gsql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"forwarddecay/internal/core"
)

// TestQuickIntegerArithmeticMatchesGo property-tests the expression
// evaluator's integer semantics (truncating /, Go's %) against direct Go
// computation over random operands.
func TestQuickIntegerArithmeticMatchesGo(t *testing.T) {
	e := NewEngine()
	s := MustSchema("s", Column{Name: "a", Type: TInt}, Column{Name: "b", Type: TInt})
	if err := e.RegisterStream(s); err != nil {
		t.Fatal(err)
	}
	ops := []struct {
		op string
		fn func(a, b int64) int64
	}{
		{"+", func(a, b int64) int64 { return a + b }},
		{"-", func(a, b int64) int64 { return a - b }},
		{"*", func(a, b int64) int64 { return a * b }},
		{"/", func(a, b int64) int64 { return a / b }},
		{"%", func(a, b int64) int64 { return a % b }},
	}
	f := func(a, b int32, which uint8) bool {
		op := ops[int(which)%len(ops)]
		if (op.op == "/" || op.op == "%") && b == 0 {
			b = 1
		}
		st, err := e.Prepare(fmt.Sprintf("select max(a %s b) from s", op.op))
		if err != nil {
			return false
		}
		rows, err := st.Execute(SliceSource([]Tuple{{Int(int64(a)), Int(int64(b))}}), Options{})
		if err != nil || len(rows) != 1 {
			return false
		}
		return rows[0][0].AsInt() == op.fn(int64(a), int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

// randExpr generates a random expression tree over columns a, b and small
// literals.
func randExpr(rng *core.RNG, depth int) expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return &colRef{name: "a", idx: -1}
		case 1:
			return &colRef{name: "b", idx: -1}
		default:
			return &numLit{Int(int64(rng.Intn(9) + 1))}
		}
	}
	ops := []string{"+", "-", "*", "/", "%"}
	return &binExpr{
		op: ops[rng.Intn(len(ops))],
		l:  randExpr(rng, depth-1),
		r:  randExpr(rng, depth-1),
	}
}

// TestQuickCanonicalFormFixedPoint: rendering a random expression and
// reparsing it yields the identical canonical form (parser/printer agree).
func TestQuickCanonicalFormFixedPoint(t *testing.T) {
	f := func(seed uint64, depthRaw uint8) bool {
		rng := core.NewRNG(seed)
		ex := randExpr(rng, 1+int(depthRaw)%4)
		src := "select count(*) from s where " + ex.String() + " > 0"
		isAgg := func(n string) bool { return n == "count" }
		q, err := parseQuery(src, isAgg)
		if err != nil {
			return false
		}
		q2, err := parseQuery(q.String(), isAgg)
		if err != nil {
			return false
		}
		return q.String() == q2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Error(err)
	}
}

// TestQuickTwoLevelEquivalence: for random streams and slot counts, the
// two-level split produces exactly the rows of single-level execution.
func TestQuickTwoLevelEquivalence(t *testing.T) {
	e := NewEngine()
	if err := e.RegisterStream(PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`select tb, dstIP, count(*), sum(len), min(len), max(len), avg(len) from TCP group by time/7 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, slotsRaw uint8) bool {
		rng := core.NewRNG(seed)
		n := 500 + int(seed%500)
		tuples := make([]Tuple, n)
		for i := range tuples {
			tuples[i] = pkt(int64(i/20), int64(rng.Intn(40)), 80, int64(40+rng.Intn(1400)))
		}
		slots := 1 << (2 + uint(slotsRaw)%6) // 4..128 slots, forcing evictions
		split, err := st.Execute(SliceSource(tuples), Options{LowLevelSlots: slots})
		if err != nil {
			return false
		}
		single, err := st.Execute(SliceSource(tuples), Options{DisableTwoLevel: true})
		if err != nil {
			return false
		}
		if len(split) != len(single) {
			return false
		}
		for i := range split {
			for j := range split[i] {
				a, b := split[i][j], single[i][j]
				if a.T != b.T {
					return false
				}
				if a.T == TFloat {
					if d := a.F - b.F; d > 1e-9 || d < -1e-9 {
						return false
					}
				} else if a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupKeyUniqueness: every emitted bucket contains each group
// exactly once.
func TestQuickGroupKeyUniqueness(t *testing.T) {
	e := NewEngine()
	if err := e.RegisterStream(PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`select tb, dstIP, count(*) from TCP group by time/5 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := core.NewRNG(seed)
		tuples := make([]Tuple, 400)
		for i := range tuples {
			tuples[i] = pkt(int64(i/10), int64(rng.Intn(20)), 80, 100)
		}
		rows, err := st.Execute(SliceSource(tuples), Options{LowLevelSlots: 8})
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		var total int64
		for _, r := range rows {
			key := r[0].String() + "|" + r[1].String()
			if seen[key] {
				return false
			}
			seen[key] = true
			total += r[2].AsInt()
		}
		return total == int64(len(tuples))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(44))}); err != nil {
		t.Error(err)
	}
}

// TestQuickLexerNeverPanics feeds random strings to the lexer; it must
// return tokens or an error, never panic.
func TestQuickLexerNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		toks, err := lex(s)
		if err == nil && len(toks) == 0 {
			return false // always at least EOF
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(45))}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserNeverPanics feeds token-ish garbage to the parser.
func TestQuickParserNeverPanics(t *testing.T) {
	words := []string{"select", "from", "where", "group", "by", "as", "and",
		"or", "not", "count", "sum", "(", ")", ",", "+", "*", "/", "%", "=",
		"<", "a", "b", "1", "2.5", "'x'", "*"}
	f := func(seed uint64, nRaw uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := core.NewRNG(seed)
		parts := make([]string, 1+int(nRaw)%25)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		src := strings.Join(parts, " ")
		_, _ = parseQuery(src, func(n string) bool { return n == "count" || n == "sum" })
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(46))}); err != nil {
		t.Error(err)
	}
}
