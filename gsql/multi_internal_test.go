package gsql

import (
	"testing"
)

// FuzzCanonicalize guards the property the multi-query runtime's CSE rests
// on: the canonical form (the AST's lowercased, fully parenthesized
// String()) is a fixed point of parsing. Any text that parses must
// re-parse from its canonical form to the same canonical form — otherwise
// two spellings of one expression could intern to different shared slots,
// or worse, two different expressions to the same slot.
func FuzzCanonicalize(f *testing.F) {
	seeds := []string{
		`select tb, count(*) from TCP group by time/60 as tb`,
		`select tb, dstIP, sum(len), avg(float(len)) from TCP where len > 200 group by time/60 as tb, dstIP`,
		`select TB, COUNT(*) from tcp WHERE (LEN*8) > 256 and destPort=80 group by TIME / 60 as TB`,
		`select tb, count(*) from TCP where not (len < 10 or len > 1000) group by time/60 as tb having count(*) > 2`,
		`select tb, dstIP % 2, min(len), max(len) from TCP group by time/60 as tb, dstIP % 2`,
		`select t, sum(len + 0) from TCP where proto = 6 and len - 1 >= 0 group by time as t`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	isAgg := func(name string) bool { _, ok := builtinAggs()[name]; return ok }
	f.Fuzz(func(t *testing.T, src string) {
		ast, err := parseQuery(src, isAgg)
		if err != nil {
			return // unparseable input is out of scope
		}
		canon := ast.String()
		ast2, err := parseQuery(canon, isAgg)
		if err != nil {
			t.Fatalf("canonical form does not re-parse:\n  src   = %q\n  canon = %q\n  err   = %v", src, canon, err)
		}
		if again := ast2.String(); again != canon {
			t.Fatalf("canonicalization is not idempotent:\n  src    = %q\n  canon  = %q\n  canon2 = %q", src, canon, again)
		}
		if ast.where != nil {
			if k1, k2 := exprKey(ast.where), exprKey(ast2.where); k1 != k2 {
				t.Fatalf("WHERE slot keys diverge across a round trip: %q vs %q", k1, k2)
			}
		}
	})
}

// TestMultiSharedPushAllocs: the steady-state shared pass must not
// allocate — neither when the class predicate rejects the tuple for all
// members in one branch, nor when it passes and fans out into every
// member's fold.
func TestMultiSharedPushAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	e := mkEngine(t)
	m, err := NewMultiRun(e, "TCP", Options{})
	if err != nil {
		t.Fatal(err)
	}
	nop := func(Tuple) error { return nil }
	queries := []string{
		`select tb, dstIP, count(*), sum(len) from TCP where destPort = 80 group by time/60 as tb, dstIP`,
		`select tb, dstIP, avg(float(len)) from TCP where destPort = 80 group by time/60 as tb, dstIP`,
		`select tb, count(*) from TCP where destPort = 80 and len > 0 group by time/60 as tb`,
		`select tb, dstIP, max(len) from TCP group by time/60 as tb, dstIP`,
	}
	for _, q := range queries {
		if _, err := m.Attach(q, 0, nop); err != nil {
			t.Fatalf("attach %q: %v", q, err)
		}
	}
	// Warm up: materialize every group the steady state will touch.
	hit := make([]Tuple, 8)
	miss := make([]Tuple, 8)
	for i := range hit {
		hit[i] = pkt(30, int64(i), 80, int64(100+i))
		miss[i] = pkt(30, int64(i), 443, int64(100+i))
	}
	for i := 0; i < 64; i++ {
		if err := m.Push(hit[i%len(hit)]); err != nil {
			t.Fatal(err)
		}
		if err := m.Push(miss[i%len(miss)]); err != nil {
			t.Fatal(err)
		}
	}

	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		if err := m.Push(miss[i%len(miss)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Errorf("class-rejected shared push allocates %.2f objects/op, want 0", avg)
	}

	i = 0
	avg = testing.AllocsPerRun(2000, func() {
		if err := m.Push(hit[i%len(hit)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Errorf("fan-out shared push allocates %.2f objects/op, want 0", avg)
	}
}

// TestMultiSharedSlotMemo pins the memo protocol: within one shared tuple,
// a slot evaluates once no matter how many plans read it; across tuples it
// re-evaluates.
func TestMultiSharedSlotMemo(t *testing.T) {
	e := mkEngine(t)
	m, err := NewMultiRun(e, "TCP", Options{})
	if err != nil {
		t.Fatal(err)
	}
	nop := func(Tuple) error { return nil }
	// Both queries share WHERE and the sum argument; the group expression
	// time/60 is shared three ways (two plans + nothing else).
	for _, q := range []string{
		`select tb, sum(len*8) from TCP where len > 10 group by time/60 as tb`,
		`select tb, count(*), sum(len*8), min(len*8) from TCP where len > 10 group by time/60 as tb`,
	} {
		if _, err := m.Attach(q, 0, nop); err != nil {
			t.Fatal(err)
		}
	}
	st := m.MultiStats()
	if st.ExprHits == 0 {
		t.Fatalf("no plan-time sharing: %+v", st)
	}
	for i := 0; i < 10; i++ {
		if err := m.Push(pkt(int64(10*i), 1, 80, 100)); err != nil {
			t.Fatal(err)
		}
	}
	st = m.MultiStats()
	if st.MemoHits == 0 {
		t.Fatalf("no runtime sharing: %+v", st)
	}
	// time/60 and len*8 are read by two plans each; len>10 once per tuple
	// (the class gate) — so misses are bounded by distinct slots × tuples,
	// and hits must cover the second plan's reads.
	if st.MemoMisses == 0 || st.MemoHits < 10 {
		t.Fatalf("memo counters off: %+v", st)
	}
}
