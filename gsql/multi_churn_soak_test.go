package gsql_test

import (
	"bytes"
	"fmt"
	"testing"

	"forwarddecay/gsql"
	"forwarddecay/internal/faultinject"
)

// Churn-soak smoke: one faultinject.SoakSchedule tape drives a catalog
// through attach/detach churn while poison queries come and go (attached by
// SoakPoison, fenced by the breaker, lifted again by SoakRevive — and
// re-fenced, since the stream keeps faulting them). The same tape replayed
// with the poison/revive events stripped is the oracle: the base catalog's
// rows and final checkpoints must be bit-for-bit identical, proving the
// quarantine lifecycle is invisible to healthy neighbors even under
// concurrent catalog churn.

// soakEventTuple renders a tape tuple into the TCP packet schema: stream
// time from T, addresses from Key, length from Val.
func soakEventTuple(ev faultinject.SoakEvent) gsql.Tuple {
	return gsql.Tuple{
		gsql.Int(int64(ev.T)), gsql.Float(ev.T), gsql.Int(int64(ev.Key >> 8 & 0xffff)),
		gsql.Int(int64(ev.Key) & 255), gsql.Int(4242), gsql.Int(80),
		gsql.Int(6), gsql.Int(100 + int64(ev.Val)),
	}
}

func runChurnSoak(t *testing.T, tape []faultinject.SoakEvent, base []string, poisons bool) ([][]gsql.Tuple, [][]byte) {
	t.Helper()
	e := parallelEngine(t)
	m, err := gsql.NewMultiRun(e, "TCP", isoOpts(gsql.IsolateConfig{BreakerErrors: 4}))
	if err != nil {
		t.Fatal(err)
	}

	rows := make([][]gsql.Tuple, len(base))
	handles := make([]*gsql.MultiHandle, len(base))
	for i, q := range base {
		i := i
		handles[i], err = m.Attach(q, 0, func(r gsql.Tuple) error { rows[i] = append(rows[i], r); return nil })
		if err != nil {
			t.Fatal(err)
		}
	}

	// Churned queries cycle FIFO; their texts continue the base numbering so
	// both runs attach identical specs at identical tape positions.
	var churned []*gsql.MultiHandle
	var fenced []*gsql.MultiHandle
	nextChurn, nextPoison := len(base), 0
	for _, ev := range tape {
		switch ev.Op {
		case faultinject.SoakTuple:
			if err := m.Push(soakEventTuple(ev)); err != nil {
				t.Fatal(err)
			}
		case faultinject.SoakHeartbeat:
			if err := m.Heartbeat(gsql.Int(int64(ev.T))); err != nil {
				t.Fatal(err)
			}
		case faultinject.SoakAttach:
			h, err := m.Attach(soakCatalogQuery(nextChurn), 0, func(gsql.Tuple) error { return nil })
			if err != nil {
				t.Fatalf("churn attach %d: %v", nextChurn, err)
			}
			nextChurn++
			churned = append(churned, h)
		case faultinject.SoakDetach:
			if len(churned) > 0 {
				churned[0].Detach()
				churned = churned[1:]
			}
		case faultinject.SoakPoison:
			if !poisons {
				continue
			}
			h, err := m.Attach(fmt.Sprintf(
				`select tb, sum(len / (len - len) + %d) from TCP group by time/60 as tb`, nextPoison),
				0, func(gsql.Tuple) error { return nil })
			if err != nil {
				t.Fatalf("poison attach %d: %v", nextPoison, err)
			}
			nextPoison++
			fenced = append(fenced, h)
		case faultinject.SoakRevive:
			if len(fenced) == 0 {
				continue
			}
			h := fenced[0]
			if q, _ := h.Quarantined(); !q {
				t.Fatal("revive fired before its poison was fenced")
			}
			fenced = fenced[1:]
			if err := h.Revive(); err != nil {
				t.Fatalf("revive: %v", err)
			}
			fenced = append(fenced, h) // it will re-trip on the next tuples
		}
	}

	finals := make([][]byte, len(base))
	for i, h := range handles {
		if finals[i], err = h.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if poisons && nextPoison == 0 {
		t.Fatal("tape scheduled no poison events; the smoke proves nothing")
	}
	return rows, finals
}

func TestMultiChurnSoak(t *testing.T) {
	cfg := faultinject.SoakConfig{
		Seed:           7,
		Duration:       3000,
		MeanGap:        1,
		Keys:           1 << 16,
		HeartbeatEvery: 250,
		AttachEvery:    150,
		DetachEvery:    300,
		PoisonEvery:    500,
		ReviveAfter:    120,
	}
	tape := faultinject.SoakSchedule(cfg)

	base := make([]string, 12)
	for i := range base {
		base[i] = soakCatalogQuery(i)
	}

	poisoned, poisonedCkpts := runChurnSoak(t, tape, base, true)
	oracle, oracleCkpts := runChurnSoak(t, tape, base, false)

	emitted := 0
	for i := range base {
		requireIdentical(t, oracle[i], poisoned[i], fmt.Sprintf("churn-soak survivor %d", i))
		if !bytes.Equal(oracleCkpts[i], poisonedCkpts[i]) {
			t.Errorf("churn-soak survivor %d: final checkpoint differs from the oracle", i)
		}
		emitted += len(poisoned[i])
	}
	if emitted == 0 {
		t.Fatal("churn soak emitted no rows; the fixture is too small to prove anything")
	}
}
