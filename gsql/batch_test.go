package gsql_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/udaf"
)

// Differential property suite for the columnar batch path: PushBatch must be
// bit-for-bit equivalent to pushing the same tuples one by one under the
// standard caller policy (skip-and-continue on *NonFiniteValueError, stop on
// anything else) — identical result rows, identical tuple accounting,
// identical errors, identical checkpoints-as-restored — across the serial
// and sharded runtimes, with and without epoch rollovers, at every batch
// size worth worrying about.

// toBatches slices tuples into columnar batches of the given size.
func toBatches(t *testing.T, tuples []gsql.Tuple, size int) []*gsql.Batch {
	t.Helper()
	var out []*gsql.Batch
	for lo := 0; lo < len(tuples); lo += size {
		hi := min(lo+size, len(tuples))
		b, err := gsql.NewBatch(gsql.PacketSchema("TCP"))
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range tuples[lo:hi] {
			if err := b.Append(tp); err != nil {
				t.Fatal(err)
			}
		}
		out = append(out, b)
	}
	return out
}

// scalarPushAll drives a run the way every scalar caller does: non-finite
// rejects are counted and skipped, any other error surfaces. Returns rows,
// reject count, tuple count and the first non-reject error.
func scalarPushAll(t *testing.T, st *gsql.Statement, tuples []gsql.Tuple, opts gsql.Options) (rows []gsql.Tuple, rejected int, pushed uint64, pushErr error) {
	t.Helper()
	run := st.Start(func(row gsql.Tuple) error { rows = append(rows, row); return nil }, opts)
	for _, tp := range tuples {
		if err := run.Push(tp); err != nil {
			var nfe *gsql.NonFiniteValueError
			if errors.As(err, &nfe) {
				rejected++
				continue
			}
			pushed, _ = run.Stats()
			return rows, rejected, pushed, err
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	pushed, _ = run.Stats()
	return rows, rejected, pushed, nil
}

// batchPushAll drives the same workload through PushBatch.
func batchPushAll(t *testing.T, st *gsql.Statement, tuples []gsql.Tuple, size int, opts gsql.Options) (rows []gsql.Tuple, rejected int, pushed uint64, pushErr error) {
	t.Helper()
	run := st.Start(func(row gsql.Tuple) error { rows = append(rows, row); return nil }, opts)
	for _, b := range toBatches(t, tuples, size) {
		rej, err := run.PushBatch(b)
		rejected += rej
		if err != nil {
			pushed, _ = run.Stats()
			return rows, rejected, pushed, err
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	pushed, _ = run.Stats()
	return rows, rejected, pushed, nil
}

// requireSameOutcome asserts the two drive styles agreed on everything
// observable: rows, rejects, tuple accounting and error.
func requireSameOutcome(t *testing.T, label string,
	sRows []gsql.Tuple, sRej int, sN uint64, sErr error,
	bRows []gsql.Tuple, bRej int, bN uint64, bErr error) {
	t.Helper()
	requireIdentical(t, sRows, bRows, label)
	if sRej != bRej {
		t.Fatalf("%s: scalar rejected %d, batch %d", label, sRej, bRej)
	}
	if sN != bN {
		t.Fatalf("%s: scalar counted %d tuples, batch %d", label, sN, bN)
	}
	switch {
	case (sErr == nil) != (bErr == nil):
		t.Fatalf("%s: scalar err %v, batch err %v", label, sErr, bErr)
	case sErr != nil && sErr.Error() != bErr.Error():
		t.Fatalf("%s: scalar err %q, batch err %q", label, sErr, bErr)
	}
}

var batchSizes = []int{1, 7, 64, 256}

// TestPushBatchEquivalenceSerial: the serial batch path over the builtin
// aggregates, compiled WHERE/HAVING and mixed int/float expressions — in
// arrival order and shuffled — is bit-identical to scalar pushes.
func TestPushBatchEquivalenceSerial(t *testing.T) {
	queries := []string{
		`select tb, dstIP, destPort, count(*), sum(len), avg(float(len)), min(len), max(len)
		   from TCP group by time/60 as tb, dstIP, destPort`,
		`select tb, dstIP, count(*), sum(float(len)*(time % 60)*(time % 60))/3600
		   from TCP group by time/60 as tb, dstIP`,
		`select tb, proto, count(*) from TCP where len > 200 and destPort = 80
		   group by time/60 as tb, proto`,
		`select tb, dstIP, count(*), avg(float(len)) from TCP
		   group by time/60 as tb, dstIP having count(*) > 3`,
	}
	e := parallelEngine(t)
	for _, ooo := range []int{0, 64} {
		tuples := trace(20_000, ooo, 11)
		for qi, q := range queries {
			st, err := e.Prepare(q)
			if err != nil {
				t.Fatalf("prepare %q: %v", q, err)
			}
			for _, opts := range []gsql.Options{{}, {DisableTwoLevel: true}} {
				sRows, sRej, sN, sErr := scalarPushAll(t, st, tuples, opts)
				if len(sRows) == 0 {
					t.Fatalf("query %d produced no rows; workload too small", qi)
				}
				for _, size := range batchSizes {
					bRows, bRej, bN, bErr := batchPushAll(t, st, tuples, size, opts)
					requireSameOutcome(t,
						fmt.Sprintf("query %d, ooo %d, twoLevel %v, batch %d", qi, ooo, !opts.DisableTwoLevel, size),
						sRows, sRej, sN, sErr, bRows, bRej, bN, bErr)
				}
			}
		}
	}
}

// fdEngine registers the packet stream plus the epoch-aware fd* aggregates
// under an exponential forward-decay model.
func fdEngine(t *testing.T, m decay.Forward) *gsql.Engine {
	t.Helper()
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	cfg := udaf.Config{SampleSize: 50, Epsilon: 0.01, Phi: 0.01, Window: 60, Seed: 1, Decay: m}
	if err := udaf.RegisterAll(e, cfg); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPushBatchEquivalenceEpoch: decayed aggregates under an epoch
// supervisor whose period forces mid-batch landmark rolls. The batch path
// must segment at exactly the scalar roll points — including when the batch
// is not timestamp-sorted and when the epoch time comes from the TimeColumn
// fast path — and reproduce the scalar results bit-for-bit.
func TestPushBatchEquivalenceEpoch(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.5), 0)
	e := fdEngine(t, m)
	st, err := e.Prepare(`select tb, dstIP, count(*), fdcount(ftime), fdsum(ftime, float(len))
	   from TCP where len > 0 group by time/2 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	for _, ooo := range []int{0, 32} {
		tuples := trace(20_000, ooo, 5) // ~4s of stream time at 5000 pkt/s
		for _, timeCol := range []string{"", "ftime"} {
			epoch := func() *gsql.EpochConfig {
				return &gsql.EpochConfig{
					Model:      m,
					Every:      0.25, // ~16 rolls across the trace, most mid-batch
					Time:       func(tp gsql.Tuple) (float64, bool) { return tp[1].AsFloat(), true },
					TimeColumn: timeCol,
				}
			}
			sRows, sRej, sN, sErr := scalarPushAll(t, st, tuples, gsql.Options{Epoch: epoch()})
			if len(sRows) == 0 {
				t.Fatal("epoch workload produced no rows")
			}
			for _, size := range batchSizes {
				bRows, bRej, bN, bErr := batchPushAll(t, st, tuples, size, gsql.Options{Epoch: epoch()})
				requireSameOutcome(t,
					fmt.Sprintf("ooo %d, timeCol %q, batch %d", ooo, timeCol, size),
					sRows, sRej, sN, sErr, bRows, bRej, bN, bErr)
			}
		}
	}
}

// TestPushBatchNonFinite: NaN and ±Inf floats at batch edges and interiors
// are rejected row-by-row with the same counts and the same surviving
// results as the scalar path's per-tuple *NonFiniteValueError skips.
func TestPushBatchNonFinite(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(`select tb, dstIP, count(*), sum(len) from TCP
	   where len > 0 group by time/60 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(2_000, 0, 3)
	poison := []struct {
		idx int
		v   float64
	}{
		{0, math.NaN()}, {1, math.Inf(1)}, {63, math.NaN()}, {64, math.Inf(-1)},
		{100, math.NaN()}, {255, math.Inf(1)}, {256, math.NaN()}, {1999, math.Inf(-1)},
	}
	for _, p := range poison {
		tp := append(gsql.Tuple(nil), tuples[p.idx]...)
		tp[1] = gsql.Float(p.v)
		tuples[p.idx] = tp
	}
	sRows, sRej, sN, sErr := scalarPushAll(t, st, tuples, gsql.Options{})
	if sRej != len(poison) {
		t.Fatalf("scalar path rejected %d, want %d", sRej, len(poison))
	}
	for _, size := range batchSizes {
		bRows, bRej, bN, bErr := batchPushAll(t, st, tuples, size, gsql.Options{})
		requireSameOutcome(t, fmt.Sprintf("batch %d", size),
			sRows, sRej, sN, sErr, bRows, bRej, bN, bErr)
	}
}

// TestPushBatchErrorReplay: a mid-batch expression error (integer division
// by zero in the WHERE clause) must surface with the scalar path's exact
// message and with the tuple counter stopped at the scalar row.
func TestPushBatchErrorReplay(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(`select tb, count(*) from TCP
	   where 100/(len-150) > -1000000 group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]gsql.Tuple, 200)
	for i := range tuples {
		tuples[i] = pkt2(int64(i/50), int64(i%16), 80, 100+int64(i%100))
	}
	tuples[137] = pkt2(2, 5, 80, 150) // divides by zero
	sRows, sRej, sN, sErr := scalarPushAll(t, st, tuples, gsql.Options{})
	if sErr == nil {
		t.Fatal("scalar path did not hit the division error")
	}
	for _, size := range batchSizes {
		bRows, bRej, bN, bErr := batchPushAll(t, st, tuples, size, gsql.Options{})
		requireSameOutcome(t, fmt.Sprintf("batch %d", size),
			sRows, sRej, sN, sErr, bRows, bRej, bN, bErr)
	}
}

// TestPushBatchCheckpointEquivalence: a checkpoint cut at a batch boundary
// restores into a run whose continuation matches the scalar kill-recover
// cycle bit-for-bit (checkpoint bytes themselves are map-order dependent,
// so equivalence is asserted through restore-and-continue).
func TestPushBatchCheckpointEquivalence(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(ckptQueryExact)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(12_000, 0, 7)
	const cut = 7_936 // 31 × 256: a batch boundary for every size used
	want := killRecoverSerial(t, st, tuples, cut, gsql.Options{})

	for _, size := range []int{64, 256} {
		var rows []gsql.Tuple
		sink := func(row gsql.Tuple) error { rows = append(rows, row); return nil }
		run := st.Start(sink, gsql.Options{})
		for _, b := range toBatches(t, tuples[:cut], size) {
			if _, err := run.PushBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		ckpt, err := run.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		restored, err := gsql.RestoreStatement(st, ckpt, sink, gsql.Options{})
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		for _, b := range toBatches(t, tuples[cut:], size) {
			if _, err := restored.PushBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := restored.Close(); err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, rows, fmt.Sprintf("batch %d kill-recover", size))
	}
}

// TestPushBatchEquivalenceParallel: the sharded batch path (coordinator-side
// vectorized WHERE/group kernels, gv-shipping, epoch quiesce between
// segments) reproduces the sharded scalar Push output bit-for-bit at every
// shard count. The baseline is parallel scalar Push, not the serial run:
// fd* aggregates under epoch shifts are merge-order sensitive at the last
// ULP between the serial and sharded runtimes (a pre-existing property of
// the two-level merge, independent of batching), and the batch path's
// contract is "identical to Pushing the same rows into the same runtime".
func TestPushBatchEquivalenceParallel(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.5), 0)
	e := fdEngine(t, m)
	queries := []string{
		`select tb, dstIP, destPort, count(*), sum(len), min(len), max(len)
		   from TCP where len > 100 group by time/60 as tb, dstIP, destPort`,
		`select tb, dstIP, count(*), fdcount(ftime), fdsum(ftime, float(len))
		   from TCP group by time/2 as tb, dstIP`,
	}
	epoch := func() *gsql.EpochConfig {
		return &gsql.EpochConfig{
			Model:      m,
			Every:      0.25,
			Time:       func(tp gsql.Tuple) (float64, bool) { return tp[1].AsFloat(), true },
			TimeColumn: "ftime",
		}
	}
	tuples := trace(20_000, 0, 13)
	for qi, q := range queries {
		st, err := e.Prepare(q)
		if err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		for _, shards := range []int{1, 2, 4} {
			popts := func() gsql.ParallelOptions {
				po := gsql.ParallelOptions{Shards: shards, BatchSize: 64}
				if qi == 1 {
					po.Epoch = epoch()
				}
				return po
			}
			var want []gsql.Tuple
			pr, err := st.StartParallel(func(row gsql.Tuple) error { want = append(want, row); return nil }, popts())
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range tuples {
				if err := pr.Push(tp); err != nil {
					t.Fatal(err)
				}
			}
			if err := pr.Close(); err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("query %d produced no rows", qi)
			}
			for _, size := range []int{64, 256} {
				var rows []gsql.Tuple
				pb, err := st.StartParallel(func(row gsql.Tuple) error { rows = append(rows, row); return nil }, popts())
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range toBatches(t, tuples, size) {
					if _, err := pb.PushBatch(b); err != nil {
						t.Fatal(err)
					}
				}
				if err := pb.Close(); err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, want, rows,
					fmt.Sprintf("query %d, %d shards, batch %d", qi, shards, size))
			}
		}
	}
}

// TestPushBatchSteadyStateAllocs guards the batch hot path's allocation-free
// property: once groups and kernel scratch exist, a whole PushBatch cycle —
// finite scan, vectorized WHERE, group kernels, key runs, batched aggregate
// stepping — must not allocate.
func TestPushBatchSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	e := parallelEngine(t)
	st, err := e.Prepare(`select tb, dstIP, count(*), sum(len), avg(float(len))
	   from TCP where len > 0 and destPort = 80 group by time/60 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
	b, err := gsql.NewBatch(gsql.PacketSchema("TCP"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := b.Append(pkt2(30, int64(i%16), 80, 100+int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := run.PushBatch(b); err != nil { // warm groups + scratch
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := run.PushBatch(b); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state PushBatch allocates %.2f objects/op, want 0", avg)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
}
