package gsql_test

import (
	"fmt"
	"strings"
	"testing"

	"forwarddecay/gsql"
	"forwarddecay/netgen"
	"forwarddecay/sketch"
)

// parallelEngine returns an engine with the packet schema registered.
func parallelEngine(t *testing.T) *gsql.Engine {
	t.Helper()
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	return e
}

// trace materializes n packet tuples; ooo > 0 shuffles delivery through a
// buffer of that size (timestamps stay correct, arrival order does not).
func trace(n, ooo int, seed uint64) []gsql.Tuple {
	cfg := netgen.DefaultConfig(5000, seed)
	cfg.Hosts = 50 // few enough hosts that groups repeat within a bucket
	cfg.OutOfOrder = ooo
	g := netgen.New(cfg)
	out := make([]gsql.Tuple, n)
	for i := range out {
		out[i] = netgen.Tuple(g.Next())
	}
	return out
}

// serialRows runs the statement serially and collects rows.
func serialRows(t *testing.T, st *gsql.Statement, tuples []gsql.Tuple, opts gsql.Options) []gsql.Tuple {
	t.Helper()
	rows, err := st.Execute(gsql.SliceSource(tuples), opts)
	if err != nil {
		t.Fatalf("serial execute: %v", err)
	}
	return rows
}

// parallelRows runs the statement under the sharded runtime and collects rows.
func parallelRows(t *testing.T, st *gsql.Statement, tuples []gsql.Tuple, popts gsql.ParallelOptions) []gsql.Tuple {
	t.Helper()
	rows, err := st.ExecuteParallel(gsql.SliceSource(tuples), popts)
	if err != nil {
		t.Fatalf("parallel execute: %v", err)
	}
	return rows
}

// requireIdentical asserts two result sets are bit-identical (same rows,
// same order, same values — including float payloads).
func requireIdentical(t *testing.T, serial, parallel []gsql.Tuple, label string) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: serial emitted %d rows, parallel %d", label, len(serial), len(parallel))
	}
	for i := range serial {
		if len(serial[i]) != len(parallel[i]) {
			t.Fatalf("%s row %d: width %d vs %d", label, i, len(serial[i]), len(parallel[i]))
		}
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("%s row %d col %d: serial %v, parallel %v", label, i, j, serial[i][j], parallel[i][j])
			}
		}
	}
}

// TestParallelEquivalenceExact: for every builtin aggregate (count, sum,
// avg, min, max — integer and float arguments), WHERE and HAVING clauses,
// the sharded runtime must produce output bit-identical to the serial run at
// every shard count. Hash routing pins each group to one shard, so even
// float accumulation order matches.
func TestParallelEquivalenceExact(t *testing.T) {
	queries := []string{
		`select tb, dstIP, destPort, count(*), sum(len), avg(float(len)), min(len), max(len)
		   from TCP group by time/60 as tb, dstIP, destPort`,
		`select tb, dstIP, count(*), sum(float(len)*(time % 60)*(time % 60))/3600
		   from TCP group by time/60 as tb, dstIP`,
		`select tb, proto, count(*) from TCP where len > 200 group by time/60 as tb, proto`,
		`select tb, dstIP, count(*), avg(float(len)) from TCP
		   group by time/60 as tb, dstIP having count(*) > 3`,
	}
	e := parallelEngine(t)
	tuples := trace(30_000, 0, 11)
	for qi, q := range queries {
		st, err := e.Prepare(q)
		if err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		want := serialRows(t, st, tuples, gsql.Options{})
		if len(want) == 0 {
			t.Fatalf("query %d produced no rows; workload too small", qi)
		}
		for _, shards := range []int{1, 2, 3, 4, 8} {
			got := parallelRows(t, st, tuples, gsql.ParallelOptions{Shards: shards, BatchSize: 64})
			requireIdentical(t, want, got, fmt.Sprintf("query %d, %d shards", qi, shards))
		}
	}
}

// TestParallelEquivalenceOutOfOrder: out-of-order delivery must not break
// equivalence — flush points are driven by the same tuples in both runtimes,
// so late tuples land in (and re-open groups within) the same emission
// windows.
func TestParallelEquivalenceOutOfOrder(t *testing.T) {
	e := parallelEngine(t)
	const q = `select tb, dstIP, count(*), sum(len), avg(float(len))
	             from TCP group by time/60 as tb, dstIP`
	st, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, ooo := range []int{16, 512} {
		tuples := trace(20_000, ooo, 23)
		want := serialRows(t, st, tuples, gsql.Options{})
		got := parallelRows(t, st, tuples, gsql.ParallelOptions{Shards: 4, BatchSize: 32})
		requireIdentical(t, want, got, fmt.Sprintf("ooo=%d", ooo))
	}
}

// TestParallelEquivalenceHeartbeat: identical heartbeat sequences must close
// identical buckets in both runtimes, including buckets closed purely by
// heartbeat (no tuples after the lull).
func TestParallelEquivalenceHeartbeat(t *testing.T) {
	e := parallelEngine(t)
	const q = `select tb, dstIP, count(*), sum(len) from TCP group by time/60 as tb, dstIP`
	st, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(5_000, 0, 31)

	type event struct {
		t  gsql.Tuple
		hb gsql.Value // non-null → heartbeat instead of tuple
	}
	var events []event
	for i, tp := range tuples {
		events = append(events, event{t: tp})
		if i%997 == 0 {
			// Heartbeat two buckets past the tuple's own time.
			events = append(events, event{hb: gsql.Int(tp[0].AsInt() + 120)})
		}
	}

	var want []gsql.Tuple
	run := st.Start(func(row gsql.Tuple) error { want = append(want, row); return nil }, gsql.Options{})
	for _, ev := range events {
		var err error
		if ev.hb.IsNull() {
			err = run.Push(ev.t)
		} else {
			err = run.Heartbeat(ev.hb)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}

	var got []gsql.Tuple
	pr, err := st.StartParallel(func(row gsql.Tuple) error { got = append(got, row); return nil },
		gsql.ParallelOptions{Shards: 3, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.hb.IsNull() {
			err = pr.Push(ev.t)
		} else {
			err = pr.Heartbeat(ev.hb)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got, "heartbeat sequence")
}

// ssTopAgg is a mergeable heavy-hitter UDAF over a SpaceSaving summary,
// reporting the top key — a stand-in for the paper's sshh UDAF that keeps
// this test free of the udaf package.
type ssTopAgg struct{ ss *sketch.SpaceSaving }

func (a *ssTopAgg) Step(args []gsql.Value) error {
	a.ss.Update(uint64(args[0].AsInt()), 1)
	return nil
}

func (a *ssTopAgg) Final() gsql.Value {
	top := a.ss.Top(1)
	if len(top) == 0 {
		return gsql.Null
	}
	return gsql.Int(int64(top[0].Key))
}

func (a *ssTopAgg) Merge(o gsql.Aggregator) error {
	a.ss.Merge(o.(*ssTopAgg).ss)
	return nil
}

// kmvAgg is a mergeable distinct-count UDAF over a KMV sketch. KMV merge is
// a union, so sharded execution is exact, not merely approximate.
type kmvAgg struct{ s *sketch.KMV }

func (a *kmvAgg) Step(args []gsql.Value) error {
	a.s.Insert(uint64(args[0].AsInt()))
	return nil
}

func (a *kmvAgg) Final() gsql.Value { return gsql.Float(a.s.Estimate()) }

func (a *kmvAgg) Merge(o gsql.Aggregator) error {
	a.s.Merge(o.(*kmvAgg).s)
	return nil
}

// registerSketchUDAFs installs the two test UDAFs.
func registerSketchUDAFs(t *testing.T, e *gsql.Engine) {
	t.Helper()
	if err := e.RegisterUDAF(gsql.AggSpec{
		Name: "sstop", MinArgs: 1, MaxArgs: 1, Mergeable: true,
		New: func() gsql.Aggregator { return &ssTopAgg{ss: sketch.NewSpaceSavingK(64)} },
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterUDAF(gsql.AggSpec{
		Name: "kmvdistinct", MinArgs: 1, MaxArgs: 1, Mergeable: true,
		New: func() gsql.Aggregator { return &kmvAgg{s: sketch.NewKMV(128)} },
	}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSketchUDAFGrouped: mergeable sketch UDAFs under a grouped
// query are routed whole-group to one shard, so sharded output is exactly
// the serial output.
func TestParallelSketchUDAFGrouped(t *testing.T) {
	e := parallelEngine(t)
	registerSketchUDAFs(t, e)
	const q = `select tb, proto, sstop(dstIP), kmvdistinct(dstIP)
	             from TCP group by time/60 as tb, proto`
	st, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(20_000, 0, 47)
	want := serialRows(t, st, tuples, gsql.Options{})
	got := parallelRows(t, st, tuples, gsql.ParallelOptions{Shards: 4})
	requireIdentical(t, want, got, "grouped sketch UDAFs")
}

// TestParallelSketchUDAFGlobal: with no non-temporal group column the
// runtime falls back to round-robin routing and the shard partials combine
// through the sketches' Merge. KMV union is exact; the SpaceSaving merge
// must still agree on the (heavily skewed) top key within its documented
// additive error — here the top key is unambiguous.
func TestParallelSketchUDAFGlobal(t *testing.T) {
	e := parallelEngine(t)
	registerSketchUDAFs(t, e)
	const q = `select tb, sstop(dstIP), kmvdistinct(dstIP) from TCP group by time/60 as tb`
	st, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	tuples := trace(30_000, 0, 53)
	want := serialRows(t, st, tuples, gsql.Options{})
	got := parallelRows(t, st, tuples, gsql.ParallelOptions{Shards: 4, BatchSize: 64})
	if len(want) != len(got) {
		t.Fatalf("row counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		// Bucket and top heavy hitter agree exactly; the KMV union estimate
		// is identical because merge reconstructs the same k smallest hashes.
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("row %d col %d: serial %v, parallel %v", i, j, want[i][j], got[i][j])
			}
		}
	}
}

// TestParallelRejectsNonMergeable: a query containing any non-mergeable
// aggregate cannot run under the LFTA/HFTA split and must be rejected up
// front (the serial path still accepts it).
func TestParallelRejectsNonMergeable(t *testing.T) {
	e := parallelEngine(t)
	if err := e.RegisterUDAF(gsql.AggSpec{
		Name: "lastval", MinArgs: 1, MaxArgs: 1, Mergeable: false,
		New: func() gsql.Aggregator { return &lastValAgg{} },
	}); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`select tb, lastval(len) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mergeable() {
		t.Fatal("statement with non-mergeable UDAF reported Mergeable")
	}
	if _, err := st.StartParallel(func(gsql.Tuple) error { return nil }, gsql.ParallelOptions{}); err == nil {
		t.Fatal("StartParallel accepted a non-mergeable query")
	} else if !strings.Contains(err.Error(), "non-mergeable") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
	// The serial path still runs it.
	rows := serialRows(t, st, trace(2_000, 0, 3), gsql.Options{})
	if len(rows) == 0 {
		t.Fatal("serial fallback produced no rows")
	}
}

// lastValAgg is an intentionally non-mergeable aggregate (last value wins,
// which has no well-defined partial combine).
type lastValAgg struct{ v gsql.Value }

func (a *lastValAgg) Step(args []gsql.Value) error { a.v = args[0]; return nil }
func (a *lastValAgg) Final() gsql.Value            { return a.v }

// TestParallelLifecycleErrors: use after Close fails, double Close is safe,
// and sink errors (SinkStop) propagate out of the flush that raised them.
func TestParallelLifecycleErrors(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(`select tb, count(*) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := st.StartParallel(func(gsql.Tuple) error { return nil }, gsql.ParallelOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Push(pkt2(10, 1, 80, 100)); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := pr.Push(pkt2(20, 1, 80, 100)); err == nil {
		t.Fatal("Push after Close succeeded")
	}
	if err := pr.Heartbeat(gsql.Int(100)); err == nil {
		t.Fatal("Heartbeat after Close succeeded")
	}

	// A sink that stops: the error surfaces from the flush (here, Close).
	pr2, err := st.StartParallel(func(gsql.Tuple) error { return gsql.SinkStop() }, gsql.ParallelOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr2.Push(pkt2(10, 1, 80, 100)); err != nil {
		t.Fatal(err)
	}
	if err := pr2.Close(); err == nil {
		t.Fatal("sink stop did not propagate")
	}

	// A malformed tuple is rejected immediately.
	pr3, err := st.StartParallel(func(gsql.Tuple) error { return nil }, gsql.ParallelOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr3.Push(gsql.Tuple{gsql.Int(1)}); err == nil {
		t.Fatal("short tuple accepted")
	}
	pr3.Close()
}

// TestParallelShardErrorSurfaces: an error raised inside a shard worker (an
// aggregate argument failing, here integer division by zero) must surface at
// the next flush and poison the run.
func TestParallelShardErrorSurfaces(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(`select tb, dstIP, sum(len/(len - 64)) from TCP group by time/60 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := st.StartParallel(func(gsql.Tuple) error { return nil }, gsql.ParallelOptions{Shards: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		ln := int64(100 + i)
		if i == 17 {
			ln = 64 // divides by zero inside the shard
		}
		if err := pr.Push(pkt2(int64(10+i), int64(i%4), 80, ln)); err != nil {
			break // surfaced early via a flush — also acceptable
		}
	}
	if err := pr.Close(); err == nil {
		t.Fatal("shard-side error did not surface at Close")
	} else if !strings.Contains(err.Error(), "division") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// pkt2 builds a packet tuple for the lifecycle tests (mirrors the internal
// test helper, which this external package cannot reach).
func pkt2(sec, dst, dport, ln int64) gsql.Tuple {
	return gsql.Tuple{gsql.Int(sec), gsql.Float(float64(sec)), gsql.Int(100), gsql.Int(dst),
		gsql.Int(4242), gsql.Int(dport), gsql.Int(6), gsql.Int(ln)}
}
