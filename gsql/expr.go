package gsql

import (
	"fmt"
	"math"
	"strings"
)

// evalFn evaluates a compiled expression against a record (a stream tuple,
// or for output expressions the concatenation of group values and aggregate
// results).
type evalFn func(rec Tuple) (Value, error)

// compileEnv resolves names and aggregate calls during compilation.
type compileEnv struct {
	// resolve maps an identifier to a record index; returns -1 if unknown.
	resolve func(name string) int
	// colType maps an identifier to its declared type; nil (or TNull) means
	// the type is unknown at plan time and the compiler falls back to the
	// dynamically dispatched evaluators.
	colType func(name string) Type
	// aggSlot maps an aggregate call to a record index; nil forbids
	// aggregates (tuple-level expressions).
	aggSlot func(a *aggExpr) (int, error)
	// subMatch, if non-nil, maps a whole subtree to a record index (used to
	// match select-list subexpressions against group-by expressions).
	subMatch func(e expr) int
	// shared, if non-nil, may replace a whole subtree with a caller-built
	// evaluator (the multi-query runtime's hash-consed shared slots). It is
	// consulted after subMatch and before structural compilation; returning
	// nil declines, and the subtree compiles normally. The hook must be
	// value-transparent: the evaluator it returns must produce exactly what
	// the structural compilation of the subtree would. staticType ignores
	// it for that reason — the static type of a shared subtree is the
	// subtree's own.
	shared func(e expr) evalFn
	funcs  map[string]scalarFunc
}

// staticType infers the type an expression is guaranteed to produce at
// runtime, or TNull when it cannot be determined at plan time. The inference
// is sound, not complete: whenever it returns a concrete type the compiler
// may emit an operator evaluator specialized to that type, skipping the
// per-tuple type dispatch of numericBinop/compare.
func (env *compileEnv) staticType(e expr) Type {
	if env.subMatch != nil && env.subMatch(e) >= 0 {
		return TNull // record reference: runtime type unknown here
	}
	switch n := e.(type) {
	case *numLit:
		return n.v.T
	case *strLit:
		return TString
	case *boolLit:
		return TBool
	case *colRef:
		if env.colType != nil {
			return env.colType(n.name)
		}
	case *unExpr:
		if n.op == "not" {
			return TBool
		}
		if t := env.staticType(n.e); t == TInt || t == TFloat {
			return t // unary minus preserves numeric type
		}
	case *binExpr:
		switch n.op {
		case "+", "-", "*", "/", "%":
			lt, rt := env.staticType(n.l), env.staticType(n.r)
			if lt == TInt && rt == TInt {
				return TInt
			}
			if (lt == TInt || lt == TFloat) && (rt == TInt || rt == TFloat) {
				return TFloat
			}
		case "=", "!=", "<", "<=", ">", ">=", "and", "or":
			return TBool
		}
	case *callExpr:
		if f, ok := env.funcs[n.name]; ok {
			return f.ret
		}
	}
	return TNull
}

// compile builds an evaluator for e under the environment.
func (env *compileEnv) compile(e expr) (evalFn, error) {
	if env.subMatch != nil {
		if idx := env.subMatch(e); idx >= 0 {
			return func(rec Tuple) (Value, error) { return rec[idx], nil }, nil
		}
	}
	if env.shared != nil {
		if fn := env.shared(e); fn != nil {
			return fn, nil
		}
	}
	switch n := e.(type) {
	case *numLit:
		v := n.v
		return func(Tuple) (Value, error) { return v, nil }, nil
	case *strLit:
		v := Str(n.s)
		return func(Tuple) (Value, error) { return v, nil }, nil
	case *boolLit:
		v := Bool(n.b)
		return func(Tuple) (Value, error) { return v, nil }, nil
	case *colRef:
		idx := env.resolve(n.name)
		if idx < 0 {
			return nil, fmt.Errorf("gsql: unknown column %q", n.name)
		}
		return func(rec Tuple) (Value, error) { return rec[idx], nil }, nil
	case *unExpr:
		inner, err := env.compile(n.e)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "-":
			switch env.staticType(n.e) {
			case TInt:
				return func(rec Tuple) (Value, error) {
					v, err := inner(rec)
					if err != nil {
						return Null, err
					}
					return Int(-v.I), nil
				}, nil
			case TFloat:
				return func(rec Tuple) (Value, error) {
					v, err := inner(rec)
					if err != nil {
						return Null, err
					}
					return Float(-v.F), nil
				}, nil
			}
			return func(rec Tuple) (Value, error) {
				v, err := inner(rec)
				if err != nil {
					return Null, err
				}
				if v.T == TInt {
					return Int(-v.I), nil
				}
				return Float(-v.AsFloat()), nil
			}, nil
		case "not":
			return func(rec Tuple) (Value, error) {
				v, err := inner(rec)
				if err != nil {
					return Null, err
				}
				return Bool(!v.Truthy()), nil
			}, nil
		}
		return nil, fmt.Errorf("gsql: unknown unary operator %q", n.op)
	case *binExpr:
		return env.compileBin(n)
	case *callExpr:
		f, ok := env.funcs[n.name]
		if !ok {
			return nil, fmt.Errorf("gsql: unknown function %q", n.name)
		}
		if len(n.args) != f.nargs {
			return nil, fmt.Errorf("gsql: %s expects %d argument(s), got %d", n.name, f.nargs, len(n.args))
		}
		args := make([]evalFn, len(n.args))
		for i, a := range n.args {
			fn, err := env.compile(a)
			if err != nil {
				return nil, err
			}
			args[i] = fn
		}
		if f.spec != nil && len(args) == 1 {
			if at := env.staticType(n.args[0]); at != TNull {
				if fn := f.spec(at, args[0]); fn != nil {
					return fn, nil
				}
			}
		}
		if f.fn1 != nil {
			// Unary fast path: no argument slice, no per-call allocation,
			// and no captured mutable state (evaluators are shared across
			// shard workers in the parallel runtime).
			arg, fn1 := args[0], f.fn1
			return func(rec Tuple) (Value, error) {
				v, err := arg(rec)
				if err != nil {
					return Null, err
				}
				return fn1(v)
			}, nil
		}
		return func(rec Tuple) (Value, error) {
			vals := make([]Value, len(args))
			for i, fn := range args {
				v, err := fn(rec)
				if err != nil {
					return Null, err
				}
				vals[i] = v
			}
			return f.fn(vals)
		}, nil
	case *aggExpr:
		if env.aggSlot == nil {
			return nil, fmt.Errorf("gsql: aggregate %s is not allowed here", n.name)
		}
		idx, err := env.aggSlot(n)
		if err != nil {
			return nil, err
		}
		return func(rec Tuple) (Value, error) { return rec[idx], nil }, nil
	default:
		return nil, fmt.Errorf("gsql: cannot compile %T", e)
	}
}

// compileBin builds a binary-operator evaluator. The operator and, where the
// operand types are statically known (schema column types propagated through
// staticType), the operand representations are burned into the returned
// closure at plan time: an int comparison over two int columns compiles to a
// direct `a.I < b.I` with no per-tuple switch on the operator string and no
// type promotion. Statically untyped operands fall back to evaluators that
// still pre-resolve the operator but dispatch on runtime types exactly as
// numericBinop/compare do, so dynamic semantics are unchanged.
func (env *compileEnv) compileBin(n *binExpr) (evalFn, error) {
	l, err := env.compile(n.l)
	if err != nil {
		return nil, err
	}
	r, err := env.compile(n.r)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case "+", "-", "*", "/", "%":
		lt, rt := env.staticType(n.l), env.staticType(n.r)
		op := n.op[0]
		if lt == TInt && rt == TInt {
			return arithIntFn(op, l, r), nil
		}
		if staticNumeric(lt) && staticNumeric(rt) {
			return arithFloatFn(op, l, r, toFloatFn(lt), toFloatFn(rt)), nil
		}
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return numericBinop(op, a, b)
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		lt, rt := env.staticType(n.l), env.staticType(n.r)
		if (lt == TInt || lt == TBool) && (rt == TInt || rt == TBool) {
			return cmpIntFn(n.op, l, r), nil
		}
		if staticNumeric(lt) && staticNumeric(rt) {
			return cmpFloatFn(n.op, l, r, toFloatFn(lt), toFloatFn(rt)), nil
		}
		if lt == TString && rt == TString {
			return cmpStringFn(n.op, l, r), nil
		}
		return cmpDynFn(n.op, l, r), nil
	case "and":
		if env.staticType(n.l) == TBool && env.staticType(n.r) == TBool {
			// Both sides are booleans: short-circuit on the I payload and
			// pass the right side through unwrapped.
			return func(rec Tuple) (Value, error) {
				a, err := l(rec)
				if err != nil {
					return Null, err
				}
				if a.I == 0 {
					return Bool(false), nil
				}
				return r(rec)
			}, nil
		}
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			if !a.Truthy() {
				return Bool(false), nil
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(b.Truthy()), nil
		}, nil
	case "or":
		if env.staticType(n.l) == TBool && env.staticType(n.r) == TBool {
			return func(rec Tuple) (Value, error) {
				a, err := l(rec)
				if err != nil {
					return Null, err
				}
				if a.I != 0 {
					return a, nil
				}
				return r(rec)
			}, nil
		}
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			if a.Truthy() {
				return Bool(true), nil
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(b.Truthy()), nil
		}, nil
	default:
		return nil, fmt.Errorf("gsql: unknown operator %q", n.op)
	}
}

// staticNumeric reports whether a statically inferred type always carries a
// numeric payload (bools count: they hold 0/1 in I, like the dynamic path's
// AsFloat treats them).
func staticNumeric(t Type) bool { return t == TInt || t == TFloat || t == TBool }

// toFloatFn returns the float extraction for a statically numeric operand:
// a direct field load, with no runtime type switch.
func toFloatFn(t Type) func(Value) float64 {
	if t == TFloat {
		return func(v Value) float64 { return v.F }
	}
	return func(v Value) float64 { return float64(v.I) } // TInt, TBool
}

// arithIntFn returns an arithmetic evaluator specialized for two statically
// int operands. Semantics match numericBinop's int/int branch exactly,
// including truncating division and the division-by-zero errors.
func arithIntFn(op byte, l, r evalFn) evalFn {
	switch op {
	case '+':
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Int(a.I + b.I), nil
		}
	case '-':
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Int(a.I - b.I), nil
		}
	case '*':
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Int(a.I * b.I), nil
		}
	case '/':
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			if b.I == 0 {
				return Null, fmt.Errorf("gsql: integer division by zero")
			}
			return Int(a.I / b.I), nil
		}
	default: // '%'
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			if b.I == 0 {
				return Null, fmt.Errorf("gsql: integer modulo by zero")
			}
			return Int(a.I % b.I), nil
		}
	}
}

// arithFloatFn returns an arithmetic evaluator for statically numeric
// operands where at least one side is a float: both sides promote through
// the captured extractors, matching numericBinop's float branch (float
// division by zero yields ±Inf, not an error).
func arithFloatFn(op byte, l, r evalFn, lf, rf func(Value) float64) evalFn {
	var apply func(x, y float64) Value
	switch op {
	case '+':
		apply = func(x, y float64) Value { return Float(x + y) }
	case '-':
		apply = func(x, y float64) Value { return Float(x - y) }
	case '*':
		apply = func(x, y float64) Value { return Float(x * y) }
	case '/':
		apply = func(x, y float64) Value { return Float(x / y) }
	default: // '%'
		apply = func(x, y float64) Value { return Float(math.Mod(x, y)) }
	}
	return func(rec Tuple) (Value, error) {
		a, err := l(rec)
		if err != nil {
			return Null, err
		}
		b, err := r(rec)
		if err != nil {
			return Null, err
		}
		return apply(lf(a), rf(b)), nil
	}
}

// cmpIntFn returns a comparison evaluator specialized for two statically
// int (or bool) operands: a direct int64 compare. For values beyond 2⁵³
// this is exact where the generic float-promoting compare would round —
// strictly more precise, never less.
func cmpIntFn(op string, l, r evalFn) evalFn {
	switch op {
	case "=":
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(a.I == b.I), nil
		}
	case "!=":
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(a.I != b.I), nil
		}
	case "<":
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(a.I < b.I), nil
		}
	case "<=":
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(a.I <= b.I), nil
		}
	case ">":
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(a.I > b.I), nil
		}
	default: // ">="
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(a.I >= b.I), nil
		}
	}
}

// cmpFloatFn returns a comparison evaluator for statically numeric operands
// with at least one float side, matching compare's float promotion.
func cmpFloatFn(op string, l, r evalFn, lf, rf func(Value) float64) evalFn {
	pred := cmpPred(op)
	return func(rec Tuple) (Value, error) {
		a, err := l(rec)
		if err != nil {
			return Null, err
		}
		b, err := r(rec)
		if err != nil {
			return Null, err
		}
		x, y := lf(a), rf(b)
		c := 0
		if x < y {
			c = -1
		} else if x > y {
			c = 1
		}
		return Bool(pred(c)), nil
	}
}

// cmpStringFn returns a comparison evaluator for two statically string
// operands (lexical order, as in compare).
func cmpStringFn(op string, l, r evalFn) evalFn {
	pred := cmpPred(op)
	return func(rec Tuple) (Value, error) {
		a, err := l(rec)
		if err != nil {
			return Null, err
		}
		b, err := r(rec)
		if err != nil {
			return Null, err
		}
		c := 0
		if a.S < b.S {
			c = -1
		} else if a.S > b.S {
			c = 1
		}
		return Bool(pred(c)), nil
	}
}

// cmpDynFn is the fallback for operands without static types: runtime type
// dispatch through compare, but the operator itself is still resolved to a
// predicate at plan time instead of a per-tuple string switch.
func cmpDynFn(op string, l, r evalFn) evalFn {
	pred := cmpPred(op)
	return func(rec Tuple) (Value, error) {
		a, err := l(rec)
		if err != nil {
			return Null, err
		}
		b, err := r(rec)
		if err != nil {
			return Null, err
		}
		c, err := compare(a, b)
		if err != nil {
			return Null, err
		}
		return Bool(pred(c)), nil
	}
}

// cmpPred maps a comparison operator to its predicate over the three-way
// compare result.
func cmpPred(op string) func(c int) bool {
	switch op {
	case "=":
		return func(c int) bool { return c == 0 }
	case "!=":
		return func(c int) bool { return c != 0 }
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	default: // ">="
		return func(c int) bool { return c >= 0 }
	}
}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e expr) bool {
	switch n := e.(type) {
	case *aggExpr:
		return true
	case *unExpr:
		return hasAgg(n.e)
	case *binExpr:
		return hasAgg(n.l) || hasAgg(n.r)
	case *callExpr:
		for _, a := range n.args {
			if hasAgg(a) {
				return true
			}
		}
	}
	return false
}

// monotoneCol returns the index of the monotone (timestamp) column that
// the expression is a non-decreasing function of, or -1: the column itself,
// or such an expression divided by / multiplied by a positive constant, or
// shifted by a constant. Group-by expressions with this property define the
// query's tumbling time buckets.
func monotoneCol(e expr, s *Schema) int {
	switch n := e.(type) {
	case *colRef:
		i := s.ColumnIndex(n.name)
		if i >= 0 && s.Cols[i].Monotone {
			return i
		}
	case *binExpr:
		c, ok := n.r.(*numLit)
		if !ok {
			return -1
		}
		switch n.op {
		case "/", "*":
			if c.v.AsFloat() > 0 {
				return monotoneCol(n.l, s)
			}
		case "+", "-":
			return monotoneCol(n.l, s)
		}
	}
	return -1
}

// isMonotoneExpr reports whether monotoneCol finds a source column.
func isMonotoneExpr(e expr, s *Schema) bool { return monotoneCol(e, s) >= 0 }

// exprKey returns the canonical form used to match select-list expressions
// against group-by expressions.
func exprKey(e expr) string { return strings.ToLower(e.String()) }
