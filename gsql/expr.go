package gsql

import (
	"fmt"
	"strings"
)

// evalFn evaluates a compiled expression against a record (a stream tuple,
// or for output expressions the concatenation of group values and aggregate
// results).
type evalFn func(rec Tuple) (Value, error)

// compileEnv resolves names and aggregate calls during compilation.
type compileEnv struct {
	// resolve maps an identifier to a record index; returns -1 if unknown.
	resolve func(name string) int
	// aggSlot maps an aggregate call to a record index; nil forbids
	// aggregates (tuple-level expressions).
	aggSlot func(a *aggExpr) (int, error)
	// subMatch, if non-nil, maps a whole subtree to a record index (used to
	// match select-list subexpressions against group-by expressions).
	subMatch func(e expr) int
	funcs    map[string]scalarFunc
}

// compile builds an evaluator for e under the environment.
func (env *compileEnv) compile(e expr) (evalFn, error) {
	if env.subMatch != nil {
		if idx := env.subMatch(e); idx >= 0 {
			return func(rec Tuple) (Value, error) { return rec[idx], nil }, nil
		}
	}
	switch n := e.(type) {
	case *numLit:
		v := n.v
		return func(Tuple) (Value, error) { return v, nil }, nil
	case *strLit:
		v := Str(n.s)
		return func(Tuple) (Value, error) { return v, nil }, nil
	case *boolLit:
		v := Bool(n.b)
		return func(Tuple) (Value, error) { return v, nil }, nil
	case *colRef:
		idx := env.resolve(n.name)
		if idx < 0 {
			return nil, fmt.Errorf("gsql: unknown column %q", n.name)
		}
		return func(rec Tuple) (Value, error) { return rec[idx], nil }, nil
	case *unExpr:
		inner, err := env.compile(n.e)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "-":
			return func(rec Tuple) (Value, error) {
				v, err := inner(rec)
				if err != nil {
					return Null, err
				}
				if v.T == TInt {
					return Int(-v.I), nil
				}
				return Float(-v.AsFloat()), nil
			}, nil
		case "not":
			return func(rec Tuple) (Value, error) {
				v, err := inner(rec)
				if err != nil {
					return Null, err
				}
				return Bool(!v.Truthy()), nil
			}, nil
		}
		return nil, fmt.Errorf("gsql: unknown unary operator %q", n.op)
	case *binExpr:
		return env.compileBin(n)
	case *callExpr:
		f, ok := env.funcs[n.name]
		if !ok {
			return nil, fmt.Errorf("gsql: unknown function %q", n.name)
		}
		if len(n.args) != f.nargs {
			return nil, fmt.Errorf("gsql: %s expects %d argument(s), got %d", n.name, f.nargs, len(n.args))
		}
		args := make([]evalFn, len(n.args))
		for i, a := range n.args {
			fn, err := env.compile(a)
			if err != nil {
				return nil, err
			}
			args[i] = fn
		}
		if f.fn1 != nil {
			// Unary fast path: no argument slice, no per-call allocation,
			// and no captured mutable state (evaluators are shared across
			// shard workers in the parallel runtime).
			arg, fn1 := args[0], f.fn1
			return func(rec Tuple) (Value, error) {
				v, err := arg(rec)
				if err != nil {
					return Null, err
				}
				return fn1(v)
			}, nil
		}
		return func(rec Tuple) (Value, error) {
			vals := make([]Value, len(args))
			for i, fn := range args {
				v, err := fn(rec)
				if err != nil {
					return Null, err
				}
				vals[i] = v
			}
			return f.fn(vals)
		}, nil
	case *aggExpr:
		if env.aggSlot == nil {
			return nil, fmt.Errorf("gsql: aggregate %s is not allowed here", n.name)
		}
		idx, err := env.aggSlot(n)
		if err != nil {
			return nil, err
		}
		return func(rec Tuple) (Value, error) { return rec[idx], nil }, nil
	default:
		return nil, fmt.Errorf("gsql: cannot compile %T", e)
	}
}

func (env *compileEnv) compileBin(n *binExpr) (evalFn, error) {
	l, err := env.compile(n.l)
	if err != nil {
		return nil, err
	}
	r, err := env.compile(n.r)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case "+", "-", "*", "/", "%":
		op := n.op[0]
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return numericBinop(op, a, b)
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		op := n.op
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			c, err := compare(a, b)
			if err != nil {
				return Null, err
			}
			switch op {
			case "=":
				return Bool(c == 0), nil
			case "!=":
				return Bool(c != 0), nil
			case "<":
				return Bool(c < 0), nil
			case "<=":
				return Bool(c <= 0), nil
			case ">":
				return Bool(c > 0), nil
			default:
				return Bool(c >= 0), nil
			}
		}, nil
	case "and":
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			if !a.Truthy() {
				return Bool(false), nil
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(b.Truthy()), nil
		}, nil
	case "or":
		return func(rec Tuple) (Value, error) {
			a, err := l(rec)
			if err != nil {
				return Null, err
			}
			if a.Truthy() {
				return Bool(true), nil
			}
			b, err := r(rec)
			if err != nil {
				return Null, err
			}
			return Bool(b.Truthy()), nil
		}, nil
	default:
		return nil, fmt.Errorf("gsql: unknown operator %q", n.op)
	}
}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e expr) bool {
	switch n := e.(type) {
	case *aggExpr:
		return true
	case *unExpr:
		return hasAgg(n.e)
	case *binExpr:
		return hasAgg(n.l) || hasAgg(n.r)
	case *callExpr:
		for _, a := range n.args {
			if hasAgg(a) {
				return true
			}
		}
	}
	return false
}

// monotoneCol returns the index of the monotone (timestamp) column that
// the expression is a non-decreasing function of, or -1: the column itself,
// or such an expression divided by / multiplied by a positive constant, or
// shifted by a constant. Group-by expressions with this property define the
// query's tumbling time buckets.
func monotoneCol(e expr, s *Schema) int {
	switch n := e.(type) {
	case *colRef:
		i := s.ColumnIndex(n.name)
		if i >= 0 && s.Cols[i].Monotone {
			return i
		}
	case *binExpr:
		c, ok := n.r.(*numLit)
		if !ok {
			return -1
		}
		switch n.op {
		case "/", "*":
			if c.v.AsFloat() > 0 {
				return monotoneCol(n.l, s)
			}
		case "+", "-":
			return monotoneCol(n.l, s)
		}
	}
	return -1
}

// isMonotoneExpr reports whether monotoneCol finds a source column.
func isMonotoneExpr(e expr, s *Schema) bool { return monotoneCol(e, s) >= 0 }

// exprKey returns the canonical form used to match select-list expressions
// against group-by expressions.
func exprKey(e expr) string { return strings.ToLower(e.String()) }
