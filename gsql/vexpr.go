package gsql

// Vectorized expression compilation: every tuple-level expression of a plan
// (WHERE, group-by, aggregate arguments) additionally compiles to a vecNode
// tree whose kernels evaluate a whole Batch column-at-a-time under a
// selection bitmap, replacing N closure calls (each packing a 40-byte Value
// and an error) with one call per operator per batch.
//
// The scalar closures remain the semantic oracle. Exactness discipline:
//
//   - Kernels perform the same primitive operation on the same operand
//     representation as the scalar evaluator they shadow (same int64/float64
//     ops, the same three-way float compare, the same scalar function
//     pointers via fallback nodes), so results are bit-identical.
//   - and/or kernels evaluate their right side only under the rows the left
//     side selects, preserving scalar short-circuit semantics.
//   - Any kernel error (division by zero, a scalar function failing inside a
//     fallback node) aborts the batch's vectorized pass before any run state
//     is touched; the executor then replays the segment through the scalar
//     per-tuple path, which reproduces the scalar error at the exact row with
//     the exact message. Errors are rare, so the replay never costs in steady
//     state — and it collapses all error-ordering corner cases to "exactly
//     what Push does".
//
// Subexpressions without a vectorized form compile to fallback nodes that
// materialize each selected row and invoke the scalar closure — full
// generality at scalar speed, never a semantic fork.

import (
	"fmt"
	"math"
	"math/bits"
)

// vecPlan is the batch-compiled form of a plan's tuple-level expressions.
// Like the scalar closures it is immutable after compilation and shared
// across runs and shard workers; all evaluation state lives in a vctx.
type vecPlan struct {
	where  *vecNode   // selection-bits node, nil when the query has no WHERE
	groups []*vecNode // one per group-by expression
	args   [][]*vecNode
	nslots int
}

// vecNode is one compiled expression node. Exactly one storage class holds
// its per-row results: a batch column (col >= 0), a compile-time constant
// (constOK), or a scratch slot in the vctx. Slot nodes of type TBool store
// a bitmap; other types store typed vectors; TNull stores dynamic Values.
type vecNode struct {
	t       Type
	col     int // >= 0: alias of a batch column (eval == nil)
	slot    int
	constOK bool
	constV  Value
	eval    func(ctx *vctx, sel []uint64)
}

// run evaluates the node's subtree for the selected rows. Column and
// constant nodes have nil eval; a sticky context error short-circuits.
func (n *vecNode) run(ctx *vctx, sel []uint64) {
	if n.eval != nil && ctx.err == nil {
		n.eval(ctx, sel)
	}
}

// vctx is the per-run evaluation context: scratch slots for kernel outputs
// plus a row buffer for fallback nodes. Compiled plans are shared across
// shard workers, so kernels must never capture mutable state — it all lives
// here, one vctx per Run / ParallelRun / BatchPredicate closure.
type vctx struct {
	b      *Batch
	n      int
	err    error
	slots  []vslot
	rowBuf Tuple
}

type vslot struct {
	ints []int64
	fls  []float64
	strs []string
	vals []Value
	bits []uint64
}

// reset points the context at a batch, clearing any sticky error.
func (ctx *vctx) reset(b *Batch, vp *vecPlan) {
	ctx.b, ctx.n, ctx.err = b, b.n, nil
	if len(ctx.slots) < vp.nslots {
		ctx.slots = make([]vslot, vp.nslots)
	}
	if len(ctx.rowBuf) < len(b.schema.Cols) {
		ctx.rowBuf = make(Tuple, len(b.schema.Cols))
	}
}

// fail records the first kernel error; the executor replays the segment
// through the scalar path to recover exact error semantics.
func (ctx *vctx) fail(err error) {
	if ctx.err == nil {
		ctx.err = err
	}
}

// Slot storage accessors grow lazily to the current batch length and are
// stable for the rest of the batch (producers run before consumers).

func (ctx *vctx) ints(n *vecNode) []int64 {
	s := &ctx.slots[n.slot]
	if cap(s.ints) < ctx.n {
		s.ints = make([]int64, ctx.n)
	}
	return s.ints[:ctx.n]
}

func (ctx *vctx) floats(n *vecNode) []float64 {
	s := &ctx.slots[n.slot]
	if cap(s.fls) < ctx.n {
		s.fls = make([]float64, ctx.n)
	}
	return s.fls[:ctx.n]
}

func (ctx *vctx) strings(n *vecNode) []string {
	s := &ctx.slots[n.slot]
	if cap(s.strs) < ctx.n {
		s.strs = make([]string, ctx.n)
	}
	return s.strs[:ctx.n]
}

func (ctx *vctx) values(n *vecNode) []Value {
	s := &ctx.slots[n.slot]
	if cap(s.vals) < ctx.n {
		s.vals = make([]Value, ctx.n)
	}
	return s.vals[:ctx.n]
}

func (ctx *vctx) bits(n *vecNode) []uint64 {
	s := &ctx.slots[n.slot]
	w := bitWords(ctx.n)
	if cap(s.bits) < w {
		s.bits = make([]uint64, w)
	}
	return s.bits[:w]
}

// Per-row payload accessors. These are value structs, not returned closures:
// a closure returned from a factory is heap-allocated on every kernel
// invocation, which alone broke the batch path's zero-alloc steady state.
// The structs resolve the node's storage class once per kernel call and stay
// on the kernel's stack; at() compiles to a switch over the resolved kind.

const (
	accConst uint8 = iota
	accSlice
	accBits
	accPromote
)

// intAcc reads per-row int64 payloads for a statically int-or-bool node,
// mirroring the payload the scalar evaluator would see in Value.I.
type intAcc struct {
	xs   []int64
	bm   []uint64
	c    int64
	kind uint8
}

func (ctx *vctx) accInt(n *vecNode) intAcc {
	switch {
	case n.constOK:
		return intAcc{kind: accConst, c: n.constV.I}
	case n.col >= 0:
		return intAcc{kind: accSlice, xs: ctx.b.cols[n.col].ints}
	case n.t == TBool:
		return intAcc{kind: accBits, bm: ctx.bits(n)}
	default:
		return intAcc{kind: accSlice, xs: ctx.ints(n)}
	}
}

func (a *intAcc) at(r int) int64 {
	switch a.kind {
	case accSlice:
		return a.xs[r]
	case accBits:
		return int64((a.bm[r>>6] >> uint(r&63)) & 1)
	default:
		return a.c
	}
}

// floatAcc reads per-row float64 payloads for a statically numeric node,
// with the same promotion toFloatFn applies on the scalar path.
type floatAcc struct {
	fs   []float64
	ia   intAcc
	c    float64
	kind uint8
}

func (ctx *vctx) accFloat(n *vecNode) floatAcc {
	if n.t == TFloat {
		switch {
		case n.constOK:
			return floatAcc{kind: accConst, c: n.constV.F}
		case n.col >= 0:
			return floatAcc{kind: accSlice, fs: ctx.b.cols[n.col].fls}
		default:
			return floatAcc{kind: accSlice, fs: ctx.floats(n)}
		}
	}
	return floatAcc{kind: accPromote, ia: ctx.accInt(n)}
}

func (a *floatAcc) at(r int) float64 {
	switch a.kind {
	case accSlice:
		return a.fs[r]
	case accPromote:
		return float64(a.ia.at(r))
	default:
		return a.c
	}
}

// strAcc reads per-row string payloads for a statically string node.
type strAcc struct {
	ss   []string
	c    string
	kind uint8
}

func (ctx *vctx) accStr(n *vecNode) strAcc {
	switch {
	case n.constOK:
		return strAcc{kind: accConst, c: n.constV.S}
	case n.col >= 0:
		return strAcc{kind: accSlice, ss: ctx.b.cols[n.col].strs}
	default:
		return strAcc{kind: accSlice, ss: ctx.strings(n)}
	}
}

func (a *strAcc) at(r int) string {
	if a.kind == accSlice {
		return a.ss[r]
	}
	return a.c
}

// valueAt materializes one row of a node as a Value, bit-identical to what
// the scalar evaluator would have returned for that row.
func (ctx *vctx) valueAt(n *vecNode, r int) Value {
	if n.constOK {
		return n.constV
	}
	if n.col >= 0 {
		return ctx.b.colValue(n.col, r)
	}
	switch n.t {
	case TInt:
		return Int(ctx.slots[n.slot].ints[r])
	case TFloat:
		return Float(ctx.slots[n.slot].fls[r])
	case TBool:
		bm := ctx.slots[n.slot].bits
		return Bool(bm[r>>6]&(1<<uint(r&63)) != 0)
	case TString:
		return Str(ctx.slots[n.slot].strs[r])
	default:
		return ctx.slots[n.slot].vals[r]
	}
}

// writeBits evaluates a row predicate over the selected rows, setting or
// clearing the corresponding output bits (bits outside the selection are
// left untouched — consumers always mask with a clean selection).
func writeBits(sel, out []uint64, f func(r int) bool) {
	for w, m := range sel {
		if m == 0 {
			continue
		}
		base := w << 6
		res := out[w] &^ m
		for mm := m; mm != 0; mm &= mm - 1 {
			r := base + bits.TrailingZeros64(mm)
			if f(r) {
				res |= 1 << uint(r&63)
			}
		}
		out[w] = res
	}
}

// --- compilation ---

// vecComp compiles expressions to vecNodes, allocating scratch slots.
type vecComp struct {
	env    *compileEnv
	schema *Schema
	nslots int
}

// node allocates a slot-backed node.
func (vc *vecComp) node(t Type) *vecNode {
	n := &vecNode{t: t, col: -1, slot: vc.nslots}
	vc.nslots++
	return n
}

func constNode(v Value) *vecNode {
	return &vecNode{t: v.T, col: -1, constOK: true, constV: v}
}

// compileVecPlan batch-compiles a plan's tuple-level expressions. It returns
// nil when anything fails to compile — the executor then replays every batch
// through the scalar path, trading speed, never correctness.
func compileVecPlan(env *compileEnv, schema *Schema, where expr, groups []expr, args [][]expr) *vecPlan {
	vc := &vecComp{env: env, schema: schema}
	vp := &vecPlan{}
	if where != nil {
		n, err := vc.compile(where)
		if err != nil {
			return nil
		}
		vp.where = vc.asBits(n)
	}
	for _, g := range groups {
		n, err := vc.compile(g)
		if err != nil {
			return nil
		}
		vp.groups = append(vp.groups, n)
	}
	for _, slotArgs := range args {
		var row []*vecNode
		for _, a := range slotArgs {
			n, err := vc.compile(a)
			if err != nil {
				return nil
			}
			row = append(row, n)
		}
		vp.args = append(vp.args, row)
	}
	vp.nslots = vc.nslots
	return vp
}

// compile builds a vecNode for e. Errors only surface for expressions the
// scalar compiler would also reject; everything else vectorizes, worst case
// as a fallback node wrapping the scalar closure.
func (vc *vecComp) compile(e expr) (*vecNode, error) {
	switch n := e.(type) {
	case *numLit:
		return constNode(n.v), nil
	case *strLit:
		return constNode(Str(n.s)), nil
	case *boolLit:
		return constNode(Bool(n.b)), nil
	case *colRef:
		idx := vc.env.resolve(n.name)
		if idx < 0 {
			return nil, fmt.Errorf("gsql: unknown column %q", n.name)
		}
		return &vecNode{t: vc.schema.Cols[idx].Type, col: idx}, nil
	case *unExpr:
		return vc.compileUn(n)
	case *binExpr:
		return vc.compileVecBin(n)
	case *callExpr:
		return vc.compileCall(n)
	default:
		return vc.fallback(e)
	}
}

func (vc *vecComp) compileUn(n *unExpr) (*vecNode, error) {
	switch n.op {
	case "-":
		switch vc.env.staticType(n.e) {
		case TInt:
			c, err := vc.compile(n.e)
			if err != nil {
				return nil, err
			}
			return vc.intUn(c, func(x int64) int64 { return -x }), nil
		case TFloat:
			c, err := vc.compile(n.e)
			if err != nil {
				return nil, err
			}
			return vc.floatUn(c, func(x float64) float64 { return -x }), nil
		}
		return vc.fallback(n)
	case "not":
		c, err := vc.compile(n.e)
		if err != nil {
			return nil, err
		}
		cb := vc.asBits(c)
		out := vc.node(TBool)
		out.eval = func(ctx *vctx, sel []uint64) {
			cb.run(ctx, sel)
			if ctx.err != nil {
				return
			}
			cbm, om := ctx.bits(cb), ctx.bits(out)
			for w := range sel {
				om[w] = sel[w] &^ cbm[w]
			}
		}
		return out, nil
	}
	return vc.fallback(n)
}

func (vc *vecComp) compileVecBin(n *binExpr) (*vecNode, error) {
	switch n.op {
	case "+", "-", "*", "/", "%":
		lt, rt := vc.env.staticType(n.l), vc.env.staticType(n.r)
		if !staticNumeric(lt) || !staticNumeric(rt) {
			return vc.fallback(n)
		}
		l, err := vc.compile(n.l)
		if err != nil {
			return nil, err
		}
		r, err := vc.compile(n.r)
		if err != nil {
			return nil, err
		}
		op := n.op[0]
		if lt == TInt && rt == TInt {
			switch op {
			case '+':
				return vc.intBin(l, r, func(x, y int64) int64 { return x + y }), nil
			case '-':
				return vc.intBin(l, r, func(x, y int64) int64 { return x - y }), nil
			case '*':
				return vc.intBin(l, r, func(x, y int64) int64 { return x * y }), nil
			default:
				return vc.intDiv(l, r, op), nil
			}
		}
		// Mixed numeric: both sides promote to float, as arithFloatFn does
		// (float division by zero yields ±Inf, not an error).
		switch op {
		case '+':
			return vc.floatBin(l, r, func(x, y float64) float64 { return x + y }), nil
		case '-':
			return vc.floatBin(l, r, func(x, y float64) float64 { return x - y }), nil
		case '*':
			return vc.floatBin(l, r, func(x, y float64) float64 { return x * y }), nil
		case '/':
			return vc.floatBin(l, r, func(x, y float64) float64 { return x / y }), nil
		default:
			return vc.floatBin(l, r, func(x, y float64) float64 { return math.Mod(x, y) }), nil
		}
	case "=", "!=", "<", "<=", ">", ">=":
		lt, rt := vc.env.staticType(n.l), vc.env.staticType(n.r)
		isIntish := func(t Type) bool { return t == TInt || t == TBool }
		switch {
		case isIntish(lt) && isIntish(rt):
			l, r, err := vc.compile2(n.l, n.r)
			if err != nil {
				return nil, err
			}
			return vc.intPredNode(l, r, intPred(n.op)), nil
		case staticNumeric(lt) && staticNumeric(rt):
			l, r, err := vc.compile2(n.l, n.r)
			if err != nil {
				return nil, err
			}
			return vc.floatPredNode(l, r, floatPred(n.op)), nil
		case lt == TString && rt == TString:
			l, r, err := vc.compile2(n.l, n.r)
			if err != nil {
				return nil, err
			}
			return vc.strPredNode(l, r, stringPred(n.op)), nil
		default:
			return vc.fallback(n)
		}
	case "and":
		l, r, err := vc.compile2(n.l, n.r)
		if err != nil {
			return nil, err
		}
		lb, rb := vc.asBits(l), vc.asBits(r)
		out := vc.node(TBool)
		out.eval = func(ctx *vctx, sel []uint64) {
			lb.run(ctx, sel)
			if ctx.err != nil {
				return
			}
			lbm, om := ctx.bits(lb), ctx.bits(out)
			for w := range sel {
				om[w] = sel[w] & lbm[w]
			}
			// Scalar short-circuit: the right side only ever evaluates where
			// the left side passed.
			rb.run(ctx, om)
			if ctx.err != nil {
				return
			}
			rbm := ctx.bits(rb)
			for w := range sel {
				om[w] &= rbm[w]
			}
		}
		return out, nil
	case "or":
		l, r, err := vc.compile2(n.l, n.r)
		if err != nil {
			return nil, err
		}
		lb, rb := vc.asBits(l), vc.asBits(r)
		out := vc.node(TBool)
		out.eval = func(ctx *vctx, sel []uint64) {
			lb.run(ctx, sel)
			if ctx.err != nil {
				return
			}
			lbm, om := ctx.bits(lb), ctx.bits(out)
			for w := range sel {
				om[w] = sel[w] &^ lbm[w]
			}
			// The right side only evaluates where the left side failed.
			rb.run(ctx, om)
			if ctx.err != nil {
				return
			}
			rbm := ctx.bits(rb)
			for w := range sel {
				om[w] = (sel[w] & lbm[w]) | (om[w] & rbm[w])
			}
		}
		return out, nil
	default:
		return vc.fallback(n)
	}
}

// compileCall vectorizes the float()/int() conversions over statically
// numeric arguments (the hot pattern: avg(float(len))); every other scalar
// function runs through a fallback node calling the very same function the
// scalar path calls, so transcendental results are bit-identical.
func (vc *vecComp) compileCall(n *callExpr) (*vecNode, error) {
	if len(n.args) == 1 && (n.name == "float" || n.name == "int") {
		at := vc.env.staticType(n.args[0])
		if staticNumeric(at) {
			c, err := vc.compile(n.args[0])
			if err != nil {
				return nil, err
			}
			switch {
			case n.name == "float" && at == TFloat:
				return c, nil // Float(v.F) ≡ identity on a TFloat value
			case n.name == "float":
				out := vc.node(TFloat)
				out.eval = func(ctx *vctx, sel []uint64) {
					c.run(ctx, sel)
					if ctx.err != nil {
						return
					}
					cx, o := ctx.accInt(c), ctx.floats(out)
					forSel(sel, func(i int) bool { o[i] = float64(cx.at(i)); return true })
				}
				return out, nil
			case at == TInt:
				return c, nil // Int(v.I) ≡ identity on a TInt value
			case at == TBool:
				return vc.intUn(c, func(x int64) int64 { return x }), nil
			default: // int(TFloat)
				out := vc.node(TInt)
				out.eval = func(ctx *vctx, sel []uint64) {
					c.run(ctx, sel)
					if ctx.err != nil {
						return
					}
					cx, o := ctx.accFloat(c), ctx.ints(out)
					forSel(sel, func(i int) bool { o[i] = int64(cx.at(i)); return true })
				}
				return out, nil
			}
		}
	}
	return vc.fallback(n)
}

// compile2 compiles both sides of a binary node.
func (vc *vecComp) compile2(le, re expr) (l, r *vecNode, err error) {
	if l, err = vc.compile(le); err != nil {
		return nil, nil, err
	}
	if r, err = vc.compile(re); err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// asBits converts any node to selection bits under scalar truthiness
// semantics (Value.Truthy). Slot-backed TBool nodes already are bits.
func (vc *vecComp) asBits(n *vecNode) *vecNode {
	if n.t == TBool && !n.constOK && n.col < 0 {
		return n
	}
	c := n
	out := vc.node(TBool)
	switch n.t {
	case TBool, TInt:
		out.eval = func(ctx *vctx, sel []uint64) {
			c.run(ctx, sel)
			if ctx.err != nil {
				return
			}
			x := ctx.accInt(c)
			writeBits(sel, ctx.bits(out), func(i int) bool { return x.at(i) != 0 })
		}
	case TFloat:
		out.eval = func(ctx *vctx, sel []uint64) {
			c.run(ctx, sel)
			if ctx.err != nil {
				return
			}
			x := ctx.accFloat(c)
			writeBits(sel, ctx.bits(out), func(i int) bool { return x.at(i) != 0 })
		}
	case TString:
		out.eval = func(ctx *vctx, sel []uint64) {
			c.run(ctx, sel)
			if ctx.err != nil {
				return
			}
			x := ctx.accStr(c)
			writeBits(sel, ctx.bits(out), func(i int) bool { return x.at(i) != "" })
		}
	default: // dynamic
		out.eval = func(ctx *vctx, sel []uint64) {
			c.run(ctx, sel)
			if ctx.err != nil {
				return
			}
			vs := ctx.values(c)
			writeBits(sel, ctx.bits(out), func(i int) bool { return vs[i].Truthy() })
		}
	}
	return out
}

// --- kernel builders ---

func (vc *vecComp) intUn(c *vecNode, f func(int64) int64) *vecNode {
	out := vc.node(TInt)
	out.eval = func(ctx *vctx, sel []uint64) {
		c.run(ctx, sel)
		if ctx.err != nil {
			return
		}
		cx, o := ctx.accInt(c), ctx.ints(out)
		forSel(sel, func(i int) bool { o[i] = f(cx.at(i)); return true })
	}
	return out
}

func (vc *vecComp) floatUn(c *vecNode, f func(float64) float64) *vecNode {
	out := vc.node(TFloat)
	out.eval = func(ctx *vctx, sel []uint64) {
		c.run(ctx, sel)
		if ctx.err != nil {
			return
		}
		cx, o := ctx.accFloat(c), ctx.floats(out)
		forSel(sel, func(i int) bool { o[i] = f(cx.at(i)); return true })
	}
	return out
}

func (vc *vecComp) intBin(l, r *vecNode, f func(x, y int64) int64) *vecNode {
	out := vc.node(TInt)
	out.eval = func(ctx *vctx, sel []uint64) {
		l.run(ctx, sel)
		r.run(ctx, sel)
		if ctx.err != nil {
			return
		}
		lx, rx, o := ctx.accInt(l), ctx.accInt(r), ctx.ints(out)
		forSel(sel, func(i int) bool { o[i] = f(lx.at(i), rx.at(i)); return true })
	}
	return out
}

// intDiv handles '/' and '%' with the scalar path's zero-divisor errors.
// The recorded error aborts the vectorized pass; the segment replay then
// reproduces the scalar error at the exact failing row.
func (vc *vecComp) intDiv(l, r *vecNode, op byte) *vecNode {
	out := vc.node(TInt)
	out.eval = func(ctx *vctx, sel []uint64) {
		l.run(ctx, sel)
		r.run(ctx, sel)
		if ctx.err != nil {
			return
		}
		lx, rx, o := ctx.accInt(l), ctx.accInt(r), ctx.ints(out)
		forSel(sel, func(i int) bool {
			y := rx.at(i)
			if y == 0 {
				if op == '/' {
					ctx.fail(fmt.Errorf("gsql: integer division by zero"))
				} else {
					ctx.fail(fmt.Errorf("gsql: integer modulo by zero"))
				}
				return false
			}
			if op == '/' {
				o[i] = lx.at(i) / y
			} else {
				o[i] = lx.at(i) % y
			}
			return true
		})
	}
	return out
}

func (vc *vecComp) floatBin(l, r *vecNode, f func(x, y float64) float64) *vecNode {
	out := vc.node(TFloat)
	out.eval = func(ctx *vctx, sel []uint64) {
		l.run(ctx, sel)
		r.run(ctx, sel)
		if ctx.err != nil {
			return
		}
		lx, rx, o := ctx.accFloat(l), ctx.accFloat(r), ctx.floats(out)
		forSel(sel, func(i int) bool { o[i] = f(lx.at(i), rx.at(i)); return true })
	}
	return out
}

// Comparison kernels, one per operand class. Each resolves its accessors on
// the stack and writes the comparison bitmap through writeBits.

func (vc *vecComp) intPredNode(l, r *vecNode, p func(x, y int64) bool) *vecNode {
	out := vc.node(TBool)
	out.eval = func(ctx *vctx, sel []uint64) {
		l.run(ctx, sel)
		r.run(ctx, sel)
		if ctx.err != nil {
			return
		}
		lx, rx := ctx.accInt(l), ctx.accInt(r)
		writeBits(sel, ctx.bits(out), func(i int) bool { return p(lx.at(i), rx.at(i)) })
	}
	return out
}

func (vc *vecComp) floatPredNode(l, r *vecNode, p func(x, y float64) bool) *vecNode {
	out := vc.node(TBool)
	out.eval = func(ctx *vctx, sel []uint64) {
		l.run(ctx, sel)
		r.run(ctx, sel)
		if ctx.err != nil {
			return
		}
		lx, rx := ctx.accFloat(l), ctx.accFloat(r)
		writeBits(sel, ctx.bits(out), func(i int) bool { return p(lx.at(i), rx.at(i)) })
	}
	return out
}

func (vc *vecComp) strPredNode(l, r *vecNode, p func(x, y string) bool) *vecNode {
	out := vc.node(TBool)
	out.eval = func(ctx *vctx, sel []uint64) {
		l.run(ctx, sel)
		r.run(ctx, sel)
		if ctx.err != nil {
			return
		}
		lx, rx := ctx.accStr(l), ctx.accStr(r)
		writeBits(sel, ctx.bits(out), func(i int) bool { return p(lx.at(i), rx.at(i)) })
	}
	return out
}

// fallback wraps e's scalar evaluator: each selected row is materialized
// into the context's row buffer and evaluated by the exact closure the
// scalar path runs, so results (and errors) cannot diverge.
func (vc *vecComp) fallback(e expr) (*vecNode, error) {
	fn, err := vc.env.compile(e)
	if err != nil {
		return nil, err
	}
	t := vc.env.staticType(e)
	out := vc.node(t)
	out.eval = func(ctx *vctx, sel []uint64) {
		row := ctx.rowBuf
		switch t {
		case TInt:
			o := ctx.ints(out)
			forSel(sel, func(i int) bool {
				ctx.b.row(i, row)
				v, err := fn(row)
				if err != nil {
					ctx.fail(err)
					return false
				}
				o[i] = v.I
				return true
			})
		case TFloat:
			o := ctx.floats(out)
			forSel(sel, func(i int) bool {
				ctx.b.row(i, row)
				v, err := fn(row)
				if err != nil {
					ctx.fail(err)
					return false
				}
				o[i] = v.F
				return true
			})
		case TBool:
			o := ctx.bits(out)
			forSel(sel, func(i int) bool {
				ctx.b.row(i, row)
				v, err := fn(row)
				if err != nil {
					ctx.fail(err)
					return false
				}
				putBit(o, i, v.I != 0)
				return true
			})
		case TString:
			o := ctx.strings(out)
			forSel(sel, func(i int) bool {
				ctx.b.row(i, row)
				v, err := fn(row)
				if err != nil {
					ctx.fail(err)
					return false
				}
				o[i] = v.S
				return true
			})
		default:
			o := ctx.values(out)
			forSel(sel, func(i int) bool {
				ctx.b.row(i, row)
				v, err := fn(row)
				if err != nil {
					ctx.fail(err)
					return false
				}
				o[i] = v
				return true
			})
		}
	}
	return out, nil
}

// --- predicate tables ---

func intPred(op string) func(x, y int64) bool {
	switch op {
	case "=":
		return func(x, y int64) bool { return x == y }
	case "!=":
		return func(x, y int64) bool { return x != y }
	case "<":
		return func(x, y int64) bool { return x < y }
	case "<=":
		return func(x, y int64) bool { return x <= y }
	case ">":
		return func(x, y int64) bool { return x > y }
	default: // ">="
		return func(x, y int64) bool { return x >= y }
	}
}

// floatPred mirrors cmpFloatFn's three-way compare (NaN compares equal to
// everything there, and must keep doing so here).
func floatPred(op string) func(x, y float64) bool {
	pred := cmpPred(op)
	return func(x, y float64) bool {
		c := 0
		if x < y {
			c = -1
		} else if x > y {
			c = 1
		}
		return pred(c)
	}
}

func stringPred(op string) func(x, y string) bool {
	pred := cmpPred(op)
	return func(x, y string) bool {
		c := 0
		if x < y {
			c = -1
		} else if x > y {
			c = 1
		}
		return pred(c)
	}
}

func putBit(bm []uint64, r int, v bool) {
	if v {
		bm[r>>6] |= 1 << uint(r&63)
	} else {
		bm[r>>6] &^= 1 << uint(r&63)
	}
}
