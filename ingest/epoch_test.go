package ingest_test

import (
	"testing"
	"time"

	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/ingest"
)

// TestHeartbeatDrivesEpochRollover: the epoch supervisor must advance on
// network heartbeats, not just data — a stream that goes quiet for days
// still needs its landmark rolled before weights overflow. A client sends a
// short burst of early packets, then only heartbeat frames with far-future
// stream times; each heartbeat that crosses a period boundary must roll the
// run's landmark.
func TestHeartbeatDrivesEpochRollover(t *testing.T) {
	model := decay.NewForward(decay.NewExp(0.01), 0)
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`select tb, count(*), sum(len) from TCP group by time/10 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	var rc rowCollector
	run := st.Start(rc.sink, gsql.Options{
		Epoch: &gsql.EpochConfig{
			Model: model,
			Every: 100,
			Time:  func(tp gsql.Tuple) (float64, bool) { return tp[1].AsFloat(), true },
		},
	})
	l, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{Sink: run})
	if err != nil {
		t.Fatal(err)
	}

	// A few real packets early in stream time (well inside the first
	// period), then pure heartbeats far past several period boundaries.
	pkts := genPackets(50, 11)
	d := ingest.Dial("tcp", l.Addr().String(), ingest.DialerConfig{Session: 21})
	for _, p := range pkts {
		if err := d.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, hb := range []float64{250, 520, 990} {
		if err := d.Heartbeat(hb); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	stats := l.RuntimeStats()
	// 250, 520 and 990 each land in a new 100-unit period: three rolls.
	if stats.EpochRollovers != 3 {
		t.Fatalf("EpochRollovers = %d after heartbeats {250,520,990}, want 3", stats.EpochRollovers)
	}
	if stats.SentinelTrips != 0 {
		t.Fatalf("SentinelTrips = %d, want 0", stats.SentinelTrips)
	}
	if len(rc.snapshot()) == 0 {
		t.Fatal("no rows emitted; heartbeats did not close buckets")
	}
}
