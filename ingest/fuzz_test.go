package ingest_test

import (
	"bytes"
	"testing"

	"forwarddecay/ingest"
	"forwarddecay/netgen"
)

// FuzzFrameDecode is the wire-decoder robustness contract: arbitrary bytes
// either decode into a frame that re-encodes to exactly the consumed
// input, or fail with ErrIncomplete / a typed *FrameError — never a panic,
// never an over-read, never a partially-applied frame.
func FuzzFrameDecode(f *testing.F) {
	pkts := []netgen.Packet{
		{Time: 1.5, SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 123, DstPort: 80, Proto: 6, Len: 512},
		{Time: 2.25, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17, Len: 9},
	}
	f.Add(ingest.AppendHello(nil, 42))
	f.Add(ingest.AppendData(nil, 7, pkts))
	f.Add(ingest.AppendHeartbeat(nil, 99.5))
	f.Add(ingest.AppendAck(nil, 1<<40))
	f.Add(ingest.AppendBye(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append(ingest.AppendHello(nil, 1), ingest.AppendBye(nil)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ingest.DecodeFrame(data, 1<<16)
		if err != nil {
			if err == ingest.ErrIncomplete {
				return
			}
			if _, ok := err.(*ingest.FrameError); !ok {
				t.Fatalf("decode error is %T (%v), want *FrameError or ErrIncomplete", err, err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Round-trip: a successfully decoded frame re-encodes to the exact
		// bytes it was decoded from.
		if re := ingest.AppendFrame(nil, fr); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoding differs from input: %x vs %x", re, data[:n])
		}
	})
}
