package ingest_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
)

// sendRaw opens a fresh connection, writes raw bytes, and closes — the
// shape of every malformed-peer interaction.
func sendRaw(t *testing.T, addr string, b []byte) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(b); err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// waitQuarantined polls until the listener has quarantined want frames.
func waitQuarantined(t *testing.T, l *ingest.Listener, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.RuntimeStats().FramesQuarantined < want {
		if time.Now().After(deadline) {
			t.Fatalf("quarantined %d frames, want %d", l.RuntimeStats().FramesQuarantined, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadLetterRing: every class of malformed frame lands in the bounded
// quarantine ring as a typed FrameError — the listener never crashes and
// never grows the ring past its capacity.
func TestDeadLetterRing(t *testing.T) {
	st := prepare(t)
	run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
	l, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{
		Sink:        run,
		DeadLetters: 3, // smaller than the number of faults below
		MaxFrame:    1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Shutdown(time.Second)
	addr := l.Addr().String()

	// 1. Bad checksum: a sealed frame with one body byte flipped.
	bad := ingest.AppendAck(nil, 9)
	bad[len(bad)-1] ^= 0xff
	sendRaw(t, addr, bad)
	waitQuarantined(t, l, 1)

	// 2. Truncated: a header promising 100 body bytes, delivering 10.
	trunc := binary.LittleEndian.AppendUint32(nil, 100)
	trunc = binary.LittleEndian.AppendUint64(trunc, 0)
	trunc = append(trunc, make([]byte, 10)...)
	sendRaw(t, addr, trunc)
	waitQuarantined(t, l, 2)

	// 3. Too large: a length prefix beyond MaxFrame.
	huge := binary.LittleEndian.AppendUint32(nil, 1<<20)
	huge = binary.LittleEndian.AppendUint64(huge, 0)
	sendRaw(t, addr, huge)
	waitQuarantined(t, l, 3)

	// 4. Data before hello: a perfectly valid data frame on a fresh
	// connection that never introduced a session.
	orphan := ingest.AppendData(nil, 1, genPackets(3, 1))
	sendRaw(t, addr, orphan)
	waitQuarantined(t, l, 4)

	letters, total := l.DeadLetters()
	if total != 4 {
		t.Fatalf("total quarantined = %d, want 4", total)
	}
	if len(letters) != 3 {
		t.Fatalf("ring holds %d letters, want its capacity 3", len(letters))
	}
	// The ring keeps the newest three: truncated, too-large, no-session.
	wantKinds := []ingest.FrameErrorKind{ingest.FrameTruncated, ingest.FrameTooLarge, ingest.FrameNoSession}
	for i, dl := range letters {
		if dl.Err == nil || dl.Err.Kind != wantKinds[i] {
			t.Fatalf("letter %d = %v, want kind %v", i, dl.Err, wantKinds[i])
		}
		if dl.Remote == "" || dl.When.IsZero() {
			t.Fatalf("letter %d missing provenance: %+v", i, dl)
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
}
