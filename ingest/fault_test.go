package ingest_test

import (
	"testing"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/internal/faultinject"
	"forwarddecay/netgen"
)

// faultRules is the standard gauntlet: a duplicated data frame, a severed
// connection, a corrupted frame, and a partial write, spread across the
// stream (cumulative frame indices; frame 1 is the first Hello).
func faultRules() []faultinject.Rule {
	return []faultinject.Rule{
		{Frame: 3, Op: faultinject.OpDuplicate},
		{Frame: 6, Op: faultinject.OpCut},
		{Frame: 11, Op: faultinject.OpCorrupt},
		{Frame: 17, Op: faultinject.OpPartialCut},
		{Frame: 23, Op: faultinject.OpDuplicate},
		{Frame: 29, Op: faultinject.OpCut},
	}
}

// faultDialer returns a dialer tuned for fast reconnects in tests.
func faultDialer(addr string, t *testing.T) *ingest.Dialer {
	return ingest.Dial("tcp", addr, ingest.DialerConfig{
		BatchSize:  32,
		MinBackoff: time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		AckTimeout: 2 * time.Second,
		Session:    0xabcdef,
		Seed:       1,
		Logf:       t.Logf,
	})
}

// runFaultGauntlet streams pkts through a fault-injecting proxy into sink,
// returning the listener for stats inspection. The listener is shut down
// (drained) before return; closing the sink is the caller's business.
func runFaultGauntlet(t *testing.T, sink ingest.Sink, pkts []netgen.Packet) *ingest.Listener {
	t.Helper()
	l, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{Sink: sink, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultinject.NewProxy(l.Addr().String(), 99, faultRules())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	d := faultDialer(proxy.Addr(), t)
	streamAll(t, d, pkts)
	if st := d.Stats(); st.Reconnects == 0 || st.FramesResent == 0 {
		t.Fatalf("proxy faults produced no client reconnects/resends: %+v", st)
	}
	if err := l.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	return l
}

// assertFaultStats checks the ingest counters recorded the injected faults.
func assertFaultStats(t *testing.T, rs gsql.RuntimeStats, npkts int) {
	t.Helper()
	if rs.Reconnects == 0 {
		t.Fatal("Reconnects = 0, want >= 1 (OpCut fired)")
	}
	if rs.FramesQuarantined == 0 {
		t.Fatal("FramesQuarantined = 0, want >= 1 (OpCorrupt/OpPartialCut fired)")
	}
	if rs.DuplicatesDropped == 0 {
		t.Fatal("DuplicatesDropped = 0, want >= 1 (OpDuplicate fired)")
	}
	if rs.TuplesIn != uint64(npkts) {
		t.Fatalf("TuplesIn = %d, want exactly %d: the resend protocol must deliver everything once", rs.TuplesIn, npkts)
	}
}

// TestReconnectResumeExactSerial: disconnects, corruption, partial writes
// and duplicates on the wire must leave the serial run's output
// bit-identical to an uninterrupted in-process run.
func TestReconnectResumeExactSerial(t *testing.T) {
	pkts := genPackets(3000, 17)
	want := inProcessRows(t, pkts)

	st := prepare(t)
	var rc rowCollector
	run := st.Start(rc.sink, gsql.Options{})
	l := runFaultGauntlet(t, run, pkts)
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, rc.snapshot(), "serial under faults")
	assertFaultStats(t, l.RuntimeStats(), len(pkts))
}

// TestReconnectResumeExactParallel: the same gauntlet feeding the sharded
// runtime — the single pump goroutine satisfies its single-producer
// contract, and keyed grouping keeps rows bit-identical to serial.
func TestReconnectResumeExactParallel(t *testing.T) {
	pkts := genPackets(3000, 29)
	want := inProcessRows(t, pkts)

	st := prepare(t)
	var rc rowCollector
	pr, err := st.StartParallel(rc.sink, gsql.ParallelOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	l := runFaultGauntlet(t, pr, pkts)
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, rc.snapshot(), "parallel under faults")
	assertFaultStats(t, l.RuntimeStats(), len(pkts))
}

// TestKillAndRecover is the drain-to-checkpoint contract end to end: a
// listener is shut down mid-stream, its run checkpointed and its session
// table saved; a successor restores both on the same address while the
// client reconnects on its own; the combined output is bit-identical to an
// uninterrupted run — no lost window, no double-counted window.
func TestKillAndRecover(t *testing.T) {
	pkts := genPackets(6000, 41)
	want := inProcessRows(t, pkts)
	st := prepare(t)

	// Phase 1: first listener, killed mid-stream.
	var rc1 rowCollector
	run1 := st.Start(rc1.sink, gsql.Options{})
	l1, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{Sink: run1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()

	d := ingest.Dial("tcp", addr, ingest.DialerConfig{
		BatchSize:  32,
		MinBackoff: time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		AckTimeout: time.Second,
		Session:    0xc0ffee,
		Seed:       1,
		Logf:       t.Logf,
	})
	clientDone := make(chan error, 1)
	go func() {
		for _, p := range pkts {
			if err := d.Send(p); err != nil {
				clientDone <- err
				return
			}
		}
		clientDone <- d.Close()
	}()

	// Kill the first listener once it has applied a healthy prefix (but
	// long before the stream ends).
	deadline := time.Now().Add(10 * time.Second)
	for l1.RuntimeStats().FramesAccepted < 20 {
		if time.Now().After(deadline) {
			t.Fatal("first listener never reached 20 frames")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l1.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown 1: %v", err)
	}
	ckpt, err := run1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sessions := l1.Sessions()
	// run1 is deliberately NOT closed: closing would emit the open bucket,
	// which the restored successor will emit when it actually completes.

	// Phase 2: successor on the same address, restored from the checkpoint
	// and the session table. The client is reconnect-looping the whole
	// time and resends everything unacknowledged.
	var rc2 rowCollector
	run2, err := st.Restore(ckpt, rc2.sink, gsql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ingest.Listen("tcp", addr, ingest.Config{
		Sink:     run2,
		Sessions: sessions,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-clientDone:
		if err != nil {
			t.Fatalf("client: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("client did not finish against the restored listener")
	}
	if err := l2.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown 2: %v", err)
	}
	if err := run2.Close(); err != nil {
		t.Fatal(err)
	}

	got := append(rc1.snapshot(), rc2.snapshot()...)
	requireIdentical(t, want, got, "kill-and-recover")

	// A restored run's TuplesIn includes the tuples the checkpoint already
	// accounted for, so the successor's total must land exactly on the
	// trace length — any resent-but-already-applied frame that slipped
	// through dedup would overshoot it.
	rs1, rs2 := l1.RuntimeStats(), l2.RuntimeStats()
	if rs2.TuplesIn != uint64(len(pkts)) {
		t.Fatalf("successor accounts %d tuples, want %d (phase 1 applied %d)", rs2.TuplesIn, len(pkts), rs1.TuplesIn)
	}
	if rs2.Restores != 1 {
		t.Fatalf("successor run reports %d restores, want 1", rs2.Restores)
	}
}
