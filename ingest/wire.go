// Package ingest moves netgen.Packet streams across process boundaries:
// a length-prefixed, checksummed wire protocol over TCP or unix sockets, a
// Listener that feeds a gsql run, and a Dialer that replays traces into it.
//
// The paper's evaluation runs inside Gigascope on a live packet tap; this
// package is the equivalent boundary for the reproduction, and robustness
// is its whole point. The protocol is built so that every failure mode a
// real feed has — disconnects, corruption, duplicated delivery, partial
// writes, silence — degrades into either a retried frame or a quarantined
// frame, never a crash and never silent data loss:
//
//   - Every frame carries a 64-bit checksum over its body; corruption is
//     detected before a single field is interpreted.
//   - Data frames carry a per-session sequence number. The server applies
//     them in order, acknowledges cumulatively after applying, and drops
//     duplicates; the client retains unacknowledged frames and resends them
//     after reconnecting, so a frame lost to corruption or a dropped
//     connection is redelivered, exactly once in application order.
//   - Malformed frames are diverted to a bounded dead-letter ring as typed
//     *FrameError values and the offending connection is closed (stream
//     framing cannot be trusted after a bad frame); the client's resend
//     path turns that into a retry.
//
// Wire layout (little-endian), one frame:
//
//	u32 body length (bounded by the reader's MaxFrame)
//	u64 checksum of body (internal/core.HashBytes)
//	body:
//	  u8 frame type
//	  payload (type-specific, fixed layout below)
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"forwarddecay/internal/core"
	"forwarddecay/netgen"
)

// FrameType identifies a wire frame.
type FrameType uint8

const (
	// FrameHello opens (or resumes) a session: u8 protocol version,
	// u64 session id. The server replies with a FrameAck carrying the last
	// sequence number it has applied for that session, so a reconnecting
	// client can prune its resend buffer.
	FrameHello FrameType = 1
	// FrameData carries packets: u64 sequence number, u32 packet count,
	// then count fixed-size packet records (netgen.PacketRecordSize each).
	FrameData FrameType = 2
	// FrameHeartbeat advances stream time without data: f64 timestamp in
	// stream seconds. Heartbeats are idempotent and carry no sequence
	// number; they are neither acknowledged nor retransmitted.
	FrameHeartbeat FrameType = 3
	// FrameAck (server→client) acknowledges application: u64 cumulative
	// sequence number — every data frame up to and including it is durably
	// applied (or intentionally shed under a drop policy).
	FrameAck FrameType = 4
	// FrameBye announces a clean end of session; no payload.
	FrameBye FrameType = 5
)

// ProtocolVersion is the version byte sent in FrameHello.
const ProtocolVersion = 1

// DefaultMaxFrame bounds the body length a reader accepts; a corrupt
// length prefix can therefore never trigger a giant allocation.
const DefaultMaxFrame = 1 << 20

// frameHeaderSize is the length prefix plus the checksum.
const frameHeaderSize = 4 + 8

// FrameErrorKind classifies what was wrong with a malformed frame.
type FrameErrorKind uint8

const (
	// FrameTooLarge: the length prefix exceeds the reader's MaxFrame.
	FrameTooLarge FrameErrorKind = iota
	// FrameBadChecksum: the body does not hash to the header checksum.
	FrameBadChecksum
	// FrameTruncated: the stream ended inside a frame.
	FrameTruncated
	// FrameBadType: unknown frame type byte.
	FrameBadType
	// FrameBadPayload: the body is structurally wrong for its type (short
	// payload, packet count not matching the body length, non-finite
	// timestamp, bad protocol version).
	FrameBadPayload
	// FrameBadSequence: a data frame's sequence number is ahead of the
	// session (a gap the resend protocol should have made impossible).
	FrameBadSequence
	// FrameNoSession: a data frame arrived before any FrameHello.
	FrameNoSession
)

func (k FrameErrorKind) String() string {
	switch k {
	case FrameTooLarge:
		return "frame too large"
	case FrameBadChecksum:
		return "bad checksum"
	case FrameTruncated:
		return "truncated frame"
	case FrameBadType:
		return "unknown frame type"
	case FrameBadPayload:
		return "malformed payload"
	case FrameBadSequence:
		return "sequence gap"
	case FrameNoSession:
		return "data before hello"
	default:
		return "frame error"
	}
}

// FrameError reports one malformed wire frame. It is the only error type
// the decoder produces for bad input — malformed bytes never panic and
// never partially apply.
type FrameError struct {
	// Kind classifies the defect.
	Kind FrameErrorKind
	// Detail elaborates (lengths, counts, offending values).
	Detail string
}

func (e *FrameError) Error() string {
	if e.Detail == "" {
		return "ingest: " + e.Kind.String()
	}
	return "ingest: " + e.Kind.String() + ": " + e.Detail
}

func frameErrf(kind FrameErrorKind, format string, args ...any) *FrameError {
	return &FrameError{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

// Frame is one decoded wire frame.
type Frame struct {
	// Type selects which of the remaining fields are meaningful.
	Type FrameType
	// Version is the protocol version (FrameHello).
	Version uint8
	// Session is the client's session id (FrameHello).
	Session uint64
	// Seq is the data sequence number (FrameData) or the cumulative
	// acknowledged sequence number (FrameAck).
	Seq uint64
	// TS is the stream timestamp in seconds (FrameHeartbeat).
	TS float64
	// Packets is the data payload (FrameData).
	Packets []netgen.Packet
	// Sorted reports that Packets is non-decreasing in timestamp, detected
	// during decode at no extra pass. Sorted frames let the engine's batch
	// path run its distinct-timestamp fast paths (epoch scan run-skipping,
	// per-timestamp decay-weight memoization) at full effect.
	Sorted bool
}

// --- encoding ----------------------------------------------------------

// sealFrame wraps an encoded body in the length/checksum header.
func sealFrame(dst, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint64(dst, core.HashBytes(body))
	return append(dst, body...)
}

// AppendSealed wraps an arbitrary body in the protocol's length+checksum
// header — the same integrity envelope every wire frame travels in. It is
// exported so other durable byte streams (the distrib write-ahead log's
// segment records) reuse this codec instead of inventing a second framing.
func AppendSealed(dst, body []byte) []byte { return sealFrame(dst, body) }

// DecodeSealed splits the first sealed record off b, verifying its checksum,
// and returns the body along with the total bytes consumed. A record whose
// length prefix exceeds maxLen yields a *FrameError (FrameTooLarge); a
// checksum mismatch yields FrameBadChecksum; a buffer ending mid-record
// yields ErrIncomplete. The returned body aliases b. maxLen <= 0 selects
// DefaultMaxFrame.
func DecodeSealed(b []byte, maxLen int) (body []byte, n int, err error) {
	if maxLen <= 0 {
		maxLen = DefaultMaxFrame
	}
	if len(b) < frameHeaderSize {
		return nil, 0, ErrIncomplete
	}
	ln := binary.LittleEndian.Uint32(b)
	if ln > uint32(maxLen) {
		return nil, 0, frameErrf(FrameTooLarge, "body of %d bytes exceeds limit %d", ln, maxLen)
	}
	if uint64(len(b)) < frameHeaderSize+uint64(ln) {
		return nil, 0, ErrIncomplete
	}
	body = b[frameHeaderSize : frameHeaderSize+int(ln)]
	if core.HashBytes(body) != binary.LittleEndian.Uint64(b[4:]) {
		return nil, 0, frameErrf(FrameBadChecksum, "body of %d bytes", ln)
	}
	return body, frameHeaderSize + int(ln), nil
}

// AppendHello appends an encoded FrameHello to dst.
func AppendHello(dst []byte, session uint64) []byte {
	body := make([]byte, 0, 2+8)
	body = append(body, byte(FrameHello), ProtocolVersion)
	body = binary.LittleEndian.AppendUint64(body, session)
	return sealFrame(dst, body)
}

// AppendData appends an encoded FrameData carrying pkts under seq to dst.
func AppendData(dst []byte, seq uint64, pkts []netgen.Packet) []byte {
	body := make([]byte, 0, 1+8+4+len(pkts)*netgen.PacketRecordSize)
	body = append(body, byte(FrameData))
	body = binary.LittleEndian.AppendUint64(body, seq)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(pkts)))
	for _, p := range pkts {
		body = netgen.AppendPacketRecord(body, p)
	}
	return sealFrame(dst, body)
}

// AppendHeartbeat appends an encoded FrameHeartbeat at stream time ts.
func AppendHeartbeat(dst []byte, ts float64) []byte {
	body := make([]byte, 0, 1+8)
	body = append(body, byte(FrameHeartbeat))
	body = binary.LittleEndian.AppendUint64(body, math.Float64bits(ts))
	return sealFrame(dst, body)
}

// AppendAck appends an encoded FrameAck for the cumulative sequence seq.
func AppendAck(dst []byte, seq uint64) []byte {
	body := make([]byte, 0, 1+8)
	body = append(body, byte(FrameAck))
	body = binary.LittleEndian.AppendUint64(body, seq)
	return sealFrame(dst, body)
}

// AppendBye appends an encoded FrameBye to dst.
func AppendBye(dst []byte) []byte {
	return sealFrame(dst, []byte{byte(FrameBye)})
}

// AppendFrame re-encodes a decoded frame (the inverse of DecodeFrame).
func AppendFrame(dst []byte, f Frame) []byte {
	switch f.Type {
	case FrameHello:
		return AppendHello(dst, f.Session)
	case FrameData:
		return AppendData(dst, f.Seq, f.Packets)
	case FrameHeartbeat:
		return AppendHeartbeat(dst, f.TS)
	case FrameAck:
		return AppendAck(dst, f.Seq)
	default:
		return AppendBye(dst)
	}
}

// RecycleFrame returns a data frame's packet buffer to the decode pool.
// Call it once the frame's packets have been fully consumed; the slice must
// not be referenced afterwards. Recycling is optional — an unrecycled frame
// is simply garbage-collected — and safe only once per decoded frame.
func RecycleFrame(f Frame) { recyclePackets(f.Packets) }

// --- decoding ----------------------------------------------------------

// packetPool recycles the packet slices materialized by data-frame decoding;
// wrapperPool recycles the *[]Packet boxes so Put itself does not allocate.
// Together they make steady-state decode+recycle cycles allocation-free:
// the slice storage and its box circulate between the two pools.
var (
	packetPool  sync.Pool // holds *[]netgen.Packet with usable capacity
	wrapperPool sync.Pool // holds empty *[]netgen.Packet boxes
)

// getPacketBuf returns a packet slice of length n, reusing pooled storage
// when its capacity suffices.
func getPacketBuf(n int) []netgen.Packet {
	v := packetPool.Get()
	if v == nil {
		return make([]netgen.Packet, n)
	}
	p := v.(*[]netgen.Packet)
	buf := *p
	*p = nil
	wrapperPool.Put(p)
	if cap(buf) < n {
		return make([]netgen.Packet, n)
	}
	return buf[:n]
}

// recyclePackets is the pool return path behind RecycleFrame (no-op for
// slices without capacity).
func recyclePackets(pkts []netgen.Packet) {
	if cap(pkts) == 0 {
		return
	}
	var p *[]netgen.Packet
	if v := wrapperPool.Get(); v != nil {
		p = v.(*[]netgen.Packet)
	} else {
		p = new([]netgen.Packet)
	}
	*p = pkts[:0]
	packetPool.Put(p)
}

// parseBody decodes a checksum-verified frame body.
func parseBody(body []byte) (Frame, error) {
	if len(body) < 1 {
		return Frame{}, frameErrf(FrameBadPayload, "empty body")
	}
	t, payload := FrameType(body[0]), body[1:]
	switch t {
	case FrameHello:
		if len(payload) != 1+8 {
			return Frame{}, frameErrf(FrameBadPayload, "hello payload is %d bytes, want 9", len(payload))
		}
		if payload[0] != ProtocolVersion {
			return Frame{}, frameErrf(FrameBadPayload, "protocol version %d, want %d", payload[0], ProtocolVersion)
		}
		return Frame{Type: t, Version: payload[0], Session: binary.LittleEndian.Uint64(payload[1:])}, nil
	case FrameData:
		if len(payload) < 8+4 {
			return Frame{}, frameErrf(FrameBadPayload, "data payload is %d bytes, want >= 12", len(payload))
		}
		seq := binary.LittleEndian.Uint64(payload)
		n := binary.LittleEndian.Uint32(payload[8:])
		recs := payload[12:]
		if uint64(len(recs)) != uint64(n)*netgen.PacketRecordSize {
			return Frame{}, frameErrf(FrameBadPayload, "data frame claims %d packets but carries %d record bytes", n, len(recs))
		}
		if seq == 0 {
			return Frame{}, frameErrf(FrameBadPayload, "data frame with sequence 0")
		}
		pkts := getPacketBuf(int(n))
		sorted := true
		for i := range pkts {
			pkts[i] = netgen.DecodePacketRecord(recs[i*netgen.PacketRecordSize:])
			if ts := pkts[i].Time; math.IsNaN(ts) || math.IsInf(ts, 0) {
				recyclePackets(pkts)
				return Frame{}, frameErrf(FrameBadPayload, "packet %d has non-finite timestamp %v", i, ts)
			}
			if i > 0 && pkts[i-1].Time > pkts[i].Time {
				sorted = false
			}
		}
		return Frame{Type: t, Seq: seq, Packets: pkts, Sorted: sorted}, nil
	case FrameHeartbeat:
		if len(payload) != 8 {
			return Frame{}, frameErrf(FrameBadPayload, "heartbeat payload is %d bytes, want 8", len(payload))
		}
		ts := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		if math.IsNaN(ts) || math.IsInf(ts, 0) {
			return Frame{}, frameErrf(FrameBadPayload, "heartbeat with non-finite timestamp %v", ts)
		}
		return Frame{Type: t, TS: ts}, nil
	case FrameAck:
		if len(payload) != 8 {
			return Frame{}, frameErrf(FrameBadPayload, "ack payload is %d bytes, want 8", len(payload))
		}
		return Frame{Type: t, Seq: binary.LittleEndian.Uint64(payload)}, nil
	case FrameBye:
		if len(payload) != 0 {
			return Frame{}, frameErrf(FrameBadPayload, "bye payload is %d bytes, want 0", len(payload))
		}
		return Frame{Type: t}, nil
	default:
		return Frame{}, frameErrf(FrameBadType, "type 0x%02x", byte(t))
	}
}

// ErrIncomplete reports that a buffer ends mid-frame: more bytes are
// needed before DecodeFrame can make progress. It is not a FrameError —
// a stream reader treats it as "read more", not as corruption.
var ErrIncomplete = errors.New("ingest: incomplete frame")

// DecodeFrame decodes the first frame in b, returning the frame and the
// number of bytes it consumed. Malformed input yields a *FrameError (never
// a panic, never an allocation beyond the bounded body); a buffer that
// ends mid-frame yields ErrIncomplete. maxFrame <= 0 selects
// DefaultMaxFrame.
func DecodeFrame(b []byte, maxFrame int) (Frame, int, error) {
	body, n, err := DecodeSealed(b, maxFrame)
	if err != nil {
		return Frame{}, 0, err
	}
	f, err := parseBody(body)
	if err != nil {
		return Frame{}, 0, err
	}
	return f, n, nil
}

// FrameReader decodes frames from a byte stream.
type FrameReader struct {
	br       *bufio.Reader
	maxFrame int
	body     []byte // reusable body buffer
}

// NewFrameReader returns a reader over r. maxFrame <= 0 selects
// DefaultMaxFrame.
func NewFrameReader(r io.Reader, maxFrame int) *FrameReader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10), maxFrame: maxFrame}
}

// ReadFrame reads and decodes the next frame. A clean end of stream at a
// frame boundary returns io.EOF; a stream that ends mid-frame returns a
// *FrameError with Kind FrameTruncated; malformed frames return their
// *FrameError. After any non-nil error the stream position is unreliable
// and the caller should close the connection — framing cannot be
// re-synchronized past a corrupt length prefix.
func (fr *FrameReader) ReadFrame() (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, frameErrf(FrameTruncated, "stream ended inside the frame header")
		}
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > uint32(fr.maxFrame) {
		return Frame{}, frameErrf(FrameTooLarge, "body of %d bytes exceeds limit %d", n, fr.maxFrame)
	}
	if cap(fr.body) < int(n) {
		fr.body = make([]byte, n)
	}
	body := fr.body[:n]
	if _, err := io.ReadFull(fr.br, body); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, frameErrf(FrameTruncated, "stream ended inside a %d-byte body", n)
		}
		return Frame{}, err
	}
	if core.HashBytes(body) != binary.LittleEndian.Uint64(hdr[4:]) {
		return Frame{}, frameErrf(FrameBadChecksum, "body of %d bytes", n)
	}
	return parseBody(body)
}
