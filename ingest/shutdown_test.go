package ingest_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
)

// poisonSink fails every Push with a fixed error — the stand-in for a
// runtime that has died under the listener.
type poisonSink struct{ err error }

func (s poisonSink) Push(gsql.Tuple) error      { return s.err }
func (s poisonSink) Heartbeat(gsql.Value) error { return s.err }

// TestShutdownIdempotent: Shutdown must be safe to call twice — including
// concurrently — with every call draining to the same quiescent state and
// reporting the same verdict, and the session table must not shift between
// calls. The supervisor leans on this: a watchdog-initiated shutdown can
// race a deliberate one.
func TestShutdownIdempotent(t *testing.T) {
	pkts := genPackets(500, 7)
	st := prepare(t)
	var rc rowCollector
	run := st.Start(rc.sink, gsql.Options{})
	l, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{Sink: run, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	d := ingest.Dial("tcp", l.Addr().String(), ingest.DialerConfig{
		BatchSize: 25, Session: 0x51, Logf: t.Logf,
	})
	streamAll(t, d, pkts) // Close waits for every ack: all 20 frames applied

	before := l.Sessions()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Shutdown(10 * time.Second)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("concurrent Shutdown %d: %v", i, e)
		}
	}
	// A further call after the drain completed behaves the same.
	if err := l.Shutdown(time.Second); err != nil {
		t.Fatalf("post-drain Shutdown: %v", err)
	}

	after := l.Sessions()
	if len(before) != 1 || len(after) != 1 {
		t.Fatalf("session table size: before %d, after %d, want 1", len(before), len(after))
	}
	wantFrames := d.Stats().FramesSent
	if got := after[0x51]; got != wantFrames {
		t.Fatalf("session applied = %d, want %d (every sent frame acked before Close returned)", got, wantFrames)
	}
	if before[0x51] != after[0x51] {
		t.Fatalf("session table shifted across drain: %d -> %d", before[0x51], after[0x51])
	}
	if rs := l.RuntimeStats(); rs.TuplesIn != uint64(len(pkts)) {
		t.Fatalf("TuplesIn = %d, want %d", rs.TuplesIn, len(pkts))
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestErrAfterSinkFailure: once the sink poisons the pump, Err() reports the
// failure, Shutdown returns it (from every call), and — critically for
// supervised restarts — the frame the sink never applied is NOT acked, so
// its session watermark stays put and the client retains it for resending
// to the successor.
func TestErrAfterSinkFailure(t *testing.T) {
	sinkErr := errors.New("runtime died under the listener")
	l, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{
		Sink: poisonSink{err: sinkErr}, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := ingest.Dial("tcp", l.Addr().String(), ingest.DialerConfig{
		BatchSize:  8,
		Session:    0x99,
		AckTimeout: 100 * time.Millisecond,
		MinBackoff: time.Millisecond,
		MaxBackoff: 5 * time.Millisecond,
		MaxDials:   3,
		Logf:       t.Logf,
	})
	for _, p := range genPackets(8, 3) { // exactly one data frame
		if err := d.Send(p); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("listener never recorded the sink failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := l.Err(); !errors.Is(got, sinkErr) {
		t.Fatalf("Err() = %v, want %v", got, sinkErr)
	}
	if err := l.Shutdown(5 * time.Second); !errors.Is(err, sinkErr) {
		t.Fatalf("Shutdown = %v, want the sink failure %v", err, sinkErr)
	}
	if err := l.Shutdown(time.Second); !errors.Is(err, sinkErr) {
		t.Fatalf("second Shutdown = %v, want the sink failure %v", err, sinkErr)
	}
	if applied := l.Sessions()[0x99]; applied != 0 {
		t.Fatalf("session applied = %d after sink failure, want 0: an unapplied frame must never be acked", applied)
	}
	// The dialer's ack timeout fires, it redials, exhausts MaxDials, and
	// Close surfaces the give-up instead of hanging on acks that will never
	// come.
	if err := d.Close(); err == nil {
		t.Fatal("dialer Close succeeded despite a poisoned listener holding its frames")
	}
}

// TestShutdownTimeoutExpires: a sink wedged inside Push can outlive the
// drain budget; Shutdown must return the timeout error instead of hanging.
func TestShutdownTimeoutExpires(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	l, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{
		Sink: &wedgeSink{release: release, entered: entered}, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := ingest.Dial("tcp", l.Addr().String(), ingest.DialerConfig{
		BatchSize: 4, Session: 0x42, AckTimeout: time.Hour, Logf: t.Logf,
	})
	for _, p := range genPackets(4, 5) {
		if err := d.Send(p); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	select {
	case <-entered: // the pump is provably stuck inside Push
	case <-time.After(5 * time.Second):
		t.Fatal("pump never reached the wedged sink")
	}
	start := time.Now()
	err = l.Shutdown(200 * time.Millisecond)
	if err == nil {
		t.Fatal("Shutdown returned nil with a wedged sink")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v, want ~200ms timeout", elapsed)
	}
	close(release) // unwedge so the pump goroutine can exit
}

// wedgeSink blocks inside Push until released — the watchdog drill's model
// of a runtime stuck on a lock. It closes entered on first entry so the
// test can synchronize with the wedge.
type wedgeSink struct {
	release chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (s *wedgeSink) Push(gsql.Tuple) error {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return nil
}
func (s *wedgeSink) Heartbeat(gsql.Value) error { return nil }
