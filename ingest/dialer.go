package ingest

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"forwarddecay/internal/core"
	"forwarddecay/netgen"
)

// DialerConfig parameterizes a Dialer. The zero value of every field is a
// usable default.
type DialerConfig struct {
	// BatchSize is the number of packets per data frame (default 256).
	BatchSize int
	// MinBackoff and MaxBackoff bound the reconnect backoff (defaults
	// 50ms and 2s). The delay doubles per consecutive failure, capped at
	// MaxBackoff, with uniform jitter over the upper half.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// MaxDials bounds the total number of dial attempts (0 = unlimited).
	// When exhausted, the pending operation fails with the last dial error.
	MaxDials int
	// Window is the maximum number of unacknowledged data frames in flight
	// before Send blocks (default 32).
	Window int
	// AckTimeout bounds how long a full window waits for an ack before the
	// connection is declared dead and redialed (default 5s).
	AckTimeout time.Duration
	// Session identifies this logical stream across reconnects. Zero picks
	// a random id; pass an explicit id to resume a stream a previous
	// process started.
	Session uint64
	// Seed fixes the jitter RNG for deterministic tests (0 = seeded from
	// the session id).
	Seed uint64
	// Logf, when set, receives diagnostic messages (reconnects, backoff).
	Logf func(format string, args ...any)
}

// DialerStats counts a Dialer's connection and resend activity.
type DialerStats struct {
	// Dials counts every dial attempt, successful or not.
	Dials uint64
	// Reconnects counts successful dials after the first.
	Reconnects uint64
	// FramesSent counts first transmissions of data frames.
	FramesSent uint64
	// FramesResent counts retransmissions after a reconnect.
	FramesResent uint64
	// PacketsSent counts packets in first transmissions.
	PacketsSent uint64
}

// sentFrame is an unacknowledged data frame retained for resend.
type sentFrame struct {
	seq uint64
	buf []byte // sealed wire encoding
}

// Dialer streams packets to an ingest Listener with automatic reconnect
// and resume: data frames are retained until the server acknowledges them
// and resent after any reconnect, so a flaky network yields a complete,
// in-order stream at the server. Not safe for concurrent use — like the
// runs it ultimately feeds, it has a single-producer contract.
type Dialer struct {
	network, address string
	cfg              DialerConfig
	rng              *core.RNG

	batch   []netgen.Packet
	nextSeq uint64

	mu       sync.Mutex
	unacked  []sentFrame
	lastAck  uint64
	notify   chan struct{} // 1-buffered: ack-reader kicks waiters
	conn     net.Conn
	connGen  uint64 // guards stale ack-readers after a reconnect
	dialFail int    // consecutive dial failures (backoff exponent)
	stats    DialerStats
}

// Dial creates a Dialer for the given network ("tcp" or "unix") and
// address. The first connection is established lazily on the first flush,
// so Dial itself cannot fail — a server that is not up yet is just one
// more fault the reconnect path absorbs.
func Dial(network, address string, cfg DialerConfig) *Dialer {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Session
	}
	if cfg.Session == 0 {
		// Random session id from the wall clock; collisions across clients
		// of one listener are the only hazard, and 64 bits of mixed
		// nanoseconds make them negligible.
		cfg.Session = core.Mix64(uint64(time.Now().UnixNano()))
		if seed == 0 {
			seed = cfg.Session
		}
	}
	return &Dialer{
		network: network,
		address: address,
		cfg:     cfg,
		rng:     core.NewRNG(seed),
		batch:   make([]netgen.Packet, 0, cfg.BatchSize),
		nextSeq: 1,
		notify:  make(chan struct{}, 1),
	}
}

// Session returns the session id in use (useful when Dial generated one).
func (d *Dialer) Session() uint64 { return d.cfg.Session }

// Stats snapshots the dialer's counters.
func (d *Dialer) Stats() DialerStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Send buffers one packet, flushing a full batch as a data frame. It
// blocks while the unacked window is full and returns an error only when
// the reconnect budget (MaxDials) is exhausted.
func (d *Dialer) Send(p netgen.Packet) error {
	d.batch = append(d.batch, p)
	if len(d.batch) >= d.cfg.BatchSize {
		return d.Flush()
	}
	return nil
}

// Flush seals the current batch (if any) into a data frame and transmits
// it, blocking while the unacked window is full.
func (d *Dialer) Flush() error {
	if len(d.batch) == 0 {
		return nil
	}
	seq := d.nextSeq
	d.nextSeq++
	buf := AppendData(nil, seq, d.batch)
	npkts := len(d.batch)
	d.batch = d.batch[:0]

	if err := d.waitWindow(); err != nil {
		return err
	}
	d.mu.Lock()
	d.unacked = append(d.unacked, sentFrame{seq: seq, buf: buf})
	d.stats.FramesSent++
	d.stats.PacketsSent += uint64(npkts)
	err := d.writeLocked(buf)
	d.mu.Unlock()
	if err != nil {
		// The frame is retained in unacked; the next operation reconnects
		// and resends it.
		return d.ensureConn()
	}
	return nil
}

// Heartbeat flushes any buffered packets, then sends a heartbeat frame
// advancing the server's stream clock to ts. Heartbeats are idempotent and
// unacknowledged: one lost to a connection drop is simply not resent.
func (d *Dialer) Heartbeat(ts float64) error {
	if err := d.Flush(); err != nil {
		return err
	}
	buf := AppendHeartbeat(nil, ts)
	d.mu.Lock()
	err := d.writeLocked(buf)
	d.mu.Unlock()
	if err != nil {
		return d.ensureConn()
	}
	return nil
}

// Close flushes buffered packets, waits until every data frame is
// acknowledged (reconnecting and resending as needed), sends Bye, and
// closes the connection.
func (d *Dialer) Close() error {
	if err := d.Flush(); err != nil {
		return err
	}
	for {
		d.mu.Lock()
		drained := len(d.unacked) == 0
		d.mu.Unlock()
		if drained {
			break
		}
		if err := d.waitAckProgress(); err != nil {
			return err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.conn != nil {
		d.conn.Write(AppendBye(nil))
		d.conn.Close()
		d.conn = nil
		d.connGen++
	}
	return nil
}

// waitWindow blocks until the unacked window has room.
func (d *Dialer) waitWindow() error {
	for {
		d.mu.Lock()
		room := len(d.unacked) < d.cfg.Window
		d.mu.Unlock()
		if room {
			return nil
		}
		if err := d.waitAckProgress(); err != nil {
			return err
		}
	}
}

// waitAckProgress ensures a live connection, then waits for an ack (or the
// ack timeout, which declares the connection dead so the next pass
// reconnects and resends).
func (d *Dialer) waitAckProgress() error {
	if err := d.ensureConn(); err != nil {
		return err
	}
	select {
	case <-d.notify:
		return nil
	case <-time.After(d.cfg.AckTimeout):
		d.cfg.Logf("ingest: no ack in %v, reconnecting", d.cfg.AckTimeout)
		d.dropConn()
		return nil
	}
}

// dropConn kills the current connection so ensureConn redials.
func (d *Dialer) dropConn() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.conn != nil {
		d.conn.Close()
		d.conn = nil
		d.connGen++
	}
}

// writeLocked writes to the live connection; d.mu must be held. A nil or
// failed connection is dropped and reported — the caller routes through
// ensureConn to heal.
func (d *Dialer) writeLocked(buf []byte) error {
	if d.conn == nil {
		return io.ErrClosedPipe
	}
	if _, err := d.conn.Write(buf); err != nil {
		d.conn.Close()
		d.conn = nil
		d.connGen++
		return err
	}
	return nil
}

// ensureConn returns once a healthy connection exists, dialing with capped
// exponential backoff and jitter, performing the hello/ack handshake,
// pruning acknowledged frames, and retransmitting the rest. It fails only
// when MaxDials is exhausted.
func (d *Dialer) ensureConn() error {
	for {
		d.mu.Lock()
		if d.conn != nil {
			d.mu.Unlock()
			return nil
		}
		attempt := d.dialFail
		dials := d.stats.Dials
		d.mu.Unlock()

		if d.cfg.MaxDials > 0 && dials >= uint64(d.cfg.MaxDials) {
			return fmt.Errorf("ingest: giving up after %d dial attempts to %s %s", dials, d.network, d.address)
		}
		if attempt > 0 {
			d.sleepBackoff(attempt)
		}

		d.mu.Lock()
		d.stats.Dials++
		d.mu.Unlock()
		conn, acked, err := d.handshake()
		if err != nil {
			d.mu.Lock()
			d.dialFail++
			d.mu.Unlock()
			d.cfg.Logf("ingest: dial %s %s: %v", d.network, d.address, err)
			continue
		}

		d.mu.Lock()
		d.dialFail = 0
		if d.stats.Dials > 1 {
			d.stats.Reconnects++
		}
		if acked > d.lastAck {
			d.lastAck = acked
		}
		d.pruneLocked()
		resend := make([][]byte, len(d.unacked))
		for i, sf := range d.unacked {
			resend[i] = sf.buf
		}
		d.conn = conn
		d.connGen++
		gen := d.connGen
		d.stats.FramesResent += uint64(len(resend))
		d.mu.Unlock()

		ok := true
		for _, buf := range resend {
			if _, err := conn.Write(buf); err != nil {
				d.cfg.Logf("ingest: resend failed: %v", err)
				ok = false
				break
			}
		}
		if !ok {
			d.mu.Lock()
			if d.connGen == gen {
				d.conn.Close()
				d.conn = nil
				d.connGen++
			}
			d.mu.Unlock()
			continue
		}
		go d.readAcks(conn, gen)
		return nil
	}
}

// handshake dials, sends Hello, and waits for the server's cumulative ack.
func (d *Dialer) handshake() (net.Conn, uint64, error) {
	conn, err := net.DialTimeout(d.network, d.address, 2*time.Second)
	if err != nil {
		return nil, 0, err
	}
	if _, err := conn.Write(AppendHello(nil, d.cfg.Session)); err != nil {
		conn.Close()
		return nil, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(d.cfg.AckTimeout))
	fr := NewFrameReader(conn, DefaultMaxFrame)
	f, err := fr.ReadFrame()
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("hello ack: %w", err)
	}
	if f.Type != FrameAck {
		conn.Close()
		return nil, 0, fmt.Errorf("hello ack: got frame type %d", f.Type)
	}
	return conn, f.Seq, nil
}

// sleepBackoff sleeps the shared capped-exponential-with-jitter policy for
// the given consecutive-failure count (core.Backoff is the one retry policy
// for the whole repository — the server supervisor uses the same curve).
func (d *Dialer) sleepBackoff(fails int) {
	b := core.Backoff{Min: d.cfg.MinBackoff, Max: d.cfg.MaxBackoff}
	time.Sleep(b.Delay(fails, d.rng))
}

// pruneLocked discards unacked frames covered by lastAck; d.mu held.
func (d *Dialer) pruneLocked() {
	i := 0
	for i < len(d.unacked) && d.unacked[i].seq <= d.lastAck {
		i++
	}
	if i > 0 {
		d.unacked = append(d.unacked[:0], d.unacked[i:]...)
	}
}

// readAcks consumes server acks on one connection until it dies, pruning
// the resend buffer and waking window waiters. gen guards against a stale
// reader mutating state after a reconnect replaced the connection.
func (d *Dialer) readAcks(conn net.Conn, gen uint64) {
	fr := NewFrameReader(conn, DefaultMaxFrame)
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			d.mu.Lock()
			if d.connGen == gen && d.conn != nil {
				d.conn.Close()
				d.conn = nil
				d.connGen++
			}
			d.mu.Unlock()
			d.kick()
			return
		}
		if f.Type != FrameAck {
			continue
		}
		d.mu.Lock()
		if d.connGen != gen {
			d.mu.Unlock()
			return
		}
		if f.Seq > d.lastAck {
			d.lastAck = f.Seq
			d.pruneLocked()
		}
		d.mu.Unlock()
		d.kick()
	}
}

// kick wakes one waiter without blocking.
func (d *Dialer) kick() {
	select {
	case d.notify <- struct{}{}:
	default:
	}
}
