package ingest

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/metrics"
	"forwarddecay/netgen"
)

// Sink is the run a Listener feeds. Both *gsql.Run and *gsql.ParallelRun
// satisfy it; all calls are made from the listener's single pump goroutine,
// matching the runs' single-producer contract.
type Sink interface {
	Push(gsql.Tuple) error
	Heartbeat(gsql.Value) error
}

// BatchSink is optionally implemented by sinks that accept columnar batches;
// *gsql.Run and *gsql.ParallelRun both do. When the sink implements it (and
// Config.ScalarPush is off) the pump loads each data frame straight into a
// reused gsql.Batch — no per-tuple Value materialization — and applies it in
// one PushBatch call. Rejected rows (non-finite floats) are counted exactly
// as the scalar path counts per-tuple *gsql.NonFiniteValueError pushes, and
// checkpoints keep their cut at frame boundaries on both paths.
type BatchSink interface {
	Sink
	PushBatch(*gsql.Batch) (rejected int, err error)
}

// runtimeStatser is optionally implemented by sinks (both gsql runtimes
// implement it); after the pump stops, the listener folds the sink's
// counters into its own snapshot.
type runtimeStatser interface {
	RuntimeStats() gsql.RuntimeStats
}

// Config parameterizes a Listener. The zero value of every field is a
// usable default except Sink, which is required.
type Config struct {
	// Sink receives tuples and heartbeats. Required.
	Sink Sink
	// Queue is the intake queue capacity in frames (default 64). Readers
	// enqueue decoded frames here; the pump applies them to the sink.
	Queue int
	// Overload selects what a reader does when the intake queue is full:
	// OverloadBlock (default) blocks the reader — backpressure through TCP
	// flow control all the way to the client; OverloadDropNewest sheds the
	// frame, counts it in TuplesShed/BatchesShed, and acknowledges it so
	// the client does not stall or resend intentionally-dropped data.
	Overload gsql.OverloadPolicy
	// MaxFrame bounds accepted frame bodies (default DefaultMaxFrame).
	MaxFrame int
	// DeadLetters is the capacity of the quarantine ring (default 32).
	DeadLetters int
	// HeartbeatInterval, when positive, synthesizes a heartbeat whenever no
	// frame has arrived for that long: stream time is advanced by the idle
	// wall-clock duration so open windows still close during silence.
	HeartbeatInterval time.Duration
	// CheckpointEvery, with Checkpoint set, invokes the checkpoint hook
	// every that many applied tuples.
	CheckpointEvery uint64
	// Checkpoint is called from the pump goroutine (safe with respect to
	// the sink) after every CheckpointEvery tuples. Errors are sticky and
	// stop the listener.
	Checkpoint func() error
	// ScalarPush forces the per-tuple Push path even when Sink implements
	// BatchSink — the differential lever for batch-vs-scalar comparisons and
	// an escape hatch should a workload prefer the scalar engine.
	ScalarPush bool
	// Sessions seeds the session table (session id → highest applied
	// sequence) from a previous listener's Sessions() snapshot. Restoring
	// it alongside the sink's checkpoint is what makes kill-and-recover
	// exact: a frame the old process applied whose ack was lost will be
	// resent by the client, recognized as a duplicate, and dropped instead
	// of double-counted.
	Sessions map[uint64]uint64
	// WAL, when set, receives every frame and heartbeat BEFORE it is
	// applied to the sink, from the pump goroutine. A logged-then-acked
	// frame is thereby recoverable even if the process dies without
	// draining: the ack contract strengthens from "applied" to "applied
	// and durable". Log errors are sticky and stop the listener, exactly
	// like sink errors — an ack must never outrun the log.
	WAL ApplyLog
	// Logf, when set, receives diagnostic messages (reconnects,
	// quarantines, shutdown progress).
	Logf func(format string, args ...any)
}

// ApplyLog is a write-ahead log for the listener's apply path (see
// Config.WAL). LogFrame records a data frame — with its session and
// sequence number, so a recovering successor can rebuild the dedup table
// from the log — and LogHeartbeat records an applied heartbeat, preserving
// the value's type (an Int and a Float heartbeat take different temporal
// paths through the engine). Both are called from the single pump
// goroutine, before the corresponding sink call.
type ApplyLog interface {
	LogFrame(session, seq uint64, pkts []netgen.Packet) error
	LogHeartbeat(ts gsql.Value) error
}

// DeadLetter is one quarantined frame.
type DeadLetter struct {
	// Err is the typed decode error.
	Err *FrameError
	// Remote is the peer address the frame arrived from.
	Remote string
	// When is the wall-clock quarantine time.
	When time.Time
}

// session is the per-client-session dedup and ack state. Both fields are
// atomic: after an ack timeout a client may reconnect while the abandoned
// connection's reader is still draining, so two readers can briefly serve
// one session. The CAS in serveConn admits each sequence number exactly
// once regardless.
type session struct {
	id      uint64
	nextSeq atomic.Uint64 // next sequence number a reader will accept
	applied atomic.Uint64 // highest sequence applied (or shed) by the pump
}

// item is one unit of intake-queue work.
type item struct {
	conn   *serverConn
	sess   *session
	seq    uint64
	pkts   []netgen.Packet
	sorted bool // frame-decode verdict: pkts non-decreasing in time
	hb     float64
	isHB   bool
}

// serverConn wraps one accepted connection with a write lock shared by the
// reader (hello-acks, duplicate re-acks) and the pump (applied acks).
type serverConn struct {
	c  net.Conn
	mu sync.Mutex
}

// writeAck sends a cumulative ack; errors are ignored (a dead peer will
// reconnect and learn the applied sequence from the hello-ack).
func (sc *serverConn) writeAck(seq uint64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	b := AppendAck(nil, seq)
	sc.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	sc.c.Write(b)
	sc.c.SetWriteDeadline(time.Time{})
}

// Listener serves the ingest protocol and feeds a gsql run. Create with
// Listen, stop with Shutdown.
type Listener struct {
	cfg Config
	nl  net.Listener

	queue   chan item
	readers sync.WaitGroup
	pumped  chan struct{} // closed when the pump exits

	mu       sync.Mutex
	conns    map[*serverConn]struct{}
	sessions map[uint64]*session
	dead     []DeadLetter // quarantine ring
	deadNext int          // ring cursor
	deadN    uint64       // total quarantined (may exceed ring size)
	closing  bool
	err      error

	// counters (atomics: bumped from readers and pump, read from anywhere)
	framesAccepted  atomic.Uint64
	duplicates      atomic.Uint64
	reconnects      atomic.Uint64
	heartbeatsSynth atomic.Uint64
	tuplesIn        atomic.Uint64
	tuplesRejected  atomic.Uint64
	tuplesShed      atomic.Uint64
	batchesShed     atomic.Uint64
	pumpStopped     atomic.Bool

	// frameGaps tracks the decayed distribution of wall-clock gaps between
	// applied data frames — a forward-decay reservoir watching the feed's
	// own health.
	frameGaps *metrics.Reservoir
	lastFrame time.Time
	gapMu     sync.Mutex
}

// SplitAddr parses "unix:/path" or "[tcp:]host:port" into a (network,
// address) pair for Listen and Dial.
func SplitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		return "tcp", rest
	}
	return "tcp", addr
}

// Listen starts serving the ingest protocol on the given network ("tcp" or
// "unix") and address, feeding cfg.Sink until Shutdown.
func Listen(network, address string, cfg Config) (*Listener, error) {
	if cfg.Sink == nil {
		return nil, fmt.Errorf("ingest: Config.Sink is required")
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.DeadLetters <= 0 {
		cfg.DeadLetters = 32
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	nl, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	l := &Listener{
		cfg:       cfg,
		nl:        nl,
		queue:     make(chan item, cfg.Queue),
		pumped:    make(chan struct{}),
		conns:     make(map[*serverConn]struct{}),
		sessions:  make(map[uint64]*session),
		frameGaps: metrics.NewReservoir(256, 30*time.Second),
	}
	for id, applied := range cfg.Sessions {
		s := &session{id: id}
		s.applied.Store(applied)
		s.nextSeq.Store(applied + 1)
		l.sessions[id] = s
	}
	go l.acceptLoop()
	go l.pump()
	return l, nil
}

// Addr returns the bound address (useful with ":0" listeners).
func (l *Listener) Addr() net.Addr { return l.nl.Addr() }

// Err returns the listener's sticky error: a sink or checkpoint failure
// that stopped the pump. Frame-level problems are never sticky — they land
// in the dead-letter ring instead.
func (l *Listener) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// fail records the first sticky error.
func (l *Listener) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
	l.cfg.Logf("ingest: pump failed: %v", err)
}

// DeadLetters returns the quarantined frames currently in the ring
// (oldest first) and the total number quarantined since start.
func (l *Listener) DeadLetters() ([]DeadLetter, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]DeadLetter, 0, len(l.dead))
	if len(l.dead) == l.cfg.DeadLetters {
		out = append(out, l.dead[l.deadNext:]...)
	}
	out = append(out, l.dead[:l.deadNext]...)
	return out, l.deadN
}

// quarantine records a malformed frame in the bounded dead-letter ring.
func (l *Listener) quarantine(fe *FrameError, remote string) {
	l.mu.Lock()
	dl := DeadLetter{Err: fe, Remote: remote, When: time.Now()}
	if len(l.dead) < l.cfg.DeadLetters {
		l.dead = append(l.dead, dl)
		l.deadNext = len(l.dead) % l.cfg.DeadLetters
	} else {
		l.dead[l.deadNext] = dl
		l.deadNext = (l.deadNext + 1) % l.cfg.DeadLetters
	}
	l.deadN++
	l.mu.Unlock()
	l.cfg.Logf("ingest: quarantined frame from %s: %v", remote, fe)
}

// RuntimeStats snapshots the ingest counters. After Shutdown it also folds
// in the sink's own RuntimeStats (tuples, windows, checkpoints); while the
// pump is live only the listener-owned counters are populated, since the
// sink belongs to the pump goroutine.
func (l *Listener) RuntimeStats() gsql.RuntimeStats {
	var s gsql.RuntimeStats
	if l.pumpStopped.Load() {
		if rs, ok := l.cfg.Sink.(runtimeStatser); ok {
			s = rs.RuntimeStats()
		}
	}
	s.FramesAccepted = l.framesAccepted.Load()
	s.FramesQuarantined = l.deadTotal()
	s.DuplicatesDropped = l.duplicates.Load()
	s.Reconnects = l.reconnects.Load()
	s.HeartbeatsSynthesized = l.heartbeatsSynth.Load()
	s.TuplesRejected = l.tuplesRejected.Load()
	s.TuplesShed += l.tuplesShed.Load()
	s.BatchesShed += l.batchesShed.Load()
	if s.TuplesIn == 0 {
		s.TuplesIn = l.tuplesIn.Load()
	}
	return s
}

func (l *Listener) deadTotal() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deadN
}

// FrameGapSnapshot returns the decayed distribution of wall-clock gaps (in
// seconds) between applied data frames — recent silence dominates, old
// silence fades, per the paper's own decay model.
func (l *Listener) FrameGapSnapshot() metrics.Snapshot { return l.frameGaps.Snapshot() }

// observeGap feeds the inter-frame gap reservoir.
func (l *Listener) observeGap() {
	now := time.Now()
	l.gapMu.Lock()
	if !l.lastFrame.IsZero() {
		gap := now.Sub(l.lastFrame).Seconds()
		l.gapMu.Unlock()
		l.frameGaps.Update(gap)
		l.gapMu.Lock()
	}
	l.lastFrame = now
	l.gapMu.Unlock()
}

// acceptLoop admits connections until the net listener closes.
func (l *Listener) acceptLoop() {
	for {
		c, err := l.nl.Accept()
		if err != nil {
			return // Shutdown closed the listener
		}
		sc := &serverConn{c: c}
		l.mu.Lock()
		if l.closing {
			l.mu.Unlock()
			c.Close()
			return
		}
		l.conns[sc] = struct{}{}
		l.readers.Add(1)
		l.mu.Unlock()
		go l.serveConn(sc)
	}
}

// dropConn unregisters and closes a connection.
func (l *Listener) dropConn(sc *serverConn) {
	l.mu.Lock()
	delete(l.conns, sc)
	l.mu.Unlock()
	sc.c.Close()
}

// getSession finds or creates the session, counting re-attachments.
func (l *Listener) getSession(id uint64) *session {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.sessions[id]; ok {
		l.reconnects.Add(1)
		return s
	}
	s := &session{id: id}
	s.nextSeq.Store(1)
	l.sessions[id] = s
	return s
}

// Sessions snapshots the session table (session id → highest applied
// sequence number). Persist it next to the sink's checkpoint and hand it
// to the successor listener's Config.Sessions; it is stable once Shutdown
// has returned.
func (l *Listener) Sessions() map[uint64]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[uint64]uint64, len(l.sessions))
	for id, s := range l.sessions {
		out[id] = s.applied.Load()
	}
	return out
}

// serveConn reads frames off one connection until error, Bye, or
// shutdown. Any malformed frame is quarantined and the connection closed:
// framing past a corrupt frame cannot be trusted, and the client's resend
// protocol converts the close into a retry of everything unacknowledged.
func (l *Listener) serveConn(sc *serverConn) {
	defer l.readers.Done()
	defer l.dropConn(sc)
	remote := sc.c.RemoteAddr().String()
	fr := NewFrameReader(sc.c, l.cfg.MaxFrame)
	var sess *session
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			if fe, ok := err.(*FrameError); ok {
				l.quarantine(fe, remote)
			}
			return // EOF, I/O error, or malformed frame: drop the conn
		}
		switch f.Type {
		case FrameHello:
			sess = l.getSession(f.Session)
			sc.writeAck(sess.applied.Load())
		case FrameData:
			if sess == nil {
				l.quarantine(frameErrf(FrameNoSession, "seq %d from %s", f.Seq, remote), remote)
				recyclePackets(f.Packets)
				return
			}
			if !l.admitData(sc, sess, f, remote) {
				return
			}
		case FrameHeartbeat:
			l.enqueue(item{conn: sc, isHB: true, hb: f.TS})
		case FrameBye:
			return
		case FrameAck:
			// Acks are server→client only; a client echoing one is harmless.
		}
	}
}

// admitData runs the sequence-number admission for one data frame,
// reporting whether the connection may continue. The CAS admits each
// sequence exactly once even when a stale reader races a reconnected one.
func (l *Listener) admitData(sc *serverConn, sess *session, f Frame, remote string) bool {
	for {
		next := sess.nextSeq.Load()
		switch {
		case f.Seq < next:
			// Duplicate delivery (resend overlap or a duplicated wire
			// frame): drop it, but re-ack so the client can prune.
			l.duplicates.Add(1)
			sc.writeAck(sess.applied.Load())
			recyclePackets(f.Packets)
			return true
		case f.Seq > next:
			if next == 1 && sess.applied.Load() == 0 && sess.nextSeq.CompareAndSwap(1, f.Seq) {
				// A session this listener has never seen data for, resuming
				// above 1: a client outliving a server restarted without
				// restored state. Adopt its resend point — the pruned
				// frames are unrecoverable either way, and rejecting would
				// wedge the client in a reconnect loop.
				continue
			}
			// A gap means a frame vanished without the connection
			// dropping — the resend protocol can only repair it from the
			// last ack, so force the client around that path.
			l.quarantine(frameErrf(FrameBadSequence, "seq %d, expected %d", f.Seq, next), remote)
			recyclePackets(f.Packets)
			return false
		default:
			if !sess.nextSeq.CompareAndSwap(next, f.Seq+1) {
				continue // lost a race; re-evaluate
			}
			l.enqueue(item{conn: sc, sess: sess, seq: f.Seq, pkts: f.Packets, sorted: f.Sorted})
			return true
		}
	}
}

// enqueue applies the overload policy at the intake boundary.
func (l *Listener) enqueue(it item) {
	if l.cfg.Overload == gsql.OverloadDropNewest && !it.isHB {
		select {
		case l.queue <- it:
		default:
			// Shed: count it, and ack it so the client neither stalls nor
			// resends data the policy chose to drop.
			l.batchesShed.Add(1)
			l.tuplesShed.Add(uint64(len(it.pkts)))
			if it.sess != nil {
				advanceApplied(it.sess, it.seq)
				it.conn.writeAck(it.sess.applied.Load())
			}
			recyclePackets(it.pkts)
		}
		return
	}
	l.queue <- it
}

// advanceApplied raises sess.applied to seq (monotonically).
func advanceApplied(sess *session, seq uint64) {
	for {
		cur := sess.applied.Load()
		if seq <= cur || sess.applied.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// pump is the single consumer of the intake queue: it applies frames to
// the sink in arrival order, acknowledges them, synthesizes heartbeats on
// idle, and triggers periodic checkpoints. It exits when the queue is
// closed (Shutdown) after draining every queued frame.
func (l *Listener) pump() {
	defer close(l.pumped)
	defer l.pumpStopped.Store(true)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if l.cfg.HeartbeatInterval > 0 {
		ticker = time.NewTicker(l.cfg.HeartbeatInterval)
		tick = ticker.C
		defer ticker.Stop()
	}

	tup := make(gsql.Tuple, 8)
	// The columnar path engages when the sink takes batches and the config
	// does not force scalar pushes; one batch buffer is reused per frame.
	var batch *gsql.Batch
	bsink, _ := l.cfg.Sink.(BatchSink)
	if l.cfg.ScalarPush {
		bsink = nil
	}
	if bsink != nil {
		if b, err := gsql.NewBatch(gsql.PacketSchema("packets")); err == nil {
			batch = b
		} else {
			bsink = nil
		}
	}
	var lastTS float64 // latest stream time seen
	var lastTSSet bool
	lastActivity := time.Now()
	var sinceCkpt uint64
	var failed bool

	apply := func(it item) {
		if failed {
			// The sink is poisoned; keep draining so readers do not hang on
			// a stalled queue — but neither apply nor acknowledge. Acking a
			// frame the sink never saw prunes it from the client's resend
			// buffer, and a supervisor restarting this runtime from its last
			// checkpoint could then never recover the data. Left unacked, the
			// client's ack timeout forces a reconnect and the frames are
			// resent to the healthy successor.
			return
		}
		if it.isHB {
			if lastTSSet && it.hb <= lastTS {
				return
			}
			lastTS, lastTSSet = it.hb, true
			lastActivity = time.Now()
			if l.cfg.WAL != nil {
				if err := l.cfg.WAL.LogHeartbeat(gsql.Int(int64(it.hb))); err != nil {
					l.fail(err)
					failed = true
					return
				}
			}
			if err := l.cfg.Sink.Heartbeat(gsql.Int(int64(it.hb))); err != nil {
				l.fail(err)
				failed = true
			}
			return
		}
		l.observeGap()
		if l.cfg.WAL != nil {
			// Log-before-apply: once this frame is acked the client prunes
			// it, so the log entry (which carries session and sequence for
			// the successor's dedup table) must exist first. A crash between
			// log and ack merely leaves an unacked logged frame — the resend
			// is recognized as a duplicate after replay.
			if err := l.cfg.WAL.LogFrame(it.sess.id, it.seq, it.pkts); err != nil {
				l.fail(err)
				failed = true
				return
			}
		}
		if bsink != nil {
			// Columnar apply: the frame's packets become one batch, pushed in
			// a single call. Rejected rows are the batch-path spelling of the
			// scalar loop's skip-and-continue on *gsql.NonFiniteValueError.
			netgen.FillBatch(batch, it.pkts)
			batch.SetSorted(batch.Sorted() && it.sorted)
			l.tuplesIn.Add(uint64(len(it.pkts)))
			rej, err := bsink.PushBatch(batch)
			if rej > 0 {
				l.tuplesRejected.Add(uint64(rej))
			}
			if err != nil {
				l.fail(err)
				failed = true
			} else {
				sinceCkpt += uint64(len(it.pkts) - rej)
				for _, p := range it.pkts {
					if p.Time > lastTS || !lastTSSet {
						lastTS, lastTSSet = p.Time, true
					}
				}
			}
		} else {
			for _, p := range it.pkts {
				netgen.AppendTuple(tup, p)
				l.tuplesIn.Add(1)
				if err := l.cfg.Sink.Push(tup); err != nil {
					var nfe *gsql.NonFiniteValueError
					if gsqlAsNonFinite(err, &nfe) {
						// One poisoned tuple does not poison the frame.
						l.tuplesRejected.Add(1)
						continue
					}
					l.fail(err)
					failed = true
					break
				}
				sinceCkpt++
				if p.Time > lastTS || !lastTSSet {
					lastTS, lastTSSet = p.Time, true
				}
			}
		}
		lastActivity = time.Now()
		if failed {
			// The sink died partway through this frame. Do not ack it: the
			// last checkpoint predates it, so the client must keep it in the
			// resend buffer for whichever incarnation restores from that
			// checkpoint.
			return
		}
		l.framesAccepted.Add(1)
		advanceApplied(it.sess, it.seq)
		it.conn.writeAck(it.sess.applied.Load())
		if !failed && l.cfg.Checkpoint != nil && l.cfg.CheckpointEvery > 0 && sinceCkpt >= l.cfg.CheckpointEvery {
			sinceCkpt = 0
			if err := l.cfg.Checkpoint(); err != nil {
				l.fail(err)
				failed = true
			}
		}
	}

	for {
		select {
		case it, ok := <-l.queue:
			if !ok {
				return
			}
			apply(it)
			// The packets were copied into tuples (or intentionally
			// dropped); their buffer goes back to the decode pool.
			recyclePackets(it.pkts)
		case <-tick:
			if failed || !lastTSSet {
				continue
			}
			idle := time.Since(lastActivity)
			if idle < l.cfg.HeartbeatInterval {
				continue
			}
			// Advance stream time by the idle wall-clock span so the open
			// bucket closes even though no client is talking.
			ts := lastTS + idle.Seconds()
			l.heartbeatsSynth.Add(1)
			if l.cfg.WAL != nil {
				// Synthesized heartbeats mutate stream time exactly like
				// client ones, so they must be replayable too.
				if err := l.cfg.WAL.LogHeartbeat(gsql.Int(int64(ts))); err != nil {
					l.fail(err)
					failed = true
					continue
				}
			}
			if err := l.cfg.Sink.Heartbeat(gsql.Int(int64(ts))); err != nil {
				l.fail(err)
				failed = true
			}
		}
	}
}

// gsqlAsNonFinite reports whether err is a *gsql.NonFiniteValueError,
// filling target — a tiny errors.As specialization kept explicit for the
// hot path.
func gsqlAsNonFinite(err error, target **gsql.NonFiniteValueError) bool {
	if e, ok := err.(*gsql.NonFiniteValueError); ok {
		*target = e
		return true
	}
	return false
}

// Shutdown drains the listener to a quiescent sink: it stops accepting,
// closes every live connection, waits for the readers to finish flushing
// decoded frames into the queue, then waits for the pump to apply (and
// acknowledge) everything queued. After Shutdown returns nil the sink is
// exclusively the caller's: safe to checkpoint, close, or discard. The
// timeout bounds the whole drain; on expiry the listener is torn down
// anyway and an error returned (frames still queued are lost to this
// process — a reconnecting client will resend them to its successor).
func (l *Listener) Shutdown(timeout time.Duration) error {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		<-l.pumped
		return l.Err()
	}
	l.closing = true
	conns := make([]*serverConn, 0, len(l.conns))
	for sc := range l.conns {
		conns = append(conns, sc)
	}
	l.mu.Unlock()

	l.nl.Close()
	// Closing the conns makes every reader's next ReadFrame fail; readers
	// blocked enqueuing finish their send first (the pump keeps draining).
	for _, sc := range conns {
		sc.c.Close()
	}

	done := make(chan struct{})
	go func() {
		l.readers.Wait()
		close(l.queue) // the pump drains buffered items, then exits
		close(done)
	}()

	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case <-done:
	case <-deadline:
		return fmt.Errorf("ingest: drain timed out after %v with readers still active", timeout)
	}
	select {
	case <-l.pumped:
	case <-deadline:
		return fmt.Errorf("ingest: drain timed out after %v with frames still queued", timeout)
	}
	return l.Err()
}
