package ingest_test

import (
	"bytes"
	"errors"
	"testing"

	"forwarddecay/ingest"
)

// TestSealedRoundtrip: the exported length+checksum envelope (which the
// distrib write-ahead log rides) round-trips arbitrary bodies, streams
// back-to-back records, and reports exactly how many bytes it consumed.
func TestSealedRoundtrip(t *testing.T) {
	bodies := [][]byte{
		{},
		{0x01},
		bytes.Repeat([]byte{0xab}, 300),
	}
	var stream []byte
	for _, b := range bodies {
		stream = ingest.AppendSealed(stream, b)
	}
	off := 0
	for i, want := range bodies {
		body, n, err := ingest.DecodeSealed(stream[off:], 0)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("record %d: body %x, want %x", i, body, want)
		}
		off += n
	}
	if off != len(stream) {
		t.Fatalf("consumed %d of %d stream bytes", off, len(stream))
	}
}

// TestSealedErrors: truncation reads as ErrIncomplete (retryable), a flipped
// byte as a typed checksum failure, and an oversized claim as too-large —
// before any allocation the length prefix could trigger.
func TestSealedErrors(t *testing.T) {
	rec := ingest.AppendSealed(nil, []byte("payload"))

	for cut := 1; cut < len(rec); cut++ {
		if _, _, err := ingest.DecodeSealed(rec[:len(rec)-cut], 0); !errors.Is(err, ingest.ErrIncomplete) {
			t.Fatalf("truncated by %d: %v, want ErrIncomplete", cut, err)
		}
	}

	bent := append([]byte(nil), rec...)
	bent[len(bent)-1] ^= 0x10
	var fe *ingest.FrameError
	if _, _, err := ingest.DecodeSealed(bent, 0); !errors.As(err, &fe) || fe.Kind != ingest.FrameBadChecksum {
		t.Fatalf("bent body: %v, want bad-checksum FrameError", err)
	}

	if _, _, err := ingest.DecodeSealed(rec, 3); !errors.As(err, &fe) || fe.Kind != ingest.FrameTooLarge {
		t.Fatalf("tiny limit: %v, want too-large FrameError", err)
	}
}
