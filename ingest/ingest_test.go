package ingest_test

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/netgen"
)

// testQuery exercises grouped integer and float aggregation over 10-second
// buckets — enough state that any lost, duplicated, or reordered frame
// shows up in the rows.
const testQuery = `select tb, dstIP, count(*), sum(len), avg(float(len))
	from TCP group by time/10 as tb, dstIP`

// prepare returns a statement over the packet schema.
func prepare(t *testing.T) *gsql.Statement {
	t.Helper()
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// genPackets synthesizes a deterministic trace.
func genPackets(n int, seed uint64) []netgen.Packet {
	cfg := netgen.DefaultConfig(5000, seed)
	cfg.Hosts = 50
	g := netgen.New(cfg)
	return g.Take(make([]netgen.Packet, 0, n), n)
}

// rowCollector is a sink capturing emitted rows; safe for use from the
// listener pump while the test goroutine inspects progress.
type rowCollector struct {
	mu   sync.Mutex
	rows []gsql.Tuple
}

func (rc *rowCollector) sink(row gsql.Tuple) error {
	rc.mu.Lock()
	rc.rows = append(rc.rows, append(gsql.Tuple(nil), row...))
	rc.mu.Unlock()
	return nil
}

func (rc *rowCollector) snapshot() []gsql.Tuple {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]gsql.Tuple(nil), rc.rows...)
}

// inProcessRows is the reference: the same packets pushed straight into a
// serial run, no network.
func inProcessRows(t *testing.T, pkts []netgen.Packet) []gsql.Tuple {
	t.Helper()
	st := prepare(t)
	var rc rowCollector
	run := st.Start(rc.sink, gsql.Options{})
	for _, p := range pkts {
		if err := run.Push(netgen.Tuple(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	return rc.snapshot()
}

// requireIdentical asserts two result sets match bit-for-bit.
func requireIdentical(t *testing.T, want, got []gsql.Tuple, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: want %d rows, got %d", label, len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s row %d: width %d vs %d", label, i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("%s row %d col %d: want %v, got %v", label, i, j, want[i][j], got[i][j])
			}
		}
	}
}

// streamAll sends every packet through the dialer in small batches and
// closes it (which waits for every ack).
func streamAll(t *testing.T, d *ingest.Dialer, pkts []netgen.Packet) {
	t.Helper()
	for _, p := range pkts {
		if err := d.Send(p); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestWireRoundTrip(t *testing.T) {
	pkts := genPackets(7, 3)
	frames := [][]byte{
		ingest.AppendHello(nil, 0xfeedbeef),
		ingest.AppendData(nil, 1, pkts),
		ingest.AppendHeartbeat(nil, 123.5),
		ingest.AppendAck(nil, 42),
		ingest.AppendBye(nil),
	}
	var stream []byte
	for _, f := range frames {
		stream = append(stream, f...)
	}
	// DecodeFrame walks the concatenation, and AppendFrame re-encodes each
	// frame to the exact original bytes.
	off := 0
	for i, enc := range frames {
		f, n, err := ingest.DecodeFrame(stream[off:], 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("frame %d: consumed %d bytes, want %d", i, n, len(enc))
		}
		if re := ingest.AppendFrame(nil, f); !bytes.Equal(re, enc) {
			t.Fatalf("frame %d: re-encoding differs", i)
		}
		off += n
	}
	if _, _, err := ingest.DecodeFrame(stream[:5], 0); err != ingest.ErrIncomplete {
		t.Fatalf("partial header: got %v, want ErrIncomplete", err)
	}
	// Corrupting any body byte must surface as a checksum failure.
	bad := append([]byte(nil), frames[1]...)
	bad[14] ^= 0x01
	if _, _, err := ingest.DecodeFrame(bad, 0); err == nil {
		t.Fatal("corrupted frame decoded successfully")
	} else if fe, ok := err.(*ingest.FrameError); !ok || fe.Kind != ingest.FrameBadChecksum {
		t.Fatalf("corrupted frame: got %v, want FrameBadChecksum", err)
	}
}

// TestListenerStreamsBitIdentical is the baseline exactness contract: a
// trace streamed over a socket produces rows bit-identical to the same
// trace pushed in-process.
func TestListenerStreamsBitIdentical(t *testing.T) {
	for _, network := range []string{"tcp", "unix"} {
		t.Run(network, func(t *testing.T) {
			pkts := genPackets(5000, 11)
			want := inProcessRows(t, pkts)

			st := prepare(t)
			var rc rowCollector
			run := st.Start(rc.sink, gsql.Options{})
			address := "127.0.0.1:0"
			if network == "unix" {
				address = filepath.Join(t.TempDir(), "ingest.sock")
			}
			l, err := ingest.Listen(network, address, ingest.Config{Sink: run})
			if err != nil {
				t.Fatal(err)
			}
			d := ingest.Dial(network, l.Addr().String(), ingest.DialerConfig{
				BatchSize: 64, Session: 7, Logf: t.Logf,
			})
			streamAll(t, d, pkts)
			if err := l.Shutdown(10 * time.Second); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			if err := run.Close(); err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, rc.snapshot(), network)

			rs := l.RuntimeStats()
			if rs.FramesAccepted == 0 || rs.TuplesIn != uint64(len(pkts)) {
				t.Fatalf("stats: %d frames accepted, %d tuples in (want %d)", rs.FramesAccepted, rs.TuplesIn, len(pkts))
			}
			if rs.FramesQuarantined != 0 || rs.DuplicatesDropped != 0 {
				t.Fatalf("clean stream quarantined %d / duplicated %d frames", rs.FramesQuarantined, rs.DuplicatesDropped)
			}
		})
	}
}

// TestHeartbeatSynthesisClosesWindows: a stream that goes silent mid-bucket
// still emits its rows, because the listener advances stream time by the
// idle wall-clock span.
func TestHeartbeatSynthesisClosesWindows(t *testing.T) {
	// One-second buckets keep the wall-clock idle wait short: the packets
	// span ~0.4 stream seconds, so one synthesized heartbeat ~0.6s into the
	// silence closes the first bucket.
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`select tb, count(*), sum(len) from TCP group by time/1 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	var rc rowCollector
	run := st.Start(rc.sink, gsql.Options{})
	l, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{
		Sink:              run,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Shutdown(time.Second)

	// Without heartbeats the open bucket would stall forever once the
	// client goes quiet.
	pkts := genPackets(2000, 5)
	d := ingest.Dial("tcp", l.Addr().String(), ingest.DialerConfig{Session: 9})
	for _, p := range pkts {
		if err := d.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// The connection stays open and silent: only synthesized heartbeats can
	// advance stream time the ~8 remaining bucket seconds (wall-clock).
	deadline := time.Now().Add(15 * time.Second)
	for len(rc.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no rows after %v of idle; heartbeats not synthesized", 15*time.Second)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if hb := l.RuntimeStats().HeartbeatsSynthesized; hb == 0 {
		t.Fatal("rows emitted but HeartbeatsSynthesized is 0")
	}
	d.Close()
}

// slowSink delays every push, letting the intake queue fill.
type slowSink struct {
	run   *gsql.Run
	delay time.Duration
}

func (s *slowSink) Push(t gsql.Tuple) error {
	time.Sleep(s.delay)
	return s.run.Push(t)
}
func (s *slowSink) Heartbeat(ts gsql.Value) error { return s.run.Heartbeat(ts) }

// TestOverloadDropNewestSheds: with a saturated intake queue and the drop
// policy, frames are shed (and acknowledged!) instead of stalling the
// client, and the listener still drains cleanly.
func TestOverloadDropNewestSheds(t *testing.T) {
	st := prepare(t)
	var rc rowCollector
	run := st.Start(rc.sink, gsql.Options{})
	l, err := ingest.Listen("tcp", "127.0.0.1:0", ingest.Config{
		Sink:     &slowSink{run: run, delay: 2 * time.Millisecond},
		Queue:    1,
		Overload: gsql.OverloadDropNewest,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts := genPackets(4000, 21)
	d := ingest.Dial("tcp", l.Addr().String(), ingest.DialerConfig{
		BatchSize: 16, Session: 13, Window: 64,
	})
	streamAll(t, d, pkts) // Close returns: shed frames were acked too
	if err := l.Shutdown(time.Minute); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rs := l.RuntimeStats()
	if rs.BatchesShed == 0 {
		t.Fatal("expected shed batches under OverloadDropNewest with a slow sink")
	}
	if rs.TuplesIn+rs.TuplesShed != uint64(len(pkts)) {
		t.Fatalf("accounting: %d applied + %d shed != %d sent", rs.TuplesIn, rs.TuplesShed, len(pkts))
	}
}

// TestDialerGivesUpAfterMaxDials: a dead endpoint exhausts the dial budget
// with a typed failure instead of blocking forever.
func TestDialerGivesUpAfterMaxDials(t *testing.T) {
	d := ingest.Dial("tcp", "127.0.0.1:1", ingest.DialerConfig{
		MaxDials:   3,
		MinBackoff: time.Millisecond,
		MaxBackoff: 2 * time.Millisecond,
		Session:    5,
	})
	if err := d.Send(genPackets(1, 1)[0]); err != nil {
		t.Fatalf("buffering a packet should not dial: %v", err)
	}
	if err := d.Flush(); err == nil {
		t.Fatal("flush to a dead endpoint succeeded")
	}
	if st := d.Stats(); st.Dials != 3 {
		t.Fatalf("made %d dial attempts, want 3", st.Dials)
	}
}

func TestSplitAddr(t *testing.T) {
	cases := []struct{ in, network, address string }{
		{"unix:/tmp/x.sock", "unix", "/tmp/x.sock"},
		{"tcp:localhost:99", "tcp", "localhost:99"},
		{"localhost:99", "tcp", "localhost:99"},
		{":9999", "tcp", ":9999"},
	}
	for _, c := range cases {
		n, a := ingest.SplitAddr(c.in)
		if n != c.network || a != c.address {
			t.Fatalf("SplitAddr(%q) = %q,%q want %q,%q", c.in, n, a, c.network, c.address)
		}
	}
}
