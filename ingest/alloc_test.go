package ingest_test

import (
	"testing"

	"forwarddecay/ingest"
)

// TestDecodeRecycleSteadyStateAllocs pins the decode-pool property: a
// decode → consume → RecycleFrame cycle must not allocate once the pool is
// warm — the packet slice and its pool box circulate instead of churning.
func TestDecodeRecycleSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	wire := ingest.AppendData(nil, 1, genPackets(128, 9))
	// Warm the pool.
	for i := 0; i < 4; i++ {
		f, _, err := ingest.DecodeFrame(wire, 0)
		if err != nil {
			t.Fatal(err)
		}
		ingest.RecycleFrame(f)
	}
	avg := testing.AllocsPerRun(2000, func() {
		f, _, err := ingest.DecodeFrame(wire, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Packets) != 128 {
			t.Fatalf("decoded %d packets, want 128", len(f.Packets))
		}
		ingest.RecycleFrame(f)
	})
	if avg != 0 {
		t.Errorf("decode+recycle cycle allocates %.2f objects/op, want 0", avg)
	}
}
