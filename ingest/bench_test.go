package ingest_test

import (
	"bytes"
	"io"
	"testing"

	"forwarddecay/ingest"
	"forwarddecay/netgen"
)

// BenchmarkFrameDecode measures the per-frame decode path a sustained
// -listen run exercises: header read, checksum, payload parse, packet-slice
// materialization. The ci.sh gate watches its allocs/op — the packet
// buffers come from a pool, so steady-state decoding must not churn
// per-frame slices.
func BenchmarkFrameDecode(b *testing.B) {
	pkts := genPackets(256, 3)
	var wire []byte
	const frames = 16
	for i := 0; i < frames; i++ {
		wire = ingest.AppendData(wire, uint64(i+1), pkts)
	}
	r := bytes.NewReader(wire)
	fr := ingest.NewFrameReader(r, 0)
	b.ReportAllocs()
	b.SetBytes(int64(len(wire) / frames))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			r.Reset(wire)
			fr = ingest.NewFrameReader(r, 0)
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		ingest.RecycleFrame(f)
	}
}

// BenchmarkFrameDecodeBuffer measures the buffer-based DecodeFrame used by
// trace tooling.
func BenchmarkFrameDecodeBuffer(b *testing.B) {
	pkts := genPackets(256, 5)
	wire := ingest.AppendData(nil, 1, pkts)
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _, err := ingest.DecodeFrame(wire, 0)
		if err != nil {
			b.Fatal(err)
		}
		ingest.RecycleFrame(f)
	}
}

var _ = netgen.Packet{}
