package agg_test

import (
	"fmt"

	"forwarddecay/agg"
	"forwarddecay/decay"
)

// The paper's Example 2: decayed count, sum and average over the Example 1
// stream in constant space.
func ExampleSum() {
	fd := decay.NewForward(decay.NewPoly(2), 100)
	s := agg.NewSum(fd)
	for _, it := range []struct{ ti, v float64 }{
		{105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4},
	} {
		s.Observe(it.ti, it.v)
	}
	fmt.Printf("C=%.2f S=%.2f A=%.2f\n", s.Count(110), s.Value(110), s.Mean())
	// Output: C=1.63 S=9.67 A=5.93
}

// The paper's Example 3: φ=0.2 decayed heavy hitters.
func ExampleHeavyHitters() {
	fd := decay.NewForward(decay.NewPoly(2), 100)
	hh := agg.NewHeavyHittersK(fd, 16)
	for _, it := range []struct {
		v  uint64
		ti float64
	}{
		{4, 105}, {8, 107}, {3, 103}, {6, 108}, {4, 104},
	} {
		hh.Observe(it.v, it.ti)
	}
	for _, item := range hh.Query(110, 0.2) {
		fmt.Printf("%d:%.2f ", item.Key, item.Count)
	}
	fmt.Println()
	// Output: 6:0.64 8:0.49 4:0.41
}

// Decayed quantiles are independent of the query time: the normalizer
// cancels between rank and threshold.
func ExampleQuantiles() {
	fd := decay.NewForward(decay.NewPoly(1), 0)
	q := agg.NewQuantiles(fd, 1024, 0.01)
	for i := uint64(0); i < 1000; i++ {
		q.Observe(i, float64(i+1)) // later (heavier) items have larger values
	}
	fmt.Println(q.Quantile(0.5) > 500) // decayed median skews late
	// Output: true
}

// Distributed operation (§VI-B): per-site aggregates merge exactly.
func ExampleCounter_Merge() {
	fd := decay.NewForward(decay.NewExp(0.1), 0)
	site1 := agg.NewCounter(fd)
	site2 := agg.NewCounter(fd)
	site1.Observe(10)
	site2.Observe(20)
	if err := site1.Merge(site2); err != nil {
		fmt.Println(err)
	}
	single := agg.NewCounter(fd)
	single.Observe(10)
	single.Observe(20)
	fmt.Println(site1.Value(30) == single.Value(30))
	// Output: true
}
