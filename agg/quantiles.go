package agg

import (
	"math"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
	"forwarddecay/sketch"
)

// Quantiles answers φ-quantile queries under forward decay (Definition 8,
// Theorem 3 of the paper): the φ-quantile is the smallest value v whose
// decayed rank r_v = Σ_{vᵢ≤v} g(tᵢ−L)/g(t−L) reaches φ·C. Like heavy
// hitters, the problem factors into a weighted quantile problem over the
// static weights, which a weighted q-digest answers in O((1/ε)·log U)
// counters.
//
// Because the normalizer g(t−L) cancels between the rank and the threshold
// φ·C, quantile queries do not depend on the query time at all — only rank
// queries need a time to scale by. Quantiles is not safe for concurrent use.
type Quantiles struct {
	inputGuard
	model    decay.Forward
	qd       *sketch.QDigest
	logScale float64
	started  bool
}

// NewQuantiles returns a quantile summary over the integer value domain
// [0, u) with additive rank error ε·C. It panics unless u ≥ 2 and
// 0 < epsilon < 1.
func NewQuantiles(m decay.Forward, u uint64, epsilon float64) *Quantiles {
	return &Quantiles{model: m, qd: sketch.NewQDigest(u, epsilon)}
}

// Model returns the decay model.
func (q *Quantiles) Model() decay.Forward { return q.model }

// Observe records an item with value v and timestamp ti. Non-finite
// timestamps are rejected (see Err) rather than folded into the digest.
func (q *Quantiles) Observe(v uint64, ti float64) {
	if !IsFinite(ti) {
		q.reject("Quantiles", "timestamp", ti)
		return
	}
	lw := q.model.LogStaticWeight(ti)
	if math.IsInf(lw, -1) {
		// Zero static weight contributes nothing; skip it so the first
		// observation cannot pin logScale at -Inf and poison rescaling.
		return
	}
	if !q.started {
		q.logScale = lw
		q.started = true
	}
	rel := lw - q.logScale
	if rel > core.MaxSafeExp {
		mustScale(q.qd.Scale(posFactor(core.ExpClamped(-rel))))
		q.logScale = lw
		rel = 0
	}
	q.qd.Update(v, core.ExpClamped(rel))
}

// Quantile returns the estimated φ-quantile. The result's true decayed rank
// is within ε·C of φ·C. It is independent of the query time.
func (q *Quantiles) Quantile(phi float64) uint64 { return q.qd.Quantile(phi) }

// Rank returns the estimated decayed rank of value v at query time t.
func (q *Quantiles) Rank(v uint64, t float64) float64 {
	return q.qd.Rank(v) * core.ExpClamped(q.logScale-q.model.LogNormalizer(t))
}

// DecayedCount returns the total decayed count C at query time t.
func (q *Quantiles) DecayedCount(t float64) float64 {
	return q.qd.Total() * core.ExpClamped(q.logScale-q.model.LogNormalizer(t))
}

// Merge folds another summary over the same decay model and domain into
// this one; rank errors add.
func (q *Quantiles) Merge(o *Quantiles) error {
	if !sameModel(q.model, o.model) {
		return errModelMismatch(q.model, o.model)
	}
	if !o.started {
		return nil
	}
	if !q.started {
		q.logScale = o.logScale
		q.started = true
	}
	if o.logScale > q.logScale {
		mustScale(q.qd.Scale(posFactor(core.ExpClamped(q.logScale - o.logScale))))
		q.logScale = o.logScale
	}
	if o.logScale < q.logScale {
		// Scale a copy of the other digest onto our scale (its weights
		// shrink, never overflow).
		cp := o.qd.Clone()
		mustScale(cp.Scale(posFactor(core.ExpClamped(o.logScale - q.logScale))))
		q.qd.Merge(cp)
		return nil
	}
	q.qd.Merge(o.qd)
	return nil
}

// SizeBytes reports the summary's steady-state memory footprint (the
// digest is compressed first).
func (q *Quantiles) SizeBytes() int {
	q.qd.Compress()
	return 24 + q.qd.SizeBytes()
}
