package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// qconf returns a reproducible quick configuration.
func qconf(seed int64, n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(seed))}
}

// pickModel maps an arbitrary byte to one of the forward decay models used
// in the property tests.
func pickModel(which uint8) decay.Forward {
	models := []decay.Forward{
		decay.NewForward(decay.None{}, 0),
		decay.NewForward(decay.NewPoly(1), 0),
		decay.NewForward(decay.NewPoly(2), 0),
		decay.NewForward(decay.NewPoly(0.5), 0),
		decay.NewForward(decay.NewExp(0.01), 0),
		decay.NewForward(decay.NewExp(0.3), 0),
		decay.NewForward(decay.LandmarkWindow{}, 0),
	}
	return models[int(which)%len(models)]
}

// genStream derives a reproducible random stream from a seed.
func genQuickStream(seed uint64, n int) (ts, vs []float64) {
	rng := core.NewRNG(seed)
	ts = make([]float64, n)
	vs = make([]float64, n)
	for i := range ts {
		ts[i] = 1 + 999*rng.Float64()
		vs[i] = -10 + 20*rng.Float64()
	}
	return
}

// TestQuickSumMatchesBruteForce property-tests Definition 5 across models
// and random streams.
func TestQuickSumMatchesBruteForce(t *testing.T) {
	f := func(which uint8, seed uint64) bool {
		m := pickModel(which)
		ts, vs := genQuickStream(seed, 300)
		s := NewSum(m)
		for i := range ts {
			s.Observe(ts[i], vs[i])
		}
		const tq = 1000
		var wantC, wantS float64
		for i := range ts {
			w := m.Weight(ts[i], tq)
			wantC += w
			wantS += w * vs[i]
		}
		return almostEq(s.Count(tq), wantC, 1e-8) && almostEq(s.Value(tq), wantS, 1e-8)
	}
	if err := quick.Check(f, qconf(11, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeCommutesAndAssociates checks that splitting a stream into
// arbitrary parts and merging in arbitrary order reproduces the
// single-stream aggregate.
func TestQuickMergeCommutesAndAssociates(t *testing.T) {
	f := func(which uint8, seed uint64, splitRaw uint8) bool {
		m := pickModel(which)
		ts, vs := genQuickStream(seed, 200)
		parts := 2 + int(splitRaw)%3
		whole := NewSum(m)
		sums := make([]*Sum, parts)
		for i := range sums {
			sums[i] = NewSum(m)
		}
		for i := range ts {
			whole.Observe(ts[i], vs[i])
			sums[i%parts].Observe(ts[i], vs[i])
		}
		// Merge right-to-left (different association than left-to-right).
		acc := NewSum(m)
		for i := parts - 1; i >= 0; i-- {
			if err := acc.Merge(sums[i]); err != nil {
				return false
			}
		}
		const tq = 1000
		return almostEq(acc.Value(tq), whole.Value(tq), 1e-8) &&
			almostEq(acc.Count(tq), whole.Count(tq), 1e-8)
	}
	if err := quick.Check(f, qconf(12, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickOrderInsensitive permutes the stream and compares all aggregate
// outputs.
func TestQuickOrderInsensitive(t *testing.T) {
	f := func(which uint8, seed uint64) bool {
		m := pickModel(which)
		ts, vs := genQuickStream(seed, 200)
		a, b := NewSum(m), NewSum(m)
		mxA, mxB := NewMax(m), NewMax(m)
		for i := range ts {
			a.Observe(ts[i], vs[i])
			mxA.Observe(ts[i], vs[i])
		}
		perm := core.NewRNG(seed ^ 0xdead).Perm(len(ts))
		for _, i := range perm {
			b.Observe(ts[i], vs[i])
			mxB.Observe(ts[i], vs[i])
		}
		const tq = 1000
		if !almostEq(a.Value(tq), b.Value(tq), 1e-8) {
			return false
		}
		va, vb := mxA.Value(tq), mxB.Value(tq)
		return almostEq(va, vb, 1e-8) || math.IsNaN(va) && math.IsNaN(vb)
	}
	if err := quick.Check(f, qconf(13, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickCountMonotoneInTime checks that a decayed count never increases
// as the query time advances (each item's weight is non-increasing).
func TestQuickCountMonotoneInTime(t *testing.T) {
	f := func(which uint8, seed uint64, dRaw float64) bool {
		m := pickModel(which)
		ts, _ := genQuickStream(seed, 100)
		c := NewCounter(m)
		for _, ti := range ts {
			c.Observe(ti)
		}
		t1 := 1000.0
		d := math.Abs(dRaw)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			d = 1
		}
		t2 := t1 + math.Mod(d, 1e6)
		return c.Value(t2) <= c.Value(t1)+1e-9
	}
	if err := quick.Check(f, qconf(14, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickMeanWithinRange: the decayed mean of values lies within the
// value range (it is a convex combination).
func TestQuickMeanWithinRange(t *testing.T) {
	f := func(which uint8, seed uint64) bool {
		m := pickModel(which)
		ts, vs := genQuickStream(seed, 150)
		s := NewSum(m)
		lo, hi := math.Inf(1), math.Inf(-1)
		any := false
		for i := range ts {
			s.Observe(ts[i], vs[i])
			if m.StaticWeight(ts[i]) > 0 {
				any = true
				lo = math.Min(lo, vs[i])
				hi = math.Max(hi, vs[i])
			}
		}
		mean := s.Mean()
		if !any {
			return math.IsNaN(mean) || mean == 0
		}
		return mean >= lo-1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(f, qconf(15, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickVarianceNonNegative: decayed variance is never negative.
func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(which uint8, seed uint64) bool {
		m := pickModel(which)
		ts, vs := genQuickStream(seed, 150)
		s := NewSum(m)
		for i := range ts {
			s.Observe(ts[i], vs[i])
		}
		v := s.Variance()
		return math.IsNaN(v) || v >= 0
	}
	if err := quick.Check(f, qconf(16, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickShiftLandmarkInvariant: for exponential decay, shifting the
// landmark never changes queried values.
func TestQuickShiftLandmarkInvariant(t *testing.T) {
	f := func(seed uint64, alphaRaw, newLRaw float64) bool {
		alpha := 0.01 + math.Mod(math.Abs(alphaRaw), 0.5)
		if math.IsNaN(alpha) {
			alpha = 0.1
		}
		m := decay.NewForward(decay.Exp{Alpha: alpha}, 0)
		ts, vs := genQuickStream(seed, 100)
		s := NewSum(m)
		for i := range ts {
			s.Observe(ts[i], vs[i])
		}
		before := s.Value(1000)
		newL := math.Mod(math.Abs(newLRaw), 2000)
		if math.IsNaN(newL) {
			newL = 500
		}
		if err := s.ShiftLandmark(newL); err != nil {
			return false
		}
		return almostEq(s.Value(1000), before, 1e-7)
	}
	if err := quick.Check(f, qconf(17, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickHeavyHittersTotalConserved: the decayed count reported by the
// heavy-hitters summary equals the counter's decayed count (total weight is
// conserved through SpaceSaving).
func TestQuickHeavyHittersTotalConserved(t *testing.T) {
	f := func(which uint8, seed uint64) bool {
		m := pickModel(which)
		ts, _ := genQuickStream(seed, 200)
		rng := core.NewRNG(seed)
		h := NewHeavyHittersK(m, 10)
		c := NewCounter(m)
		for _, ti := range ts {
			h.Observe(uint64(rng.Intn(50)), ti)
			c.Observe(ti)
		}
		const tq = 1000
		return almostEq(h.DecayedCount(tq), c.Value(tq), 1e-7)
	}
	if err := quick.Check(f, qconf(18, 200)); err != nil {
		t.Error(err)
	}
}
