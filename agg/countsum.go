package agg

import (
	"math"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// Counter maintains the decayed count C = Σᵢ g(tᵢ−L)/g(t−L) of Definition 5
// in constant space: one scaled sum plus the decay model. Arrival order is
// irrelevant, and counters over the same model merge exactly.
type Counter struct {
	inputGuard
	model decay.Forward
	c     core.ScaledSum
	n     uint64        // raw (undecayed) number of observations
	memo  logWeightMemo // derived; invalidated on shift/restore, never serialized
}

// NewCounter returns a decayed counter under the given forward decay model.
func NewCounter(m decay.Forward) *Counter {
	return &Counter{model: m}
}

// Model returns the counter's decay model.
func (c *Counter) Model() decay.Forward { return c.model }

// Observe records one item with timestamp ti.
func (c *Counter) Observe(ti float64) { c.ObserveN(ti, 1) }

// ObserveN records n simultaneous items with timestamp ti (n may be
// fractional; non-positive n is ignored).
func (c *Counter) ObserveN(ti, n float64) {
	if !IsFinite(ti) {
		c.reject("Counter", "timestamp", ti)
		return
	}
	if !IsFinite(n) {
		c.reject("Counter", "value", n)
		return
	}
	if n <= 0 {
		return
	}
	c.c.Add(c.model.LogStaticWeight(ti), n)
	c.n++
}

// ObserveRun records k items sharing the timestamp ti, bit-for-bit
// equivalent to k successive Observe(ti) calls: the accumulation stays
// sequential (see core.ScaledSum.AddN), but the decay weight and its
// exponential are computed once for the whole run. Batch executors that
// detect equal-timestamp runs use this to amortize the per-update cost.
// Only the batch entry points consult the weight memo — on the scalar path
// timestamps rarely repeat, so the memo's compare-and-store would be pure
// overhead (it measurably regressed Observe when tried).
func (c *Counter) ObserveRun(ti float64, k int) {
	if k <= 0 {
		return
	}
	if !IsFinite(ti) {
		c.reject("Counter", "timestamp", ti)
		return
	}
	c.c.AddN(c.memo.weight(c.model, ti), 1, k)
	c.n += uint64(k)
}

// Value returns the decayed count evaluated at query time t. Queries should
// use t at least as large as the largest observed timestamp.
func (c *Counter) Value(t float64) float64 {
	return c.c.Value(c.model.LogNormalizer(t))
}

// N returns the raw number of Observe calls (undecayed), for diagnostics.
func (c *Counter) N() uint64 { return c.n }

// Merge folds another counter over the same decay model into this one.
func (c *Counter) Merge(o *Counter) error {
	if !sameModel(c.model, o.model) {
		return errModelMismatch(c.model, o.model)
	}
	c.c.Merge(&o.c)
	c.n += o.n
	return nil
}

// ShiftLandmark rebases the counter onto a new landmark, which is possible
// exactly when the decay function supports landmark shifting (exponential
// decay; see decay.LandmarkShifter). Counts queried after the shift are
// identical to before: only the internal representation changes.
func (c *Counter) ShiftLandmark(newL float64) error {
	m, logShift, ok := c.model.Shifted(newL)
	if !ok {
		return errNotShiftable(c.model)
	}
	c.model = m
	c.c.Shift(logShift)
	c.memo.invalidate()
	return nil
}

func errNotShiftable(m decay.Forward) error {
	return &decay.NotShiftableError{Func: m.Func.String()}
}

// NotShiftableError is the typed error every ShiftLandmark method returns
// when the decay function lacks the shift property (anything but exponential
// decay). It aliases the decay package's exported type so errors.As matches
// at either level.
type NotShiftableError = decay.NotShiftableError

// Sum maintains the decayed sum S = Σᵢ g(tᵢ−L)·vᵢ/g(t−L) and the decayed
// sum of squares, from which the decayed count, sum, average and variance
// of Definition 5 (and the remark following it) are all available. Per
// Theorem 1 it uses constant space for any forward decay function.
type Sum struct {
	inputGuard
	model decay.Forward
	c     core.ScaledSum // Σ g·1
	s     core.ScaledSum // Σ g·v
	s2    core.ScaledSum // Σ g·v²
	n     uint64
	memo  logWeightMemo // derived; invalidated on shift/restore, never serialized
}

// NewSum returns a decayed sum aggregate under the given model.
func NewSum(m decay.Forward) *Sum {
	return &Sum{model: m}
}

// Model returns the aggregate's decay model.
func (s *Sum) Model() decay.Forward { return s.model }

// Observe records an item with timestamp ti and value v. Non-finite inputs
// are rejected (see Err) rather than folded into the decayed state.
func (s *Sum) Observe(ti, v float64) {
	if !IsFinite(ti) {
		s.reject("Sum", "timestamp", ti)
		return
	}
	if !IsFinite(v) {
		s.reject("Sum", "value", v)
		return
	}
	lw := s.model.LogStaticWeight(ti)
	s.c.Add(lw, 1)
	s.s.Add(lw, v)
	s.s2.Add(lw, v*v)
	s.n++
}

// ObserveMemo is Observe through the per-batch weight memo: bit-identical
// results, with the log weight computed once per distinct timestamp across
// consecutive calls. Batch executors stepping rows with shared timestamps
// use it; the scalar path stays memo-free (see Counter.ObserveRun).
func (s *Sum) ObserveMemo(ti, v float64) {
	if !IsFinite(ti) {
		s.reject("Sum", "timestamp", ti)
		return
	}
	if !IsFinite(v) {
		s.reject("Sum", "value", v)
		return
	}
	lw := s.memo.weight(s.model, ti)
	s.c.Add(lw, 1)
	s.s.Add(lw, v)
	s.s2.Add(lw, v*v)
	s.n++
}

// Count returns the decayed count at query time t.
func (s *Sum) Count(t float64) float64 { return s.c.Value(s.model.LogNormalizer(t)) }

// Value returns the decayed sum at query time t.
func (s *Sum) Value(t float64) float64 { return s.s.Value(s.model.LogNormalizer(t)) }

// Mean returns the decayed average A = S/C. As observed in the paper, the
// average does not depend on the query time: the normalizers cancel.
// It returns NaN for an empty aggregate.
func (s *Sum) Mean() float64 {
	cs, cl := s.c.Raw()
	ss, sl := s.s.Raw()
	if cs == 0 {
		return math.NaN()
	}
	// (ss·e^sl) / (cs·e^cl), computed stably.
	return ss / cs * expDiff(sl, cl)
}

// Variance returns the decayed variance V = Σg·v²/C − A² (weights
// interpreted as probabilities). Like the mean it is independent of the
// query time. It returns NaN for an empty aggregate.
func (s *Sum) Variance() float64 {
	cs, cl := s.c.Raw()
	qs, ql := s.s2.Raw()
	if cs == 0 {
		return math.NaN()
	}
	m := s.Mean()
	v := qs/cs*expDiff(ql, cl) - m*m
	if v < 0 {
		v = 0 // clamp tiny negative round-off
	}
	return v
}

// StdDev returns the square root of the decayed variance.
func (s *Sum) StdDev() float64 { return math.Sqrt(s.Variance()) }

// N returns the raw number of observations.
func (s *Sum) N() uint64 { return s.n }

// Merge folds another aggregate over the same decay model into this one.
func (s *Sum) Merge(o *Sum) error {
	if !sameModel(s.model, o.model) {
		return errModelMismatch(s.model, o.model)
	}
	s.c.Merge(&o.c)
	s.s.Merge(&o.s)
	s.s2.Merge(&o.s2)
	s.n += o.n
	return nil
}

// ShiftLandmark rebases the aggregate onto a new landmark (exponential
// decay only); queried values are unchanged.
func (s *Sum) ShiftLandmark(newL float64) error {
	m, logShift, ok := s.model.Shifted(newL)
	if !ok {
		return errNotShiftable(s.model)
	}
	s.model = m
	s.c.Shift(logShift)
	s.s.Shift(logShift)
	s.s2.Shift(logShift)
	s.memo.invalidate()
	return nil
}

// expDiff returns exp(a−b), saturating rather than overflowing.
func expDiff(a, b float64) float64 {
	d := a - b
	if d > 700 {
		return math.MaxFloat64
	}
	if d < -745 {
		return 0
	}
	return math.Exp(d)
}
