package agg

import (
	"math"
	"sort"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// TestExample3ViaHeavyHitters reproduces Example 3 of the paper through the
// public HeavyHitters API: φ=0.2 heavy hitters of the example stream are
// items 4, 6, 8 with decayed counts 0.41, 0.64, 0.49 at t=110.
func TestExample3ViaHeavyHitters(t *testing.T) {
	h := NewHeavyHittersK(example1Model(), 16)
	for _, it := range example1 {
		h.Observe(uint64(it.v), it.ti)
	}
	if got := h.DecayedCount(110); !almostEq(got, 1.63, 1e-12) {
		t.Fatalf("C = %v, want 1.63", got)
	}
	hh := h.Query(110, 0.2)
	want := map[uint64]float64{6: 0.64, 8: 0.49, 4: 0.41}
	if len(hh) != 3 {
		t.Fatalf("got %v, want 3 heavy hitters", hh)
	}
	for _, it := range hh {
		if w, ok := want[it.Key]; !ok || !almostEq(it.Count, w, 1e-12) {
			t.Errorf("heavy hitter %d count %v, want %v", it.Key, it.Count, want[it.Key])
		}
	}
	if c, _ := h.Estimate(3, 110); !almostEq(c, 0.09, 1e-12) {
		t.Errorf("d₃ = %v, want 0.09", c)
	}
}

// decayedZipfStream builds a skewed keyed stream with timestamps.
func decayedZipfStream(seed uint64, n, u int) (keys []uint64, ts []float64) {
	rng := core.NewRNG(seed)
	keys = make([]uint64, n)
	ts = make([]float64, n)
	for i := range keys {
		// Simple skew: key k with probability ∝ 1/k².
		k := 1 + int(math.Floor(1/math.Sqrt(rng.Float64())))
		if k > u {
			k = u
		}
		keys[i] = uint64(k)
		ts[i] = float64(i) * 0.01
	}
	return
}

func bruteDecayedCounts(m decay.Forward, keys []uint64, ts []float64, t float64) map[uint64]float64 {
	out := make(map[uint64]float64)
	for i := range keys {
		out[keys[i]] += m.Weight(ts[i], t)
	}
	return out
}

func TestHeavyHittersGuaranteeUnderDecay(t *testing.T) {
	keys, ts := decayedZipfStream(61, 40000, 1000)
	tq := ts[len(ts)-1]
	for _, m := range []decay.Forward{
		decay.NewForward(decay.NewPoly(2), -1),
		decay.NewForward(decay.NewExp(0.02), -1),
	} {
		const eps, phi = 0.005, 0.03
		h := NewHeavyHitters(m, eps)
		for i := range keys {
			h.Observe(keys[i], ts[i])
		}
		exact := bruteDecayedCounts(m, keys, ts, tq)
		var C float64
		for _, c := range exact {
			C += c
		}
		if got := h.DecayedCount(tq); !almostEq(got, C, 1e-6) {
			t.Fatalf("%v: C = %v, want %v", m.Func, got, C)
		}
		hh := h.Query(tq, phi)
		got := make(map[uint64]bool)
		for _, it := range hh {
			got[it.Key] = true
			if exact[it.Key] < (phi-eps)*C-1e-9 {
				t.Errorf("%v: false positive %d (true %v < %v)", m.Func, it.Key, exact[it.Key], (phi-eps)*C)
			}
		}
		for k, c := range exact {
			if c >= phi*C && !got[k] {
				t.Errorf("%v: missed heavy hitter %d (%v ≥ %v)", m.Func, k, c, phi*C)
			}
		}
	}
}

func TestHeavyHittersExpRebaseLongStream(t *testing.T) {
	// α=1 over 5000 seconds: static weights span e^5000. The summary must
	// rebase internally and still match brute force on recent mass.
	m := decay.NewForward(decay.NewExp(1), 0)
	h := NewHeavyHittersK(m, 64)
	keys, _ := decayedZipfStream(62, 5000, 50)
	for i, k := range keys {
		h.Observe(k, float64(i))
	}
	tq := float64(len(keys) - 1)
	exact := bruteDecayedCounts(m, keys, timesUpTo(len(keys)), tq)
	var C float64
	for _, c := range exact {
		C += c
	}
	if got := h.DecayedCount(tq); !almostEq(got, C, 1e-6) {
		t.Fatalf("C = %v, want %v", got, C)
	}
	for _, it := range h.Query(tq, 0.1) {
		if !almostEq(it.Count, exact[it.Key], 0.05) && it.Err < 1e-9 {
			t.Errorf("key %d: count %v, want %v", it.Key, it.Count, exact[it.Key])
		}
	}
}

func timesUpTo(n int) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)
	}
	return ts
}

func TestHeavyHittersMergeDistributed(t *testing.T) {
	keys, ts := decayedZipfStream(63, 30000, 500)
	m := decay.NewForward(decay.NewPoly(2), -1)
	whole := NewHeavyHittersK(m, 400)
	sites := []*HeavyHitters{NewHeavyHittersK(m, 400), NewHeavyHittersK(m, 400), NewHeavyHittersK(m, 400)}
	for i := range keys {
		whole.Observe(keys[i], ts[i])
		sites[i%3].Observe(keys[i], ts[i])
	}
	merged := NewHeavyHittersK(m, 400)
	for _, s := range sites {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	tq := ts[len(ts)-1]
	if !almostEq(merged.DecayedCount(tq), whole.DecayedCount(tq), 1e-6) {
		t.Fatalf("merged C %v != single-stream %v", merged.DecayedCount(tq), whole.DecayedCount(tq))
	}
	exact := bruteDecayedCounts(m, keys, ts, tq)
	var C float64
	for _, c := range exact {
		C += c
	}
	const phi = 0.05
	got := make(map[uint64]bool)
	for _, it := range merged.Query(tq, phi) {
		got[it.Key] = true
	}
	for k, c := range exact {
		if c >= phi*C && !got[k] {
			t.Errorf("merged summary missed heavy hitter %d", k)
		}
	}
	bad := NewHeavyHittersK(decay.NewForward(decay.NewPoly(3), -1), 400)
	if err := merged.Merge(bad); err == nil {
		t.Error("expected model mismatch error")
	}
}

func bruteDecayedRank(m decay.Forward, vals []uint64, ts []float64, v uint64, t float64) float64 {
	var r float64
	for i := range vals {
		if vals[i] <= v {
			r += m.Weight(ts[i], t)
		}
	}
	return r
}

func TestQuantilesUnderDecay(t *testing.T) {
	rng := core.NewRNG(64)
	const n, u = 30000, 1 << 12
	vals := make([]uint64, n)
	ts := make([]float64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(u))
		ts[i] = float64(i) * 0.01
	}
	tq := ts[n-1]
	for _, m := range []decay.Forward{
		decay.NewForward(decay.NewPoly(2), -1),
		decay.NewForward(decay.NewExp(0.01), -1),
	} {
		const eps = 0.05
		q := NewQuantiles(m, u, eps)
		for i := range vals {
			q.Observe(vals[i], ts[i])
		}
		var C float64
		for i := range vals {
			C += m.Weight(ts[i], tq)
		}
		if got := q.DecayedCount(tq); !almostEq(got, C, 1e-6) {
			t.Fatalf("%v: C = %v, want %v", m.Func, got, C)
		}
		for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			v := q.Quantile(phi)
			lo := bruteDecayedRank(m, vals, ts, v-1, tq)
			hi := bruteDecayedRank(m, vals, ts, v, tq)
			if hi < (phi-eps)*C || lo > (phi+eps)*C {
				t.Errorf("%v: quantile(%v)=%d rank bracket [%v,%v] outside %v±%v",
					m.Func, phi, v, lo, hi, phi*C, eps*C)
			}
		}
		// Rank query needs the time scaling.
		med := q.Quantile(0.5)
		if got, want := q.Rank(med, tq), bruteDecayedRank(m, vals, ts, med-1, tq); math.Abs(got-want) > 2*eps*C {
			t.Errorf("%v: Rank(%d) = %v, want ≈ %v", m.Func, med, got, want)
		}
	}
}

func TestQuantilesExpRebase(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.5), 0)
	q := NewQuantiles(m, 1024, 0.05)
	rng := core.NewRNG(65)
	// 4000 seconds at α=0.5: static weights span e^2000.
	for i := 0; i < 40000; i++ {
		q.Observe(uint64(rng.Intn(1024)), float64(i)*0.1)
	}
	med := q.Quantile(0.5)
	// Uniform values: the decayed median must be near 512.
	if math.Abs(float64(med)-512) > 0.15*1024 {
		t.Errorf("median = %d, want ≈ 512", med)
	}
	if c := q.DecayedCount(4000); math.IsInf(c, 0) || math.IsNaN(c) || c <= 0 {
		t.Errorf("decayed count not finite/positive: %v", c)
	}
}

func TestQuantilesMerge(t *testing.T) {
	rng := core.NewRNG(66)
	const n, u = 20000, 1 << 10
	m := decay.NewForward(decay.NewPoly(1), -1)
	whole := NewQuantiles(m, u, 0.05)
	a, b := NewQuantiles(m, u, 0.05), NewQuantiles(m, u, 0.05)
	vals := make([]uint64, n)
	ts := make([]float64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(u))
		ts[i] = float64(i) * 0.01
		whole.Observe(vals[i], ts[i])
		if i%2 == 0 {
			a.Observe(vals[i], ts[i])
		} else {
			b.Observe(vals[i], ts[i])
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	tq := ts[n-1]
	var C float64
	for i := range vals {
		C += m.Weight(ts[i], tq)
	}
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		v := a.Quantile(phi)
		lo := bruteDecayedRank(m, vals, ts, v-1, tq)
		hi := bruteDecayedRank(m, vals, ts, v, tq)
		if hi < (phi-0.12)*C || lo > (phi+0.12)*C {
			t.Errorf("merged quantile(%v)=%d bracket [%v,%v] vs %v", phi, v, lo, hi, phi*C)
		}
	}
	bad := NewQuantiles(decay.NewForward(decay.NewPoly(2), -1), u, 0.05)
	if err := a.Merge(bad); err == nil {
		t.Error("expected model mismatch error")
	}
}

func bruteDistinct(m decay.Forward, keys []uint64, ts []float64, t float64) float64 {
	max := make(map[uint64]float64)
	for i := range keys {
		w := m.Weight(ts[i], t)
		if w > max[keys[i]] {
			max[keys[i]] = w
		}
	}
	var d float64
	for _, w := range max {
		d += w
	}
	return d
}

func TestDistinctExactMatchesBruteForce(t *testing.T) {
	keys, ts := decayedZipfStream(67, 20000, 2000)
	for _, m := range []decay.Forward{
		decay.NewForward(decay.NewPoly(2), -1),
		decay.NewForward(decay.NewExp(0.01), -1),
	} {
		d := NewDistinctExact(m)
		for i := range keys {
			d.Observe(keys[i], ts[i])
		}
		tq := ts[len(ts)-1]
		want := bruteDistinct(m, keys, ts, tq)
		if got := d.Value(tq); !almostEq(got, want, 1e-9) {
			t.Errorf("%v: D = %v, want %v", m.Func, got, want)
		}
	}
}

func TestDistinctExactMerge(t *testing.T) {
	keys, ts := decayedZipfStream(68, 10000, 800)
	m := decay.NewForward(decay.NewPoly(2), -1)
	whole := NewDistinctExact(m)
	a, b := NewDistinctExact(m), NewDistinctExact(m)
	for i := range keys {
		whole.Observe(keys[i], ts[i])
		if i%2 == 0 {
			a.Observe(keys[i], ts[i])
		} else {
			b.Observe(keys[i], ts[i])
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	tq := ts[len(ts)-1]
	if !almostEq(a.Value(tq), whole.Value(tq), 1e-9) {
		t.Errorf("merged D %v != single-stream %v", a.Value(tq), whole.Value(tq))
	}
	if a.Keys() != whole.Keys() {
		t.Errorf("merged keys %d != %d", a.Keys(), whole.Keys())
	}
}

func TestDistinctApproxTracksExact(t *testing.T) {
	rng := core.NewRNG(69)
	const n = 40000
	keys := make([]uint64, n)
	ts := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(3000))
		ts[i] = float64(i) * 0.01
	}
	m := decay.NewForward(decay.NewPoly(2), -1)
	exact := NewDistinctExact(m)
	approx := NewDistinct(m, 1024, 1.05, 1024)
	for i := range keys {
		exact.Observe(keys[i], ts[i])
		approx.Observe(keys[i], ts[i])
	}
	tq := ts[n-1]
	e, a := exact.Value(tq), approx.Value(tq)
	if math.Abs(a-e) > 0.2*e {
		t.Errorf("approx D = %v, exact %v (off by %v%%)", a, e, 100*math.Abs(a-e)/e)
	}
	if approx.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestDistinctModelMismatch(t *testing.T) {
	m1 := decay.NewForward(decay.NewPoly(2), 0)
	m2 := decay.NewForward(decay.NewPoly(2), 1)
	if err := NewDistinctExact(m1).Merge(NewDistinctExact(m2)); err == nil {
		t.Error("expected mismatch error (exact)")
	}
	if err := NewDistinct(m1, 64, 1.1, 64).Merge(NewDistinct(m2, 64, 1.1, 64)); err == nil {
		t.Error("expected mismatch error (approx)")
	}
}

func TestHeavyHittersQuerySorted(t *testing.T) {
	keys, ts := decayedZipfStream(70, 5000, 100)
	m := decay.NewForward(decay.NewExp(0.05), -1)
	h := NewHeavyHittersK(m, 50)
	for i := range keys {
		h.Observe(keys[i], ts[i])
	}
	hh := h.Query(ts[len(ts)-1], 0.01)
	if !sort.SliceIsSorted(hh, func(i, j int) bool { return hh[i].Count > hh[j].Count }) {
		t.Error("Query results not sorted by decayed count")
	}
}

func TestHeavyHittersTop(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 0)
	h := NewHeavyHittersK(m, 16)
	h.ObserveN(1, 10, 5)
	h.ObserveN(2, 20, 5)
	h.ObserveN(3, 30, 5)
	top := h.Top(30, 2)
	if len(top) != 2 || top[0].Key != 3 || top[1].Key != 2 {
		t.Fatalf("Top = %+v", top)
	}
	if top[0].Count <= top[1].Count {
		t.Errorf("Top not sorted: %+v", top)
	}
	if got := h.Top(30, 10); len(got) != 3 {
		t.Errorf("Top(10) over 3 items returned %d", len(got))
	}
}

func TestHeavyHittersByteWeighted(t *testing.T) {
	// ObserveN with byte counts: the "sum of lengths per destination" query
	// of §IV-A.
	m := decay.NewForward(decay.NewPoly(2), 0)
	h := NewHeavyHittersK(m, 16)
	h.ObserveN(1, 30, 1500)
	h.ObserveN(2, 30, 40)
	h.ObserveN(1, 60, 40)
	tq := 60.0
	wantKey1 := m.Weight(30, tq)*1500 + m.Weight(60, tq)*40
	if got, _ := h.Estimate(1, tq); !almostEq(got, wantKey1, 1e-9) {
		t.Errorf("byte-weighted estimate = %v, want %v", got, wantKey1)
	}
}
