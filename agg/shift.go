package agg

import (
	"math"
	"sort"
)

// Landmark shifting for the full aggregate surface (epoch rollover, §VI-A).
//
// Counter and Sum (and through Sum, the average and variance) shift by
// adjusting the log scale of their compensated accumulators — see
// countsum.go. The aggregates here extend the same exact rebasing to the
// sketch-backed and witness-based summaries: under exponential decay every
// static log-weight changes by the same additive constant when the landmark
// moves, so a summary that already keeps its linear-domain state under a
// floating log scale (HeavyHitters, Quantiles) shifts by adjusting only the
// scale, a witness aggregate (Max, Min) shifts the stored witness weight,
// and the distinct counters shift per-key or through the dominance sketch's
// frame offset. No linear-domain multiplication happens anywhere on these
// paths, which is what makes rollover bit-exact.
//
// Every method returns *NotShiftableError for decay functions without the
// shift property (monomials, landmark windows — Lemma 1 of the paper).

// shiftLandmark rebases a witness aggregate: the stored witness's log static
// weight moves by the same constant as every other item's, so comparisons
// against future arrivals stay consistent.
func (e *extreme) shiftLandmark(newL float64) error {
	m, logShift, ok := e.model.Shifted(newL)
	if !ok {
		return errNotShiftable(e.model)
	}
	e.model = m
	if e.set {
		e.lw += logShift
	}
	return nil
}

// ShiftLandmark rebases the aggregate onto a new landmark (exponential
// decay only); queried values are unchanged.
func (m *Max) ShiftLandmark(newL float64) error { return m.e.shiftLandmark(newL) }

// ShiftLandmark rebases the aggregate onto a new landmark (exponential
// decay only); queried values are unchanged.
func (m *Min) ShiftLandmark(newL float64) error { return m.e.shiftLandmark(newL) }

// ShiftLandmark rebases the summary onto a new landmark (exponential decay
// only). The SpaceSaving counters are untouched — only the floating log
// scale moves — so the shift is exact and O(1).
func (h *HeavyHitters) ShiftLandmark(newL float64) error {
	m, logShift, ok := h.model.Shifted(newL)
	if !ok {
		return errNotShiftable(h.model)
	}
	h.model = m
	if h.started {
		h.logScale += logShift
	}
	return nil
}

// ShiftLandmark rebases the summary onto a new landmark (exponential decay
// only). The q-digest weights are untouched — only the floating log scale
// moves — so the shift is exact and O(1).
func (q *Quantiles) ShiftLandmark(newL float64) error {
	m, logShift, ok := q.model.Shifted(newL)
	if !ok {
		return errNotShiftable(q.model)
	}
	q.model = m
	if q.started {
		q.logScale += logShift
	}
	return nil
}

// ShiftLandmark rebases the exact distinct counter onto a new landmark
// (exponential decay only): every stored per-key maximum log weight moves by
// the same constant, preserving all per-key maxima exactly.
func (d *DistinctExact) ShiftLandmark(newL float64) error {
	m, logShift, ok := d.model.Shifted(newL)
	if !ok {
		return errNotShiftable(d.model)
	}
	d.model = m
	for k := range d.maxLW {
		d.maxLW[k] += logShift
	}
	return nil
}

// ShiftLandmark rebases the approximate distinct counter onto a new
// landmark (exponential decay only) through the dominance sketch's frame
// offset: level membership is computed in the sketch's birth frame, so the
// shift is exact and O(1) regardless of how many times it is applied.
func (d *Distinct) ShiftLandmark(newL float64) error {
	m, logShift, ok := d.model.Shifted(newL)
	if !ok {
		return errNotShiftable(d.model)
	}
	d.model = m
	d.dom.ShiftLog(logShift)
	return nil
}

// posFactor clamps a log-domain rescale factor to the smallest positive
// float so the sketches' Scale guard (which rejects non-positive factors)
// accepts legitimate deep-underflow rebasing: a factor that underflowed to 0
// means every existing count is negligible at the new scale, and scaling by
// a subnormal flushes them to (effectively) zero just the same.
func posFactor(f float64) float64 {
	if f <= 0 {
		return math.SmallestNonzeroFloat64
	}
	return f
}

// mustScale panics on a sketch Scale error. The agg call sites pass factors
// that are finite and positive by construction (posFactor), so an error here
// is a programming bug, not an input condition.
func mustScale(err error) {
	if err != nil {
		panic(err)
	}
}

// sortedKeys returns the map's keys in increasing order, for deterministic
// iteration where float accumulation order matters.
func sortedKeys(m map[uint64]float64) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
