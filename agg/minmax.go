package agg

import (
	"math"

	"forwarddecay/decay"
)

// extreme tracks the item maximizing (or minimizing) the decayed value
// g(tᵢ−L)·vᵢ (Definition 6 of the paper). Only the winning item is stored —
// constant space — because under forward decay the ordering of g(tᵢ−L)·vᵢ
// between any two items never changes as t advances.
//
// Comparisons are performed in the log domain on |v| with explicit sign
// handling, so exponential decay over long streams cannot overflow.
type extreme struct {
	inputGuard
	model decay.Forward
	max   bool // true for Max, false for Min
	set   bool
	ti    float64 // winning item's timestamp
	v     float64 // winning item's value
	lw    float64 // winning item's log static weight
}

// Max maintains the decayed maximum MAX = maxᵢ g(tᵢ−L)·vᵢ/g(t−L).
type Max struct{ e extreme }

// Min maintains the decayed minimum MIN = minᵢ g(tᵢ−L)·vᵢ/g(t−L).
type Min struct{ e extreme }

// NewMax returns a decayed maximum aggregate under the given model.
func NewMax(m decay.Forward) *Max { return &Max{extreme{model: m, max: true}} }

// NewMin returns a decayed minimum aggregate under the given model.
func NewMin(m decay.Forward) *Min { return &Min{extreme{model: m}} }

// name returns the exported aggregate name for error reporting.
func (e *extreme) name() string {
	if e.max {
		return "Max"
	}
	return "Min"
}

// logMag returns the log-magnitude of the decayed value and its sign:
// sign·exp(mag) = g·v.
func logMag(lw, v float64) (mag float64, sign int) {
	switch {
	case v > 0:
		return lw + math.Log(v), 1
	case v < 0:
		return lw + math.Log(-v), -1
	default:
		return math.Inf(-1), 0
	}
}

// better reports whether candidate (lw, v) beats the incumbent under the
// aggregate's direction.
func (e *extreme) better(lw, v float64) bool {
	if !e.set {
		return true
	}
	cm, cs := logMag(lw, v)
	im, is := logMag(e.lw, e.v)
	var cmp int // -1 candidate smaller, +1 candidate larger, 0 equal
	switch {
	case cs > is:
		cmp = 1
	case cs < is:
		cmp = -1
	case cs == 0:
		cmp = 0
	case cm == im:
		cmp = 0
	case (cm > im) == (cs > 0):
		cmp = 1
	default:
		cmp = -1
	}
	if e.max {
		return cmp > 0
	}
	return cmp < 0
}

func (e *extreme) observe(ti, v float64) {
	if !IsFinite(ti) {
		e.reject(e.name(), "timestamp", ti)
		return
	}
	if !IsFinite(v) {
		e.reject(e.name(), "value", v)
		return
	}
	lw := e.model.LogStaticWeight(ti)
	if math.IsInf(lw, -1) {
		// Zero static weight: the decayed value is 0; it can still win
		// (e.g. Min over positive values). Represent as v = 0 at weight 1.
		lw, v = 0, 0
	}
	if e.better(lw, v) {
		e.set, e.ti, e.v, e.lw = true, ti, v, lw
	}
}

// value returns g(t_best−L)·v_best / g(t−L).
func (e *extreme) value(t float64) float64 {
	if !e.set {
		return math.NaN()
	}
	mag, sign := logMag(e.lw, e.v)
	if sign == 0 {
		return 0
	}
	return float64(sign) * expDiff(mag, e.model.LogNormalizer(t))
}

func (e *extreme) merge(o *extreme) error {
	if !sameModel(e.model, o.model) {
		return errModelMismatch(e.model, o.model)
	}
	if o.set && e.better(o.lw, o.v) {
		e.set, e.ti, e.v, e.lw = true, o.ti, o.v, o.lw
	}
	return nil
}

// Observe records an item with timestamp ti and value v.
func (m *Max) Observe(ti, v float64) { m.e.observe(ti, v) }

// Value returns the decayed maximum at query time t, or NaN if empty.
func (m *Max) Value(t float64) float64 { return m.e.value(t) }

// Arg returns the timestamp and value of the maximizing item; ok is false
// for an empty aggregate.
func (m *Max) Arg() (ti, v float64, ok bool) { return m.e.ti, m.e.v, m.e.set }

// Merge folds another Max over the same model into this one.
func (m *Max) Merge(o *Max) error { return m.e.merge(&o.e) }

// Err returns the first rejected (non-finite) observation, or nil.
func (m *Max) Err() error { return m.e.Err() }

// Model returns the aggregate's decay model.
func (m *Max) Model() decay.Forward { return m.e.model }

// Observe records an item with timestamp ti and value v.
func (m *Min) Observe(ti, v float64) { m.e.observe(ti, v) }

// Value returns the decayed minimum at query time t, or NaN if empty.
func (m *Min) Value(t float64) float64 { return m.e.value(t) }

// Arg returns the timestamp and value of the minimizing item; ok is false
// for an empty aggregate.
func (m *Min) Arg() (ti, v float64, ok bool) { return m.e.ti, m.e.v, m.e.set }

// Merge folds another Min over the same model into this one.
func (m *Min) Merge(o *Min) error { return m.e.merge(&o.e) }

// Err returns the first rejected (non-finite) observation, or nil.
func (m *Min) Err() error { return m.e.Err() }

// Model returns the aggregate's decay model.
func (m *Min) Model() decay.Forward { return m.e.model }
