package agg

import (
	"math"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
	"forwarddecay/sketch"
)

// Item is one reported heavy hitter: its key, estimated decayed count, and
// the overestimation bound on that estimate (all normalized by g(t−L)).
type Item struct {
	Key   uint64
	Count float64
	Err   float64
}

// HeavyHitters finds the φ-heavy hitters under forward decay (Definition 7,
// Theorem 2 of the paper): items whose decayed count
// d_v = Σ_{vᵢ=v} g(tᵢ−L)/g(t−L) is at least φ·C. It reduces the problem to
// weighted heavy hitters over the static weights g(tᵢ−L) — fixed at arrival
// — and runs the weighted SpaceSaving summary in O(1/ε) counters with
// O(log 1/ε) time per update: the same asymptotic cost as undecayed
// approximate heavy hitters.
//
// Exponential decay is handled without overflow by keeping the summary
// under a floating log scale: when a new static weight outgrows the scale,
// every counter is linearly rescaled (§VI-A). HeavyHitters is not safe for
// concurrent use.
type HeavyHitters struct {
	inputGuard
	model    decay.Forward
	ss       *sketch.SpaceSaving
	logScale float64
	started  bool
}

// NewHeavyHitters returns a summary that answers φ-heavy-hitter queries
// with error ε: every item with d_v ≥ φC is reported and no item with
// d_v < (φ−ε)C is. It panics unless 0 < epsilon < 1.
func NewHeavyHitters(m decay.Forward, epsilon float64) *HeavyHitters {
	return &HeavyHitters{model: m, ss: sketch.NewSpaceSaving(epsilon)}
}

// NewHeavyHittersK is like NewHeavyHitters with an explicit counter budget
// k (ε = 1/k).
func NewHeavyHittersK(m decay.Forward, k int) *HeavyHitters {
	return &HeavyHitters{model: m, ss: sketch.NewSpaceSavingK(k)}
}

// Model returns the decay model.
func (h *HeavyHitters) Model() decay.Forward { return h.model }

// Observe records one occurrence of key at timestamp ti.
func (h *HeavyHitters) Observe(key uint64, ti float64) {
	h.ObserveN(key, ti, 1)
}

// ObserveN records n simultaneous occurrences of key at timestamp ti (n may
// be fractional, e.g. a byte count; non-positive n is ignored).
func (h *HeavyHitters) ObserveN(key uint64, ti, n float64) {
	if !IsFinite(ti) {
		h.reject("HeavyHitters", "timestamp", ti)
		return
	}
	if !IsFinite(n) {
		h.reject("HeavyHitters", "value", n)
		return
	}
	if n <= 0 {
		return
	}
	lw := h.model.LogStaticWeight(ti)
	h.update(key, lw, n)
}

func (h *HeavyHitters) update(key uint64, lw, n float64) {
	if math.IsInf(lw, -1) {
		// Zero static weight (e.g. an observation at the landmark under
		// polynomial decay) contributes nothing; folding it in would poison
		// the summary with NaN via rel = −Inf − (−Inf).
		return
	}
	if !h.started {
		h.logScale = lw
		h.started = true
	}
	rel := lw - h.logScale
	if rel > core.MaxSafeExp {
		// Rebase: linear rescaling pass over the counters (§VI-A).
		mustScale(h.ss.Scale(posFactor(core.ExpClamped(-rel))))
		h.logScale = lw
		rel = 0
	}
	h.ss.Update(key, core.ExpClamped(rel)*n)
}

// DecayedCount returns the total decayed count C at query time t.
func (h *HeavyHitters) DecayedCount(t float64) float64 {
	return h.ss.Total() * core.ExpClamped(h.logScale-h.model.LogNormalizer(t))
}

// Query returns the φ-heavy hitters at query time t, in decreasing order of
// estimated decayed count.
func (h *HeavyHitters) Query(t, phi float64) []Item {
	norm := core.ExpClamped(h.logScale - h.model.LogNormalizer(t))
	raw := h.ss.HeavyHitters(phi)
	out := make([]Item, len(raw))
	for i, ic := range raw {
		out[i] = Item{Key: ic.Key, Count: ic.Count * norm, Err: ic.Err * norm}
	}
	return out
}

// Top returns the n items with the largest estimated decayed counts at
// query time t, in decreasing order, regardless of any threshold.
func (h *HeavyHitters) Top(t float64, n int) []Item {
	norm := core.ExpClamped(h.logScale - h.model.LogNormalizer(t))
	raw := h.ss.Top(n)
	out := make([]Item, len(raw))
	for i, ic := range raw {
		out[i] = Item{Key: ic.Key, Count: ic.Count * norm, Err: ic.Err * norm}
	}
	return out
}

// Estimate returns the estimated decayed count of key at time t, and the
// overestimation bound.
func (h *HeavyHitters) Estimate(key uint64, t float64) (count, err float64) {
	norm := core.ExpClamped(h.logScale - h.model.LogNormalizer(t))
	c, e := h.ss.Estimate(key)
	return c * norm, e * norm
}

// Merge folds another summary over the same decay model into this one
// (distributed operation, §VI-B). Error bounds add.
func (h *HeavyHitters) Merge(o *HeavyHitters) error {
	if !sameModel(h.model, o.model) {
		return errModelMismatch(h.model, o.model)
	}
	if !o.started {
		return nil
	}
	if !h.started {
		h.logScale = o.logScale
		h.started = true
	}
	other := o.ss
	if o.logScale != h.logScale {
		if o.logScale > h.logScale {
			mustScale(h.ss.Scale(posFactor(core.ExpClamped(h.logScale - o.logScale))))
			h.logScale = o.logScale
		}
		// Scale a copy of the other side onto our scale.
		cp := o.ss.Clone()
		mustScale(cp.Scale(posFactor(core.ExpClamped(o.logScale - h.logScale))))
		other = cp
	}
	h.ss.Merge(other)
	return nil
}

// SizeBytes reports the summary's memory footprint.
func (h *HeavyHitters) SizeBytes() int { return 24 + h.ss.SizeBytes() }
