package agg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
	"forwarddecay/sketch"
)

// Binary encodings for the distributed-mergeable aggregates: a site
// serializes its partial aggregate, ships it, and the coordinator
// unmarshals and merges (§VI-B of the paper). Encodings carry the decay
// model (in its textual form) so that mismatched models are caught at
// decode/merge time.

const (
	tagCounter       byte = 0x61
	tagSum           byte = 0x62
	tagHeavyHitters  byte = 0x63
	tagQuantiles     byte = 0x64
	tagMax           byte = 0x65
	tagMin           byte = 0x66
	tagDistinctExact byte = 0x67
)

// appendModel appends the model's text encoding, length-prefixed.
func appendModel(b []byte, m decay.Forward) ([]byte, error) {
	mt, err := m.MarshalText()
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(mt)))
	return append(b, mt...), nil
}

// readModel consumes a length-prefixed model encoding.
func readModel(b []byte) (decay.Forward, []byte, error) {
	if len(b) < 8 {
		return decay.Forward{}, nil, fmt.Errorf("agg: truncated encoding")
	}
	n := binary.LittleEndian.Uint64(b)
	b = b[8:]
	if uint64(len(b)) < n || n > 4096 {
		return decay.Forward{}, nil, fmt.Errorf("agg: truncated or implausible model encoding")
	}
	var m decay.Forward
	if err := m.UnmarshalText(b[:n]); err != nil {
		return decay.Forward{}, nil, err
	}
	return m, b[n:], nil
}

// appendScaled appends a scaled sum's full state: emptiness, raw sum, Kahan
// compensation and log scale. Carrying the compensation keeps a restored
// accumulator bit-identical to the saved one, which the crash-restore and
// epoch-rollover equivalence suites rely on.
func appendScaled(b []byte, s *core.ScaledSum) []byte {
	sum, comp, scale, nonEmpty := s.State()
	empty := byte(0)
	if !nonEmpty {
		empty = 1
	}
	b = append(b, empty)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(sum))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(comp))
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(scale))
}

// readScaled consumes a scaled sum's state.
func readScaled(b []byte) (core.ScaledSum, []byte, error) {
	if len(b) < 25 {
		return core.ScaledSum{}, nil, fmt.Errorf("agg: truncated encoding")
	}
	empty := b[0]
	sum := math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))
	comp := math.Float64frombits(binary.LittleEndian.Uint64(b[9:]))
	scale := math.Float64frombits(binary.LittleEndian.Uint64(b[17:]))
	b = b[25:]
	var s core.ScaledSum
	s.Restore(sum, comp, scale, empty == 0)
	return s, b, nil
}

// MarshalBinary encodes the counter with its decay model.
func (c *Counter) MarshalBinary() ([]byte, error) {
	b := []byte{tagCounter}
	b, err := appendModel(b, c.model)
	if err != nil {
		return nil, err
	}
	b = appendScaled(b, &c.c)
	return binary.LittleEndian.AppendUint64(b, c.n), nil
}

// UnmarshalBinary decodes a counter produced by MarshalBinary.
func (c *Counter) UnmarshalBinary(b []byte) error {
	b = bytes.Clone(b)
	if len(b) < 1 || b[0] != tagCounter {
		return fmt.Errorf("agg: not a Counter encoding")
	}
	m, rest, err := readModel(b[1:])
	if err != nil {
		return err
	}
	s, rest, err := readScaled(rest)
	if err != nil {
		return err
	}
	if len(rest) != 8 {
		return fmt.Errorf("agg: malformed Counter encoding")
	}
	c.model = m
	c.c = s
	c.n = binary.LittleEndian.Uint64(rest)
	c.memo.invalidate() // cached weight may belong to a different model
	return nil
}

// MarshalBinary encodes the aggregate with its decay model.
func (s *Sum) MarshalBinary() ([]byte, error) {
	b := []byte{tagSum}
	b, err := appendModel(b, s.model)
	if err != nil {
		return nil, err
	}
	b = appendScaled(b, &s.c)
	b = appendScaled(b, &s.s)
	b = appendScaled(b, &s.s2)
	return binary.LittleEndian.AppendUint64(b, s.n), nil
}

// UnmarshalBinary decodes an aggregate produced by MarshalBinary.
func (s *Sum) UnmarshalBinary(b []byte) error {
	b = bytes.Clone(b)
	if len(b) < 1 || b[0] != tagSum {
		return fmt.Errorf("agg: not a Sum encoding")
	}
	m, rest, err := readModel(b[1:])
	if err != nil {
		return err
	}
	var c, sv, s2 core.ScaledSum
	if c, rest, err = readScaled(rest); err != nil {
		return err
	}
	if sv, rest, err = readScaled(rest); err != nil {
		return err
	}
	if s2, rest, err = readScaled(rest); err != nil {
		return err
	}
	if len(rest) != 8 {
		return fmt.Errorf("agg: malformed Sum encoding")
	}
	s.model = m
	s.c, s.s, s.s2 = c, sv, s2
	s.n = binary.LittleEndian.Uint64(rest)
	s.memo.invalidate() // cached weight may belong to a different model
	return nil
}

// MarshalBinary encodes the summary with its decay model and log scale.
func (h *HeavyHitters) MarshalBinary() ([]byte, error) {
	b := []byte{tagHeavyHitters}
	b, err := appendModel(b, h.model)
	if err != nil {
		return nil, err
	}
	started := byte(0)
	if h.started {
		started = 1
	}
	b = append(b, started)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(h.logScale))
	sb, err := h.ss.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(b, sb...), nil
}

// UnmarshalBinary decodes a summary produced by MarshalBinary.
func (h *HeavyHitters) UnmarshalBinary(b []byte) error {
	b = bytes.Clone(b)
	if len(b) < 1 || b[0] != tagHeavyHitters {
		return fmt.Errorf("agg: not a HeavyHitters encoding")
	}
	m, rest, err := readModel(b[1:])
	if err != nil {
		return err
	}
	if len(rest) < 9 {
		return fmt.Errorf("agg: truncated HeavyHitters encoding")
	}
	started := rest[0] == 1
	logScale := math.Float64frombits(binary.LittleEndian.Uint64(rest[1:]))
	ss := &sketch.SpaceSaving{}
	if err := ss.UnmarshalBinary(rest[9:]); err != nil {
		return err
	}
	h.model = m
	h.started = started
	h.logScale = logScale
	h.ss = ss
	return nil
}

// marshalExtreme encodes an extreme tracker under the given tag.
func marshalExtreme(tag byte, e *extreme) ([]byte, error) {
	b := []byte{tag}
	b, err := appendModel(b, e.model)
	if err != nil {
		return nil, err
	}
	set := byte(0)
	if e.set {
		set = 1
	}
	b = append(b, set)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.ti))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.v))
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(e.lw)), nil
}

// unmarshalExtreme decodes an extreme tracker, checking the tag.
func unmarshalExtreme(tag byte, b []byte, isMax bool) (extreme, error) {
	b = bytes.Clone(b)
	if len(b) < 1 || b[0] != tag {
		return extreme{}, fmt.Errorf("agg: wrong min/max encoding tag")
	}
	m, rest, err := readModel(b[1:])
	if err != nil {
		return extreme{}, err
	}
	if len(rest) != 25 {
		return extreme{}, fmt.Errorf("agg: malformed min/max encoding")
	}
	return extreme{
		model: m,
		max:   isMax,
		set:   rest[0] == 1,
		ti:    math.Float64frombits(binary.LittleEndian.Uint64(rest[1:])),
		v:     math.Float64frombits(binary.LittleEndian.Uint64(rest[9:])),
		lw:    math.Float64frombits(binary.LittleEndian.Uint64(rest[17:])),
	}, nil
}

// MarshalBinary encodes the aggregate with its decay model.
func (m *Max) MarshalBinary() ([]byte, error) { return marshalExtreme(tagMax, &m.e) }

// UnmarshalBinary decodes an aggregate produced by MarshalBinary.
func (m *Max) UnmarshalBinary(b []byte) error {
	e, err := unmarshalExtreme(tagMax, b, true)
	if err != nil {
		return err
	}
	m.e = e
	return nil
}

// MarshalBinary encodes the aggregate with its decay model.
func (m *Min) MarshalBinary() ([]byte, error) { return marshalExtreme(tagMin, &m.e) }

// UnmarshalBinary decodes an aggregate produced by MarshalBinary.
func (m *Min) UnmarshalBinary(b []byte) error {
	e, err := unmarshalExtreme(tagMin, b, false)
	if err != nil {
		return err
	}
	m.e = e
	return nil
}

// MarshalBinary encodes the exact distinct counter with its decay model.
func (d *DistinctExact) MarshalBinary() ([]byte, error) {
	b := []byte{tagDistinctExact}
	b, err := appendModel(b, d.model)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(d.maxLW)))
	// Encode in key order so identical state always produces identical
	// bytes (checkpoint comparisons depend on it).
	for _, k := range sortedKeys(d.maxLW) {
		b = binary.LittleEndian.AppendUint64(b, k)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.maxLW[k]))
	}
	return b, nil
}

// UnmarshalBinary decodes a counter produced by MarshalBinary.
func (d *DistinctExact) UnmarshalBinary(b []byte) error {
	b = bytes.Clone(b)
	if len(b) < 1 || b[0] != tagDistinctExact {
		return fmt.Errorf("agg: not a DistinctExact encoding")
	}
	m, rest, err := readModel(b[1:])
	if err != nil {
		return err
	}
	if len(rest) < 8 {
		return fmt.Errorf("agg: truncated DistinctExact encoding")
	}
	n := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	// Guard the multiplication: a claimed n near 2⁶⁴/16 would wrap n*16
	// and could both pass the length check and over-allocate the map.
	if n > uint64(len(rest))/16 || uint64(len(rest)) != n*16 {
		return fmt.Errorf("agg: malformed DistinctExact encoding")
	}
	maxLW := make(map[uint64]float64, n)
	for i := uint64(0); i < n; i++ {
		k := binary.LittleEndian.Uint64(rest)
		lw := math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
		maxLW[k] = lw
		rest = rest[16:]
	}
	d.model = m
	d.maxLW = maxLW
	return nil
}

// MarshalBinary encodes the summary with its decay model and log scale.
func (q *Quantiles) MarshalBinary() ([]byte, error) {
	b := []byte{tagQuantiles}
	b, err := appendModel(b, q.model)
	if err != nil {
		return nil, err
	}
	started := byte(0)
	if q.started {
		started = 1
	}
	b = append(b, started)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(q.logScale))
	qb, err := q.qd.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(b, qb...), nil
}

// UnmarshalBinary decodes a summary produced by MarshalBinary.
func (q *Quantiles) UnmarshalBinary(b []byte) error {
	b = bytes.Clone(b)
	if len(b) < 1 || b[0] != tagQuantiles {
		return fmt.Errorf("agg: not a Quantiles encoding")
	}
	m, rest, err := readModel(b[1:])
	if err != nil {
		return err
	}
	if len(rest) < 9 {
		return fmt.Errorf("agg: truncated Quantiles encoding")
	}
	started := rest[0] == 1
	logScale := math.Float64frombits(binary.LittleEndian.Uint64(rest[1:]))
	qd := &sketch.QDigest{}
	if err := qd.UnmarshalBinary(rest[9:]); err != nil {
		return err
	}
	q.model = m
	q.started = started
	q.logScale = logScale
	q.qd = qd
	return nil
}
