package agg

import (
	"testing"

	"forwarddecay/decay"
)

// TestModelAccessors covers every aggregate's Model() getter.
func TestModelAccessors(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 5)
	if NewCounter(m).Model() != m || NewSum(m).Model() != m {
		t.Error("Counter/Sum Model() mismatch")
	}
	if NewHeavyHittersK(m, 4).Model() != m || NewQuantiles(m, 16, 0.1).Model() != m {
		t.Error("HeavyHitters/Quantiles Model() mismatch")
	}
	if NewDistinctExact(m).Model() != m || NewDistinct(m, 8, 2, 4).Model() != m {
		t.Error("Distinct Model() mismatch")
	}
}

// TestSizeBytesPositive covers the space accounting entry points.
func TestSizeBytesPositive(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.1), 0)
	h := NewHeavyHittersK(m, 8)
	h.Observe(1, 1)
	if h.SizeBytes() <= 0 {
		t.Error("HeavyHitters SizeBytes")
	}
	q := NewQuantiles(m, 64, 0.1)
	q.Observe(3, 1)
	if q.SizeBytes() <= 0 {
		t.Error("Quantiles SizeBytes")
	}
}

// TestCounterShiftLandmarkSuccessAndValuePreserved covers the Counter
// shift path (the Sum path is tested elsewhere).
func TestCounterShiftLandmark(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.2), 0)
	c := NewCounter(m)
	for ti := 1.0; ti <= 50; ti++ {
		c.Observe(ti)
	}
	before := c.Value(60)
	if err := c.ShiftLandmark(30); err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.Value(60), before, 1e-9) {
		t.Errorf("value changed: %v vs %v", c.Value(60), before)
	}
	if c.Model().Landmark != 30 {
		t.Errorf("landmark = %v", c.Model().Landmark)
	}
	// Non-shiftable function errors.
	p := NewCounter(decay.NewForward(decay.LandmarkWindow{}, 0))
	if err := p.ShiftLandmark(5); err == nil {
		t.Error("landmark-window shift must fail")
	}
}

// TestQuantilesMergeScaleAlignment exercises both branches of the
// log-scale alignment in Quantiles.Merge: other-above and other-below.
func TestQuantilesMergeScaleAlignment(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	mkQ := func(tiLo, tiHi float64, v uint64) *Quantiles {
		q := NewQuantiles(m, 64, 0.1)
		for ti := tiLo; ti <= tiHi; ti++ {
			q.Observe(v, ti)
		}
		return q
	}
	// a's internal scale ends much lower than b's (b saw later items).
	a := mkQ(1, 100, 10)
	b := mkQ(600, 700, 40)
	if err := a.Merge(b); err != nil { // other above: a rebases up
		t.Fatal(err)
	}
	// At t=700 the mass is utterly dominated by b's items near 700.
	if got := a.Quantile(0.5); got != 40 {
		t.Errorf("merged (up) median = %d, want 40", got)
	}

	c := mkQ(600, 700, 40)
	d := mkQ(1, 100, 10)
	if err := c.Merge(d); err != nil { // other below: d is scaled down
		t.Fatal(err)
	}
	if got := c.Quantile(0.5); got != 40 {
		t.Errorf("merged (down) median = %d, want 40", got)
	}
	// Empty-other and empty-self merges.
	e := NewQuantiles(m, 64, 0.1)
	if err := c.Merge(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Merge(c); err != nil {
		t.Fatal(err)
	}
	if got := e.Quantile(0.5); got != 40 {
		t.Errorf("merge into empty: median %d", got)
	}
}

// TestHeavyHittersMergeScaleAlignment mirrors the same branches for
// HeavyHitters.Merge.
func TestHeavyHittersMergeScaleAlignment(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	mk := func(tiLo, tiHi float64, key uint64) *HeavyHitters {
		h := NewHeavyHittersK(m, 8)
		for ti := tiLo; ti <= tiHi; ti++ {
			h.Observe(key, ti)
		}
		return h
	}
	a := mk(1, 100, 7)
	b := mk(600, 700, 9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	top := a.Query(700, 0.5)
	if len(top) == 0 || top[0].Key != 9 {
		t.Errorf("merged (up) top = %+v, want key 9", top)
	}
	c := mk(600, 700, 9)
	d := mk(1, 100, 7)
	if err := c.Merge(d); err != nil {
		t.Fatal(err)
	}
	top = c.Query(700, 0.5)
	if len(top) == 0 || top[0].Key != 9 {
		t.Errorf("merged (down) top = %+v, want key 9", top)
	}
	// Empty merges.
	e := NewHeavyHittersK(m, 8)
	if err := c.Merge(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Merge(c); err != nil {
		t.Fatal(err)
	}
	if e.DecayedCount(700) <= 0 {
		t.Error("merge into empty lost mass")
	}
}

// TestDistinctApproxMerge covers the approximate distinct merge wrapper.
func TestDistinctApproxMerge(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), -1)
	a := NewDistinct(m, 256, 1.1, 256)
	b := NewDistinct(m, 256, 1.1, 256)
	keys, ts := decayedZipfStream(95, 8000, 600)
	exact := NewDistinctExact(m)
	for i := range keys {
		exact.Observe(keys[i], ts[i])
		if i%2 == 0 {
			a.Observe(keys[i], ts[i])
		} else {
			b.Observe(keys[i], ts[i])
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	tq := ts[len(ts)-1]
	got, want := a.Value(tq), exact.Value(tq)
	if got < 0.7*want || got > 1.3*want {
		t.Errorf("merged approx D = %v, exact %v", got, want)
	}
}
