package agg

import (
	"math"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

func TestCounterRoundTrip(t *testing.T) {
	for _, m := range []decay.Forward{
		decay.NewForward(decay.NewPoly(2), 100),
		decay.NewForward(decay.NewExp(0.25), -5),
		decay.NewForward(decay.None{}, 0),
		decay.NewForward(decay.LandmarkWindow{}, 7),
		decay.NewForward(decay.NewPolySum(1, 0, 2), 3),
	} {
		c := NewCounter(m)
		rng := core.NewRNG(1)
		for i := 0; i < 500; i++ {
			c.Observe(m.Landmark + 1 + 100*rng.Float64())
		}
		b, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: %v", m.Func, err)
		}
		var d Counter
		if err := d.UnmarshalBinary(b); err != nil {
			t.Fatalf("%v: %v", m.Func, err)
		}
		tq := m.Landmark + 200
		if !almostEq(d.Value(tq), c.Value(tq), 1e-12) {
			t.Errorf("%v: decoded %v, want %v", m.Func, d.Value(tq), c.Value(tq))
		}
		if d.N() != c.N() {
			t.Errorf("%v: N %d != %d", m.Func, d.N(), c.N())
		}
		// Decoded aggregates keep working and merging.
		d.Observe(tq)
		if err := d.Merge(c); err != nil {
			t.Errorf("%v: merge after decode: %v", m.Func, err)
		}
	}
}

func TestSumRoundTripWithRebasedState(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	s := NewSum(m)
	for i := 0; i < 3000; i++ {
		s.Observe(float64(i), 2.5) // forces internal rebasing
	}
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sum
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	const tq = 3000
	if !almostEq(d.Value(tq), s.Value(tq), 1e-9) {
		t.Errorf("decoded sum %v, want %v", d.Value(tq), s.Value(tq))
	}
	if !almostEq(d.Mean(), s.Mean(), 1e-9) {
		t.Errorf("decoded mean %v, want %v", d.Mean(), s.Mean())
	}
	if !almostEq(d.Variance(), s.Variance(), 1e-6) {
		t.Errorf("decoded variance %v, want %v", d.Variance(), s.Variance())
	}
}

func TestHeavyHittersRoundTrip(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), -1)
	h := NewHeavyHittersK(m, 32)
	keys, ts := decayedZipfStream(91, 10000, 300)
	for i := range keys {
		h.Observe(keys[i], ts[i])
	}
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d HeavyHitters
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	tq := ts[len(ts)-1]
	if !almostEq(d.DecayedCount(tq), h.DecayedCount(tq), 1e-9) {
		t.Fatalf("decoded C %v, want %v", d.DecayedCount(tq), h.DecayedCount(tq))
	}
	a, bq := h.Query(tq, 0.05), d.Query(tq, 0.05)
	if len(a) != len(bq) {
		t.Fatalf("decoded HH count %d, want %d", len(bq), len(a))
	}
	for i := range a {
		if a[i].Key != bq[i].Key || !almostEq(a[i].Count, bq[i].Count, 1e-9) {
			t.Errorf("decoded HH %d: %+v vs %+v", i, bq[i], a[i])
		}
	}
	// Decoded summaries merge with live ones.
	if err := d.Merge(h); err != nil {
		t.Errorf("merge after decode: %v", err)
	}
}

func TestQuantilesRoundTrip(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.01), 0)
	q := NewQuantiles(m, 1024, 0.05)
	rng := core.NewRNG(2)
	for i := 0; i < 8000; i++ {
		q.Observe(uint64(rng.Intn(1024)), float64(i)*0.01)
	}
	b, err := q.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Quantiles
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		if d.Quantile(phi) != q.Quantile(phi) {
			t.Errorf("decoded quantile(%v) = %d, want %d", phi, d.Quantile(phi), q.Quantile(phi))
		}
	}
	if !almostEq(d.DecayedCount(80), q.DecayedCount(80), 1e-9) {
		t.Errorf("decoded C %v, want %v", d.DecayedCount(80), q.DecayedCount(80))
	}
}

func TestMinMaxRoundTrip(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.1), 0)
	mx, mn := NewMax(m), NewMin(m)
	ts, vs := randomStream(92, 500, 1, 300)
	for i := range ts {
		mx.Observe(ts[i], vs[i])
		mn.Observe(ts[i], vs[i])
	}
	bx, err := mx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dx Max
	if err := dx.UnmarshalBinary(bx); err != nil {
		t.Fatal(err)
	}
	if !almostEq(dx.Value(400), mx.Value(400), 1e-12) {
		t.Errorf("decoded max %v, want %v", dx.Value(400), mx.Value(400))
	}
	bn, err := mn.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dn Min
	if err := dn.UnmarshalBinary(bn); err != nil {
		t.Fatal(err)
	}
	if !almostEq(dn.Value(400), mn.Value(400), 1e-12) {
		t.Errorf("decoded min %v, want %v", dn.Value(400), mn.Value(400))
	}
	// Tags are distinct: a Max encoding is not a Min.
	if err := dn.UnmarshalBinary(bx); err == nil {
		t.Error("Min accepted a Max encoding")
	}
	// Empty round trip.
	var emptyMax Max
	eb, err := NewMax(m).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := emptyMax.UnmarshalBinary(eb); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := emptyMax.Arg(); ok {
		t.Error("decoded empty Max claims a value")
	}
}

func TestDistinctExactRoundTrip(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), -1)
	d := NewDistinctExact(m)
	keys, ts := decayedZipfStream(93, 5000, 400)
	for i := range keys {
		d.Observe(keys[i], ts[i])
	}
	b, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dd DistinctExact
	if err := dd.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	tq := ts[len(ts)-1]
	if !almostEq(dd.Value(tq), d.Value(tq), 1e-12) {
		t.Errorf("decoded D %v, want %v", dd.Value(tq), d.Value(tq))
	}
	if dd.Keys() != d.Keys() {
		t.Errorf("decoded keys %d, want %d", dd.Keys(), d.Keys())
	}
	if err := dd.Merge(d); err != nil {
		t.Errorf("merge after decode: %v", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var c Counter
	var s Sum
	var h HeavyHitters
	var q Quantiles
	for _, b := range [][]byte{nil, {0xff}, {tagCounter}, []byte("hello world")} {
		if err := c.UnmarshalBinary(b); err == nil {
			t.Errorf("Counter accepted %v", b)
		}
		if err := s.UnmarshalBinary(b); err == nil {
			t.Errorf("Sum accepted %v", b)
		}
		if err := h.UnmarshalBinary(b); err == nil {
			t.Errorf("HeavyHitters accepted %v", b)
		}
		if err := q.UnmarshalBinary(b); err == nil {
			t.Errorf("Quantiles accepted %v", b)
		}
	}
	// Cross-type confusion is rejected by tag.
	cnt := NewCounter(decay.NewForward(decay.NewPoly(1), 0))
	cb, _ := cnt.MarshalBinary()
	if err := s.UnmarshalBinary(cb); err == nil {
		t.Error("Sum accepted a Counter encoding")
	}
}

func TestDecodedEmptyAggregates(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 0)
	c := NewCounter(m)
	b, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Counter
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if d.Value(10) != 0 || d.N() != 0 {
		t.Errorf("decoded empty counter: %v, %d", d.Value(10), d.N())
	}
	s := NewSum(m)
	sb, _ := s.MarshalBinary()
	var ds Sum
	if err := ds.UnmarshalBinary(sb); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ds.Mean()) {
		t.Errorf("decoded empty sum mean = %v, want NaN", ds.Mean())
	}
}
