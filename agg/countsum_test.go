package agg

import (
	"math"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// example1 is the stream of Example 1/2 of the paper.
var example1 = []struct{ ti, v float64 }{
	{105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4},
}

func example1Model() decay.Forward {
	return decay.NewForward(decay.NewPoly(2), 100)
}

// TestExample2CountSumAverage reproduces Example 2 of the paper:
// C = 1.63, S = 9.67, A = S/C ≈ 5.93.
func TestExample2CountSumAverage(t *testing.T) {
	s := NewSum(example1Model())
	for _, it := range example1 {
		s.Observe(it.ti, it.v)
	}
	const tq = 110
	if got := s.Count(tq); !almostEq(got, 1.63, 1e-12) {
		t.Errorf("C = %v, want 1.63", got)
	}
	if got := s.Value(tq); !almostEq(got, 9.67, 1e-12) {
		t.Errorf("S = %v, want 9.67", got)
	}
	if got, want := s.Mean(), 9.67/1.63; !almostEq(got, want, 1e-12) {
		t.Errorf("A = %v, want %v", got, want)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
}

// TestMeanTimeInvariant checks the paper's observation that the decayed
// average does not vary with the query time, and that a constant stream
// averages to the constant.
func TestMeanTimeInvariant(t *testing.T) {
	s := NewSum(example1Model())
	for _, it := range example1 {
		s.Observe(it.ti, it.v)
	}
	m := s.Mean()
	for _, tq := range []float64{110, 200, 1e6} {
		if got := s.Value(tq) / s.Count(tq); !almostEq(got, m, 1e-9) {
			t.Errorf("S/C at t=%v is %v, Mean() is %v", tq, got, m)
		}
	}

	cons := NewSum(decay.NewForward(decay.NewExp(0.1), 0))
	for ti := 1.0; ti <= 100; ti++ {
		cons.Observe(ti, 7.5)
	}
	if got := cons.Mean(); !almostEq(got, 7.5, 1e-9) {
		t.Errorf("mean of constant stream = %v, want 7.5", got)
	}
	if got := cons.Variance(); got > 1e-9 {
		t.Errorf("variance of constant stream = %v, want 0", got)
	}
}

// bruteCount computes the decayed count directly from Definition 5.
func bruteCount(m decay.Forward, ts []float64, t float64) float64 {
	var c float64
	for _, ti := range ts {
		c += m.Weight(ti, t)
	}
	return c
}

func bruteSum(m decay.Forward, ts, vs []float64, t float64) float64 {
	var s float64
	for i, ti := range ts {
		s += m.Weight(ti, t) * vs[i]
	}
	return s
}

func randomStream(seed uint64, n int, t0, span float64) (ts, vs []float64) {
	rng := core.NewRNG(seed)
	ts = make([]float64, n)
	vs = make([]float64, n)
	for i := range ts {
		ts[i] = t0 + span*rng.Float64()
		vs[i] = -5 + 15*rng.Float64()
	}
	return
}

func TestCounterMatchesBruteForceAcrossModels(t *testing.T) {
	ts, vs := randomStream(41, 5000, 100, 900)
	models := []decay.Forward{
		decay.NewForward(decay.None{}, 100),
		decay.NewForward(decay.NewPoly(1), 100),
		decay.NewForward(decay.NewPoly(2), 100),
		decay.NewForward(decay.NewExp(0.01), 100),
		decay.NewForward(decay.LandmarkWindow{}, 100),
		decay.NewForward(decay.NewPolySum(1, 0, 3), 100),
	}
	for _, m := range models {
		c := NewCounter(m)
		s := NewSum(m)
		for i := range ts {
			c.Observe(ts[i])
			s.Observe(ts[i], vs[i])
		}
		for _, tq := range []float64{1000, 1500} {
			if got, want := c.Value(tq), bruteCount(m, ts, tq); !almostEq(got, want, 1e-9) {
				t.Errorf("%v: count at %v = %v, want %v", m.Func, tq, got, want)
			}
			if got, want := s.Value(tq), bruteSum(m, ts, vs, tq); !almostEq(got, want, 1e-9) {
				t.Errorf("%v: sum at %v = %v, want %v", m.Func, tq, got, want)
			}
		}
	}
}

// TestExpDecayLongStreamNoOverflow runs exponential decay over a stream
// whose raw static weights span e^10000 — far beyond float64 — and checks
// the automatic rebasing keeps results exact.
func TestExpDecayLongStreamNoOverflow(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	c := NewCounter(m)
	s := NewSum(m)
	for ti := 1.0; ti <= 10000; ti++ {
		c.Observe(ti)
		s.Observe(ti, 2)
	}
	// Exponentially decayed count at t=10000 with α=1 and unit spacing:
	// Σ_{a=0..9999} e^(−a) = 1/(1−e^−1) (up to negligible tail).
	want := 1 / (1 - math.Exp(-1))
	if got := c.Value(10000); !almostEq(got, want, 1e-6) {
		t.Errorf("count = %v, want %v", got, want)
	}
	if got := s.Value(10000); !almostEq(got, 2*want, 1e-6) {
		t.Errorf("sum = %v, want %v", got, 2*want)
	}
	if got := s.Mean(); !almostEq(got, 2, 1e-9) {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestOrderInsensitivity(t *testing.T) {
	ts, vs := randomStream(42, 2000, 50, 500)
	m := decay.NewForward(decay.NewPoly(2), 50)
	a, b := NewSum(m), NewSum(m)
	for i := range ts {
		a.Observe(ts[i], vs[i])
	}
	perm := core.NewRNG(43).Perm(len(ts))
	for _, i := range perm {
		b.Observe(ts[i], vs[i])
	}
	if !almostEq(a.Value(600), b.Value(600), 1e-9) {
		t.Errorf("order sensitivity: %v vs %v", a.Value(600), b.Value(600))
	}
	if !almostEq(a.Variance(), b.Variance(), 1e-9) {
		t.Errorf("variance order sensitivity: %v vs %v", a.Variance(), b.Variance())
	}
}

func TestMergeEqualsSingleStream(t *testing.T) {
	ts, vs := randomStream(44, 3000, 10, 800)
	m := decay.NewForward(decay.NewExp(0.02), 10)
	whole := NewSum(m)
	parts := []*Sum{NewSum(m), NewSum(m), NewSum(m)}
	for i := range ts {
		whole.Observe(ts[i], vs[i])
		parts[i%3].Observe(ts[i], vs[i])
	}
	merged := NewSum(m)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, tq := range []float64{810, 2000} {
		if !almostEq(whole.Value(tq), merged.Value(tq), 1e-9) {
			t.Errorf("t=%v: merged %v != single %v", tq, merged.Value(tq), whole.Value(tq))
		}
	}
	if !almostEq(whole.Mean(), merged.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", merged.Mean(), whole.Mean())
	}
	if whole.N() != merged.N() {
		t.Errorf("merged N %d != %d", merged.N(), whole.N())
	}
}

func TestMergeModelMismatch(t *testing.T) {
	a := NewCounter(decay.NewForward(decay.NewPoly(2), 0))
	b := NewCounter(decay.NewForward(decay.NewPoly(3), 0))
	if err := a.Merge(b); err == nil {
		t.Error("expected model-mismatch error for different exponents")
	}
	c := NewCounter(decay.NewForward(decay.NewPoly(2), 5))
	if err := a.Merge(c); err == nil {
		t.Error("expected model-mismatch error for different landmarks")
	}
	d := NewSum(decay.NewForward(decay.NewExp(1), 0))
	e := NewSum(decay.NewForward(decay.NewExp(2), 0))
	if err := d.Merge(e); err == nil {
		t.Error("expected model-mismatch error for Sum")
	}
}

func TestShiftLandmarkInvariance(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.5), 100)
	s := NewSum(m)
	ts, vs := randomStream(45, 1000, 100, 300)
	for i := range ts {
		s.Observe(ts[i], vs[i])
	}
	before := s.Value(500)
	if err := s.ShiftLandmark(400); err != nil {
		t.Fatal(err)
	}
	if got := s.Model().Landmark; got != 400 {
		t.Fatalf("landmark = %v, want 400", got)
	}
	if got := s.Value(500); !almostEq(got, before, 1e-9) {
		t.Errorf("value after shift = %v, want %v", got, before)
	}
	// Observations continue seamlessly after the shift.
	s.Observe(450, 1)

	p := NewCounter(decay.NewForward(decay.NewPoly(2), 100))
	if err := p.ShiftLandmark(200); err == nil {
		t.Error("polynomial decay must refuse landmark shifts")
	} else if err.Error() == "" {
		t.Error("empty error message")
	}
}

func TestVarianceMatchesBruteForce(t *testing.T) {
	ts, vs := randomStream(46, 4000, 0, 100)
	m := decay.NewForward(decay.NewPoly(2), 0)
	s := NewSum(m)
	for i := range ts {
		s.Observe(ts[i], vs[i])
	}
	// Brute-force weighted variance at t=100.
	const tq = 100
	var wsum, mean float64
	for i := range ts {
		wsum += m.Weight(ts[i], tq)
		mean += m.Weight(ts[i], tq) * vs[i]
	}
	mean /= wsum
	var v float64
	for i := range ts {
		v += m.Weight(ts[i], tq) * (vs[i] - mean) * (vs[i] - mean)
	}
	v /= wsum
	if got := s.Variance(); !almostEq(got, v, 1e-6) {
		t.Errorf("variance = %v, want %v", got, v)
	}
	if got := s.StdDev(); !almostEq(got, math.Sqrt(v), 1e-6) {
		t.Errorf("stddev = %v, want %v", got, math.Sqrt(v))
	}
}

func TestEmptyAggregates(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 0)
	c := NewCounter(m)
	if got := c.Value(10); got != 0 {
		t.Errorf("empty counter = %v", got)
	}
	s := NewSum(m)
	if got := s.Value(10); got != 0 {
		t.Errorf("empty sum = %v", got)
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Variance()) {
		t.Errorf("empty mean/variance should be NaN, got %v/%v", s.Mean(), s.Variance())
	}
	c.ObserveN(5, 0)  // ignored
	c.ObserveN(5, -1) // ignored
	if c.Value(10) != 0 || c.N() != 0 {
		t.Errorf("non-positive ObserveN must be ignored")
	}
}

func TestLandmarkWindowAggregation(t *testing.T) {
	// Landmark-window decay counts everything after L at full weight —
	// plain aggregation (§III-C).
	m := decay.NewForward(decay.LandmarkWindow{}, 100)
	s := NewSum(m)
	s.Observe(99, 10) // before the landmark: weight 0
	s.Observe(101, 3)
	s.Observe(150, 4)
	if got := s.Value(200); !almostEq(got, 7, 1e-12) {
		t.Errorf("landmark sum = %v, want 7", got)
	}
	if got := s.Count(200); !almostEq(got, 2, 1e-12) {
		t.Errorf("landmark count = %v, want 2", got)
	}
}

func TestOutOfOrderAndFutureQueries(t *testing.T) {
	// §VI-B: nothing relies on arrival order; queries with t below the max
	// timestamp can yield weights above 1 ("historical queries").
	m := decay.NewForward(decay.NewPoly(2), 0)
	c := NewCounter(m)
	c.Observe(100)
	c.Observe(50) // late arrival
	got := c.Value(100)
	want := 1 + m.Weight(50, 100)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("count = %v, want %v", got, want)
	}
	// Historical query at t=50: the t=100 item weighs (100/50)² = 4.
	if got := c.Value(50); !almostEq(got, 4+1, 1e-12) {
		t.Errorf("historical count = %v, want 5", got)
	}
}
