package agg

import (
	"math"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// bruteExtreme computes the decayed min/max directly from Definition 6.
func bruteExtreme(m decay.Forward, ts, vs []float64, t float64, max bool) float64 {
	best := math.Inf(1)
	if max {
		best = math.Inf(-1)
	}
	for i := range ts {
		x := m.StaticWeight(ts[i]) * vs[i] / m.Normalizer(t)
		if max && x > best || !max && x < best {
			best = x
		}
	}
	return best
}

func TestMinMaxMatchBruteForce(t *testing.T) {
	ts, vs := randomStream(51, 3000, 10, 500) // values in [-5, 10]
	models := []decay.Forward{
		decay.NewForward(decay.None{}, 10),
		decay.NewForward(decay.NewPoly(2), 10),
		decay.NewForward(decay.NewExp(0.005), 10),
	}
	for _, m := range models {
		mx, mn := NewMax(m), NewMin(m)
		for i := range ts {
			mx.Observe(ts[i], vs[i])
			mn.Observe(ts[i], vs[i])
		}
		const tq = 600
		if got, want := mx.Value(tq), bruteExtreme(m, ts, vs, tq, true); !almostEq(got, want, 1e-9) {
			t.Errorf("%v: max = %v, want %v", m.Func, got, want)
		}
		if got, want := mn.Value(tq), bruteExtreme(m, ts, vs, tq, false); !almostEq(got, want, 1e-9) {
			t.Errorf("%v: min = %v, want %v", m.Func, got, want)
		}
	}
}

func TestMinMaxSignHandling(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(1), 0)
	mx, mn := NewMax(m), NewMin(m)
	// g(ti) = ti. Items: (10, -2) → -20; (5, 3) → 15; (2, -8) → -16.
	for _, it := range []struct{ ti, v float64 }{{10, -2}, {5, 3}, {2, -8}} {
		mx.Observe(it.ti, it.v)
		mn.Observe(it.ti, it.v)
	}
	const tq = 10 // normalizer 10
	if got := mx.Value(tq); !almostEq(got, 1.5, 1e-12) {
		t.Errorf("max = %v, want 1.5 (item (5,3))", got)
	}
	if ti, v, ok := mx.Arg(); !ok || ti != 5 || v != 3 {
		t.Errorf("argmax = (%v,%v,%v), want (5,3,true)", ti, v, ok)
	}
	if got := mn.Value(tq); !almostEq(got, -2, 1e-12) {
		t.Errorf("min = %v, want -2 (item (10,-2))", got)
	}
	if ti, v, ok := mn.Arg(); !ok || ti != 10 || v != -2 {
		t.Errorf("argmin = (%v,%v,%v), want (10,-2,true)", ti, v, ok)
	}
}

func TestMinMaxAllNegative(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.1), 0)
	mx := NewMax(m)
	for _, it := range []struct{ ti, v float64 }{{1, -5}, {2, -4}, {3, -10}} {
		mx.Observe(it.ti, it.v)
	}
	// g·v: -5e^0.1, -4e^0.2, -10e^0.3. Max = -4e^0.2.
	want := -4 * math.Exp(0.2) / math.Exp(0.3)
	if got := mx.Value(3); !almostEq(got, want, 1e-12) {
		t.Errorf("max = %v, want %v", got, want)
	}
}

func TestMinMaxZeroWeightAndZeroValue(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 100)
	mn := NewMin(m)
	mn.Observe(150, 4)
	mn.Observe(90, 7) // before landmark: decayed value 0 — the minimum here
	if got := mn.Value(200); got != 0 {
		t.Errorf("min = %v, want 0 (zero-weight item)", got)
	}
	mx := NewMax(m)
	mx.Observe(150, 0)
	mx.Observe(160, -1)
	if got := mx.Value(200); got != 0 {
		t.Errorf("max = %v, want 0 (zero value beats negatives)", got)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 0)
	if !math.IsNaN(NewMax(m).Value(10)) || !math.IsNaN(NewMin(m).Value(10)) {
		t.Error("empty min/max must be NaN")
	}
	if _, _, ok := NewMax(m).Arg(); ok {
		t.Error("empty Arg must report ok=false")
	}
}

func TestMinMaxMerge(t *testing.T) {
	ts, vs := randomStream(52, 2000, 0, 400)
	m := decay.NewForward(decay.NewExp(0.01), 0)
	whole := NewMax(m)
	a, b := NewMax(m), NewMax(m)
	for i := range ts {
		whole.Observe(ts[i], vs[i])
		if i%2 == 0 {
			a.Observe(ts[i], vs[i])
		} else {
			b.Observe(ts[i], vs[i])
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !almostEq(a.Value(500), whole.Value(500), 1e-12) {
		t.Errorf("merged max %v != single-stream %v", a.Value(500), whole.Value(500))
	}
	bad := NewMax(decay.NewForward(decay.NewExp(0.02), 0))
	if err := a.Merge(bad); err == nil {
		t.Error("expected model mismatch error")
	}
	mn := NewMin(m)
	mn.Observe(1, 1)
	mn2 := NewMin(m)
	mn2.Observe(2, -1)
	if err := mn.Merge(mn2); err != nil {
		t.Fatal(err)
	}
	if _, v, _ := mn.Arg(); v != -1 {
		t.Errorf("merged min arg v = %v, want -1", v)
	}
}

func TestMinMaxNoOverflowLongExpStream(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	mx := NewMax(m)
	rng := core.NewRNG(53)
	for ti := 1.0; ti <= 5000; ti++ {
		mx.Observe(ti, 1+rng.Float64())
	}
	got := mx.Value(5000)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("max overflowed: %v", got)
	}
	// The winner is one of the last few items; its decayed value is ≤ 2 and
	// at least e^{-1} of the largest value (≥ 1).
	if got < math.Exp(-2) || got > 2 {
		t.Errorf("max = %v, expected within [e^-2, 2]", got)
	}
	if ti, _, _ := mx.Arg(); ti < 4990 {
		t.Errorf("argmax at ti=%v, expected a recent item", ti)
	}
}

func TestMinMaxModelAccessors(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 7)
	if NewMax(m).Model() != m || NewMin(m).Model() != m {
		t.Error("Model() accessor mismatch")
	}
}
