package agg

import (
	"math"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
	"forwarddecay/sketch"
)

// DistinctExact computes the decayed distinct count of Definition 9 exactly:
// D = Σ_v max_{vᵢ=v} g(tᵢ−L)/g(t−L). It keeps the maximum log static weight
// per distinct key — linear space, useful as a reference and for moderate
// key cardinalities. For sublinear space use Distinct.
type DistinctExact struct {
	inputGuard
	model decay.Forward
	maxLW map[uint64]float64
}

// NewDistinctExact returns an exact decayed distinct counter.
func NewDistinctExact(m decay.Forward) *DistinctExact {
	return &DistinctExact{model: m, maxLW: make(map[uint64]float64)}
}

// Model returns the decay model.
func (d *DistinctExact) Model() decay.Forward { return d.model }

// Observe records one occurrence of key at timestamp ti. Non-finite
// timestamps are rejected (see Err).
func (d *DistinctExact) Observe(key uint64, ti float64) {
	if !IsFinite(ti) {
		d.reject("DistinctExact", "timestamp", ti)
		return
	}
	lw := d.model.LogStaticWeight(ti)
	if math.IsInf(lw, -1) {
		return
	}
	if m, ok := d.maxLW[key]; !ok || lw > m {
		d.maxLW[key] = lw
	}
}

// Value returns the decayed distinct count D at query time t.
func (d *DistinctExact) Value(t float64) float64 {
	logNorm := d.model.LogNormalizer(t)
	var s core.KahanSum
	// Accumulate in key order: map iteration order would otherwise make the
	// float sum run-to-run nondeterministic, breaking bit-exact comparisons
	// across restarts and epoch rollovers.
	for _, k := range sortedKeys(d.maxLW) {
		s.Add(core.ExpClamped(d.maxLW[k] - logNorm))
	}
	return s.Value()
}

// Keys returns the number of distinct keys seen (with non-zero weight).
func (d *DistinctExact) Keys() int { return len(d.maxLW) }

// Merge folds another exact counter over the same model into this one.
func (d *DistinctExact) Merge(o *DistinctExact) error {
	if !sameModel(d.model, o.model) {
		return errModelMismatch(d.model, o.model)
	}
	for k, lw := range o.maxLW {
		if m, ok := d.maxLW[k]; !ok || lw > m {
			d.maxLW[k] = lw
		}
	}
	return nil
}

// Distinct approximates the decayed distinct count of Definition 9 /
// Theorem 4 in sublinear space. Factoring out g(t−L), the quantity is the
// dominance norm Σ_v max_v g(tᵢ−L) of the static weights, which the
// layered-KMV estimator in the sketch package approximates (standing in for
// the Pavan–Tirthapura range-efficient F₀ algorithm the paper cites — see
// DESIGN.md for the substitution argument).
type Distinct struct {
	inputGuard
	model decay.Forward
	dom   *sketch.Dominance
}

// NewDistinct returns an approximate decayed distinct counter. kmvSize
// controls per-level accuracy (≈1/√kmvSize relative error per level; 1024
// is a good default), base the level granularity (1.05 default), maxLevels
// the retained weight range (1024 default).
func NewDistinct(m decay.Forward, kmvSize int, base float64, maxLevels int) *Distinct {
	return &Distinct{model: m, dom: sketch.NewDominance(kmvSize, base, maxLevels)}
}

// Model returns the decay model.
func (d *Distinct) Model() decay.Forward { return d.model }

// Observe records one occurrence of key at timestamp ti. Non-finite
// timestamps are rejected (see Err).
func (d *Distinct) Observe(key uint64, ti float64) {
	if !IsFinite(ti) {
		d.reject("Distinct", "timestamp", ti)
		return
	}
	d.dom.Update(key, d.model.LogStaticWeight(ti))
}

// Value returns the estimated decayed distinct count D at query time t.
func (d *Distinct) Value(t float64) float64 {
	return math.Exp(d.dom.LogEstimate() - d.model.LogNormalizer(t))
}

// Merge folds another counter (same model and parameters) into this one.
func (d *Distinct) Merge(o *Distinct) error {
	if !sameModel(d.model, o.model) {
		return errModelMismatch(d.model, o.model)
	}
	d.dom.Merge(o.dom)
	return nil
}

// SizeBytes reports the summary's memory footprint.
func (d *Distinct) SizeBytes() int { return 16 + d.dom.SizeBytes() }
