package agg

import (
	"runtime"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// This file provides thread-per-shard wrappers around the decayed
// aggregates, mirroring the gsql parallel runtime's LFTA/HFTA split for
// standalone use: each shard goroutine owns a private aggregate (the
// low-level state), observations travel over batched bounded channels, and
// queries merge the shard partials into a fresh aggregate (the high-level
// combine) using the types' existing Merge support.
//
// Because forward-decay state is a function of the static weights only —
// fixed at arrival, insensitive to order — the merged result matches a
// serial aggregate over the same observations up to floating-point
// summation order for Counter/Sum (≈1 ulp per merge) and up to the
// documented merge bounds for the sketches. Key-routed sketches
// (heavy hitters, distinct) place all occurrences of a key on one shard,
// which keeps per-key error no worse than serial.
//
// The wrappers are single-producer: one goroutine calls Observe*/queries/
// Close. The shard goroutines are internal.

// ShardOptions configure a sharded aggregate wrapper.
type ShardOptions struct {
	// Shards is the number of worker goroutines (default GOMAXPROCS).
	Shards int
	// BatchSize is the number of observations shipped per channel send
	// (default 512).
	BatchSize int
	// BufferedBatches bounds each worker's queue, providing backpressure
	// (default 4).
	BufferedBatches int
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 512
	}
	if o.BufferedBatches <= 0 {
		o.BufferedBatches = 4
	}
	return o
}

// shardObs is one observation in flight: a key (ignored by keyless
// aggregates), a timestamp and a value/weight.
type shardObs struct {
	key   uint64
	ti, v float64
}

// obsMsg carries a batch and/or a barrier ack request to a worker.
type obsMsg struct {
	batch []shardObs
	ack   chan struct{}
}

// obsWorker is one shard goroutine's channel set.
type obsWorker struct {
	work chan obsMsg
	free chan []shardObs
	done chan struct{}
}

// sharder implements the routing, batching and lifecycle shared by every
// typed wrapper. apply is invoked on the owning shard's goroutine only.
type sharder struct {
	workers []obsWorker
	pending [][]shardObs
	opts    ShardOptions
	byKey   bool
	rr      int
	closed  bool
}

// newSharder spawns the shard goroutines. apply(shard, obs) must touch only
// shard-local state.
func newSharder(opts ShardOptions, byKey bool, apply func(shard int, o shardObs)) *sharder {
	opts = opts.withDefaults()
	s := &sharder{
		workers: make([]obsWorker, opts.Shards),
		pending: make([][]shardObs, opts.Shards),
		opts:    opts,
		byKey:   byKey,
	}
	for i := range s.workers {
		w := obsWorker{
			work: make(chan obsMsg, opts.BufferedBatches),
			free: make(chan []shardObs, opts.BufferedBatches),
			done: make(chan struct{}),
		}
		s.workers[i] = w
		go func(shard int, w obsWorker) {
			defer close(w.done)
			for msg := range w.work {
				for _, o := range msg.batch {
					apply(shard, o)
				}
				if msg.batch != nil {
					select {
					case w.free <- msg.batch[:0]:
					default:
					}
				}
				if msg.ack != nil {
					msg.ack <- struct{}{}
				}
			}
		}(i, w)
	}
	return s
}

// observe routes one observation. No-op after close.
func (s *sharder) observe(o shardObs) {
	if s.closed {
		return
	}
	var shard int
	if s.byKey {
		shard = int(core.Mix64(o.key) % uint64(len(s.workers)))
	} else {
		shard = s.rr
		s.rr++
		if s.rr == len(s.workers) {
			s.rr = 0
		}
	}
	b := s.pending[shard]
	if b == nil {
		select {
		case b = <-s.workers[shard].free:
		default:
			b = make([]shardObs, 0, s.opts.BatchSize)
		}
	}
	b = append(b, o)
	if len(b) >= s.opts.BatchSize {
		s.workers[shard].work <- obsMsg{batch: b}
		b = nil
	}
	s.pending[shard] = b
}

// sync ships all partial batches and waits for every worker to drain its
// queue. On return the shard states are quiescent and safe for the caller
// to read (the ack receive establishes the happens-before edge).
func (s *sharder) sync() {
	if s.closed {
		return
	}
	acks := make([]chan struct{}, len(s.workers))
	for i := range s.workers {
		ack := make(chan struct{}, 1)
		acks[i] = ack
		s.workers[i].work <- obsMsg{batch: s.pending[i], ack: ack}
		s.pending[i] = nil
	}
	for _, ack := range acks {
		<-ack
	}
}

// close drains and stops the workers. Idempotent.
func (s *sharder) close() {
	if s.closed {
		return
	}
	s.sync()
	s.closed = true
	for i := range s.workers {
		close(s.workers[i].work)
		<-s.workers[i].done
	}
}

// ShardedCounter distributes a decayed Counter across shard goroutines.
// Queries merge the shard partials; results match a serial Counter up to
// floating-point summation order.
type ShardedCounter struct {
	model  decay.Forward
	shards []*Counter
	s      *sharder
}

// NewShardedCounter returns a sharded decayed counter under the model.
func NewShardedCounter(m decay.Forward, opts ShardOptions) *ShardedCounter {
	c := &ShardedCounter{model: m}
	opts = opts.withDefaults()
	c.shards = make([]*Counter, opts.Shards)
	for i := range c.shards {
		c.shards[i] = NewCounter(m)
	}
	c.s = newSharder(opts, false, func(shard int, o shardObs) {
		c.shards[shard].ObserveN(o.ti, o.v)
	})
	return c
}

// Observe records one item with timestamp ti.
func (c *ShardedCounter) Observe(ti float64) { c.ObserveN(ti, 1) }

// ObserveN records n simultaneous items with timestamp ti.
func (c *ShardedCounter) ObserveN(ti, n float64) { c.s.observe(shardObs{ti: ti, v: n}) }

// Snapshot drains the shards and returns their merged partial as a regular
// Counter.
func (c *ShardedCounter) Snapshot() *Counter {
	c.s.sync()
	m := NewCounter(c.model)
	for _, sh := range c.shards {
		if err := m.Merge(sh); err != nil {
			panic("agg: sharded counter shards diverged: " + err.Error())
		}
	}
	return m
}

// Value returns the decayed count at query time t.
func (c *ShardedCounter) Value(t float64) float64 { return c.Snapshot().Value(t) }

// Close stops the shard goroutines. Observe calls after Close are no-ops.
func (c *ShardedCounter) Close() { c.s.close() }

// ShardedSum distributes a decayed Sum (count/sum/average/variance) across
// shard goroutines.
type ShardedSum struct {
	model  decay.Forward
	shards []*Sum
	s      *sharder
}

// NewShardedSum returns a sharded decayed sum aggregate under the model.
func NewShardedSum(m decay.Forward, opts ShardOptions) *ShardedSum {
	a := &ShardedSum{model: m}
	opts = opts.withDefaults()
	a.shards = make([]*Sum, opts.Shards)
	for i := range a.shards {
		a.shards[i] = NewSum(m)
	}
	a.s = newSharder(opts, false, func(shard int, o shardObs) {
		a.shards[shard].Observe(o.ti, o.v)
	})
	return a
}

// Observe records an item with timestamp ti and value v.
func (a *ShardedSum) Observe(ti, v float64) { a.s.observe(shardObs{ti: ti, v: v}) }

// Snapshot drains the shards and returns their merged partial as a regular
// Sum, from which Count/Value/Mean/Variance are available.
func (a *ShardedSum) Snapshot() *Sum {
	a.s.sync()
	m := NewSum(a.model)
	for _, sh := range a.shards {
		if err := m.Merge(sh); err != nil {
			panic("agg: sharded sum shards diverged: " + err.Error())
		}
	}
	return m
}

// Value returns the decayed sum at query time t.
func (a *ShardedSum) Value(t float64) float64 { return a.Snapshot().Value(t) }

// Mean returns the decayed average.
func (a *ShardedSum) Mean() float64 { return a.Snapshot().Mean() }

// Close stops the shard goroutines. Observe calls after Close are no-ops.
func (a *ShardedSum) Close() { a.s.close() }

// ShardedHeavyHitters distributes a decayed heavy-hitter summary across
// shard goroutines. Observations are routed by key, so each key's decayed
// count lives whole on one shard and the merged summary's per-key error is
// no worse than a serial summary of the same counter budget.
type ShardedHeavyHitters struct {
	model  decay.Forward
	k      int
	shards []*HeavyHitters
	s      *sharder
}

// NewShardedHeavyHittersK returns a sharded φ-heavy-hitter summary with k
// counters per shard (ε = 1/k per shard).
func NewShardedHeavyHittersK(m decay.Forward, k int, opts ShardOptions) *ShardedHeavyHitters {
	h := &ShardedHeavyHitters{model: m, k: k}
	opts = opts.withDefaults()
	h.shards = make([]*HeavyHitters, opts.Shards)
	for i := range h.shards {
		h.shards[i] = NewHeavyHittersK(m, k)
	}
	h.s = newSharder(opts, true, func(shard int, o shardObs) {
		h.shards[shard].ObserveN(o.key, o.ti, o.v)
	})
	return h
}

// Observe records one occurrence of key at timestamp ti.
func (h *ShardedHeavyHitters) Observe(key uint64, ti float64) { h.ObserveN(key, ti, 1) }

// ObserveN records n simultaneous occurrences of key at timestamp ti.
func (h *ShardedHeavyHitters) ObserveN(key uint64, ti, n float64) {
	h.s.observe(shardObs{key: key, ti: ti, v: n})
}

// Snapshot drains the shards and returns their merged partial as a regular
// HeavyHitters summary (k counters; merge bounds per HeavyHitters.Merge).
func (h *ShardedHeavyHitters) Snapshot() *HeavyHitters {
	h.s.sync()
	m := NewHeavyHittersK(h.model, h.k)
	for _, sh := range h.shards {
		if err := m.Merge(sh); err != nil {
			panic("agg: sharded heavy hitters shards diverged: " + err.Error())
		}
	}
	return m
}

// Query returns the φ-heavy hitters at query time t.
func (h *ShardedHeavyHitters) Query(t, phi float64) []Item { return h.Snapshot().Query(t, phi) }

// Close stops the shard goroutines. Observe calls after Close are no-ops.
func (h *ShardedHeavyHitters) Close() { h.s.close() }

// ShardedDistinct distributes an approximate decayed distinct counter
// across shard goroutines, routed by key. The layered-KMV merge is a set
// union, so the merged estimate equals a serial sketch over the same keys.
type ShardedDistinct struct {
	model     decay.Forward
	kmvSize   int
	base      float64
	maxLevels int
	shards    []*Distinct
	s         *sharder
}

// NewShardedDistinct returns a sharded approximate decayed distinct
// counter; kmvSize/base/maxLevels as in NewDistinct.
func NewShardedDistinct(m decay.Forward, kmvSize int, base float64, maxLevels int, opts ShardOptions) *ShardedDistinct {
	d := &ShardedDistinct{model: m, kmvSize: kmvSize, base: base, maxLevels: maxLevels}
	opts = opts.withDefaults()
	d.shards = make([]*Distinct, opts.Shards)
	for i := range d.shards {
		d.shards[i] = NewDistinct(m, kmvSize, base, maxLevels)
	}
	d.s = newSharder(opts, true, func(shard int, o shardObs) {
		d.shards[shard].Observe(o.key, o.ti)
	})
	return d
}

// Observe records one occurrence of key at timestamp ti.
func (d *ShardedDistinct) Observe(key uint64, ti float64) {
	d.s.observe(shardObs{key: key, ti: ti})
}

// Snapshot drains the shards and returns their merged partial as a regular
// Distinct sketch.
func (d *ShardedDistinct) Snapshot() *Distinct {
	d.s.sync()
	m := NewDistinct(d.model, d.kmvSize, d.base, d.maxLevels)
	for _, sh := range d.shards {
		if err := m.Merge(sh); err != nil {
			panic("agg: sharded distinct shards diverged: " + err.Error())
		}
	}
	return m
}

// Value returns the estimated decayed distinct count at query time t.
func (d *ShardedDistinct) Value(t float64) float64 { return d.Snapshot().Value(t) }

// Close stops the shard goroutines. Observe calls after Close are no-ops.
func (d *ShardedDistinct) Close() { d.s.close() }
