package agg

import "forwarddecay/decay"

// logWeightMemo is a one-slot cache of model.LogStaticWeight(ti), the
// per-observation log decay weight. LogStaticWeight is a pure function of
// (ti, model), so replaying the cached value for a repeated timestamp is
// bit-for-bit identical to recomputing it; streaming inputs arrive in
// timestamp runs (every tuple of a packet batch, often a whole frame,
// shares one arrival time), which makes a single slot enough to amortize
// the weight computation across the run.
//
// The cache is derived state: it must be invalidated whenever the model
// changes (ShiftLandmark, checkpoint restore) and is never serialized.
type logWeightMemo struct {
	ti float64
	lw float64
	ok bool
}

// weight returns model.LogStaticWeight(ti), cached across consecutive
// calls with the same ti.
func (m *logWeightMemo) weight(model decay.Forward, ti float64) float64 {
	if m.ok && m.ti == ti {
		return m.lw
	}
	m.ti, m.lw, m.ok = ti, model.LogStaticWeight(ti), true
	return m.lw
}

// invalidate drops the cached weight; the next weight call recomputes.
func (m *logWeightMemo) invalidate() { m.ok = false }
