package agg_test

import (
	"encoding"
	"testing"

	"forwarddecay/agg"
	"forwarddecay/decay"
)

func fuzzModel() decay.Forward { return decay.NewForward(decay.NewPoly(2), 0) }

// aggDecoders returns a fresh instance of every aggregate with a binary
// codec, keyed by name.
func aggDecoders() map[string]encoding.BinaryUnmarshaler {
	m := fuzzModel()
	return map[string]encoding.BinaryUnmarshaler{
		"counter":       agg.NewCounter(m),
		"sum":           agg.NewSum(m),
		"heavyhitters":  agg.NewHeavyHittersK(m, 16),
		"max":           agg.NewMax(m),
		"min":           agg.NewMin(m),
		"distinctexact": agg.NewDistinctExact(m),
		"quantiles":     agg.NewQuantiles(m, 1024, 0.05),
	}
}

// FuzzAggDecode drives every aggregate decoder with arbitrary bytes:
// malformed input must error, never panic, and never trust a forged length
// field for its allocation size. Accepted input must leave a readable
// aggregate.
func FuzzAggDecode(f *testing.F) {
	f.Add([]byte{})
	// Seed with valid encodings of populated aggregates.
	m := fuzzModel()
	seeds := []encoding.BinaryMarshaler{}
	c := agg.NewCounter(m)
	s := agg.NewSum(m)
	h := agg.NewHeavyHittersK(m, 16)
	mx := agg.NewMax(m)
	mn := agg.NewMin(m)
	d := agg.NewDistinctExact(m)
	q := agg.NewQuantiles(m, 1024, 0.05)
	for i := 0; i < 200; i++ {
		ts := float64(i % 50)
		c.Observe(ts)
		s.Observe(ts, float64(i%7))
		h.Observe(uint64(i%23), ts)
		mx.Observe(ts, float64(i%97))
		mn.Observe(ts, float64(i%89))
		d.Observe(uint64(i%31), ts)
		q.Observe(uint64(i%61), ts)
	}
	seeds = append(seeds, c, s, h, mx, mn, d, q)
	for i, enc := range seeds {
		b, err := enc.MarshalBinary()
		if err != nil {
			f.Fatalf("seeding %d: %v", i, err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for name, dec := range aggDecoders() {
			if err := dec.UnmarshalBinary(data); err != nil {
				continue
			}
			// Exercise the read path of whatever decoded successfully.
			switch a := dec.(type) {
			case *agg.Counter:
				a.Value(60)
			case *agg.Sum:
				a.Value(60)
			case *agg.HeavyHitters:
				a.Estimate(1, 60)
			case *agg.Max:
				a.Value(60)
			case *agg.Min:
				a.Value(60)
			case *agg.DistinctExact:
				a.Value(60)
			case *agg.Quantiles:
				a.Quantile(0.5)
			default:
				t.Fatalf("unhandled decoder %s", name)
			}
		}
	})
}
