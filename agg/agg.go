// Package agg implements the time-decayed aggregates of Section IV of the
// forward-decay paper: decayed count, sum, average and variance, min and
// max, heavy hitters, quantiles, and count-distinct — each computable in the
// same asymptotic resources as its undecayed counterpart.
//
// Every aggregate follows the paper's key implementation idea: maintain
// state in terms of the static weights g(tᵢ−L), which are fixed at arrival,
// and divide by the normalizer g(t−L) only at query time. State is kept
// under an automatic log-domain scale: whenever a new static weight would
// overflow the current scale, the accumulated state is linearly rescaled
// onto a fresh landmark — the continuous version of the rescaling pass
// described in §VI-A — so exponential decay runs forever without numeric
// overflow.
//
// All aggregates are insensitive to arrival order (out-of-order streams,
// §VI-B, need no special handling) and mergeable across distributed sites
// that share the same decay model and landmark.
//
// None of the types in this package are safe for concurrent use; wrap them
// in a mutex or shard per goroutine.
package agg

import (
	"fmt"

	"forwarddecay/decay"
)

// sameModel reports whether two forward decay models are compatible for
// merging: the same landmark and the same weight function (compared by its
// descriptive form, which encodes the function class and parameters).
func sameModel(a, b decay.Forward) bool {
	return a.Landmark == b.Landmark && a.Func.String() == b.Func.String()
}

// errModelMismatch constructs the error returned by Merge methods when the
// decay models differ.
func errModelMismatch(a, b decay.Forward) error {
	return fmt.Errorf("agg: cannot merge: decay models differ (%s @%g vs %s @%g)",
		a.Func, a.Landmark, b.Func, b.Landmark)
}
