package agg_test

import (
	"errors"
	"math"
	"testing"

	"forwarddecay/agg"
	"forwarddecay/decay"
)

// badInputs enumerates the non-finite floats every ingest boundary must
// reject.
var badInputs = []float64{math.NaN(), math.Inf(1), math.Inf(-1)}

// requireRejected asserts the aggregate recorded a typed *NonFiniteError
// after the bad observation and that its result is unchanged.
func requireRejected(t *testing.T, name string, err error, before, after float64) {
	t.Helper()
	var nfe *agg.NonFiniteError
	if !errors.As(err, &nfe) {
		t.Fatalf("%s: Err() = %v, want *NonFiniteError", name, err)
	}
	if before != after || math.IsNaN(after) {
		t.Fatalf("%s: state changed by rejected input: %v -> %v", name, before, after)
	}
}

// TestCounterRejectsNonFinite: Counter must skip non-finite timestamps and
// weights, keep its count bit-identical, and report the rejection.
func TestCounterRejectsNonFinite(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	for _, bad := range badInputs {
		c := agg.NewCounter(model)
		c.Observe(10)
		c.Observe(20)
		before := c.Value(30)
		c.Observe(bad) // bad timestamp
		requireRejected(t, "Counter/ts", c.Err(), before, c.Value(30))

		c2 := agg.NewCounter(model)
		c2.Observe(10)
		before = c2.Value(30)
		c2.ObserveN(20, bad) // bad weight
		requireRejected(t, "Counter/n", c2.Err(), before, c2.Value(30))
	}
}

// TestSumRejectsNonFinite: Sum must skip non-finite timestamps and values.
func TestSumRejectsNonFinite(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	for _, bad := range badInputs {
		s := agg.NewSum(model)
		s.Observe(10, 5)
		s.Observe(20, 7)
		before := s.Value(30)
		s.Observe(bad, 3)
		requireRejected(t, "Sum/ts", s.Err(), before, s.Value(30))

		s2 := agg.NewSum(model)
		s2.Observe(10, 5)
		before = s2.Value(30)
		s2.Observe(20, bad)
		requireRejected(t, "Sum/v", s2.Err(), before, s2.Value(30))
	}
}

// TestHeavyHittersRejectsNonFinite: a NaN timestamp at the landmark was the
// classic poisoning input (it pinned the running log-scale); all non-finite
// timestamps and weights must now be skipped.
func TestHeavyHittersRejectsNonFinite(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	for _, bad := range badInputs {
		h := agg.NewHeavyHittersK(model, 16)
		h.Observe(1, 10)
		h.Observe(1, 20)
		before, _ := h.Estimate(1, 30)
		h.Observe(1, bad)
		after, _ := h.Estimate(1, 30)
		requireRejected(t, "HeavyHitters/ts", h.Err(), before, after)

		h2 := agg.NewHeavyHittersK(model, 16)
		h2.Observe(1, 10)
		before, _ = h2.Estimate(1, 30)
		h2.ObserveN(1, 20, bad)
		after, _ = h2.Estimate(1, 30)
		requireRejected(t, "HeavyHitters/n", h2.Err(), before, after)
	}
}

// TestQuantilesRejectsNonFinite: Quantiles must skip non-finite timestamps.
func TestQuantilesRejectsNonFinite(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	for _, bad := range badInputs {
		q := agg.NewQuantiles(model, 1024, 0.05)
		for i := 1; i <= 100; i++ {
			q.Observe(uint64(i%50), float64(i))
		}
		before := float64(q.Quantile(0.5))
		q.Observe(7, bad)
		requireRejected(t, "Quantiles/ts", q.Err(), before, float64(q.Quantile(0.5)))
	}
}

// TestDistinctRejectsNonFinite: both the exact and the sketched distinct
// counters must skip non-finite timestamps.
func TestDistinctRejectsNonFinite(t *testing.T) {
	model := decay.NewForward(decay.NewExp(0.01), 0)
	for _, bad := range badInputs {
		d := agg.NewDistinctExact(model)
		d.Observe(1, 10)
		d.Observe(2, 20)
		before := d.Value(30)
		d.Observe(3, bad)
		requireRejected(t, "DistinctExact/ts", d.Err(), before, d.Value(30))

		ds := agg.NewDistinct(model, 64, 1.05, 1024)
		ds.Observe(1, 10)
		ds.Observe(2, 20)
		before = ds.Value(30)
		ds.Observe(3, bad)
		requireRejected(t, "Distinct/ts", ds.Err(), before, ds.Value(30))
	}
}

// TestMinMaxRejectsNonFinite: Max and Min must skip non-finite timestamps
// and values — a NaN value would otherwise defeat every later comparison.
func TestMinMaxRejectsNonFinite(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	for _, bad := range badInputs {
		m := agg.NewMax(model)
		m.Observe(10, 5)
		m.Observe(20, 9)
		before := m.Value(30)
		m.Observe(bad, 100)
		requireRejected(t, "Max/ts", m.Err(), before, m.Value(30))

		m2 := agg.NewMax(model)
		m2.Observe(10, 5)
		before = m2.Value(30)
		m2.Observe(20, bad)
		requireRejected(t, "Max/v", m2.Err(), before, m2.Value(30))

		n := agg.NewMin(model)
		n.Observe(10, 5)
		before = n.Value(30)
		n.Observe(bad, -100)
		requireRejected(t, "Min/ts", n.Err(), before, n.Value(30))
	}
}

// TestCheckFinite: the shared boundary predicate classifies inputs and
// names the offending field.
func TestCheckFinite(t *testing.T) {
	if err := agg.CheckFinite("X", 1, 2, 3); err != nil {
		t.Fatalf("finite inputs rejected: %v", err)
	}
	var nfe *agg.NonFiniteError
	if err := agg.CheckFinite("X", math.NaN(), 1); !errors.As(err, &nfe) || nfe.Field != "timestamp" {
		t.Fatalf("bad timestamp classification: %v", err)
	}
	if err := agg.CheckFinite("X", 1, math.Inf(1)); !errors.As(err, &nfe) || nfe.Field != "value" {
		t.Fatalf("bad value classification: %v", err)
	}
	if agg.IsFinite(math.NaN()) || agg.IsFinite(math.Inf(-1)) || !agg.IsFinite(0) {
		t.Fatal("IsFinite misclassifies")
	}
}
