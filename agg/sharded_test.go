package agg

import (
	"math"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// shardedStream yields a deterministic skewed stream: key i%32 (key 3
// boosted to dominate), timestamps climbing from the landmark.
func shardedStream(n int) []shardObs {
	rng := core.NewRNG(99)
	out := make([]shardObs, n)
	for i := range out {
		key := rng.Uint64() % 32
		if rng.Float64() < 0.4 {
			key = 3 // heavy key
		}
		out[i] = shardObs{
			key: key,
			ti:  100 + float64(i)*0.01,
			v:   1 + rng.Float64()*10,
		}
	}
	return out
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestShardedCounterSumMatchSerial: sharded Counter and Sum must agree with
// their serial counterparts up to floating-point summation order.
func TestShardedCounterSumMatchSerial(t *testing.T) {
	for _, model := range []decay.Forward{
		decay.NewForward(decay.NewPoly(2), 100),
		decay.NewForward(decay.NewExp(0.05), 100),
	} {
		for _, shards := range []int{1, 2, 4} {
			obs := shardedStream(20_000)
			qt := 100 + float64(len(obs))*0.01

			serialC := NewCounter(model)
			serialS := NewSum(model)
			sc := NewShardedCounter(model, ShardOptions{Shards: shards, BatchSize: 64})
			ss := NewShardedSum(model, ShardOptions{Shards: shards, BatchSize: 64})
			for _, o := range obs {
				serialC.Observe(o.ti)
				serialS.Observe(o.ti, o.v)
				sc.Observe(o.ti)
				ss.Observe(o.ti, o.v)
			}

			if e := relErr(sc.Value(qt), serialC.Value(qt)); e > 1e-9 {
				t.Errorf("%s/%d shards: counter rel err %g", model.Func, shards, e)
			}
			snap := ss.Snapshot()
			if e := relErr(snap.Value(qt), serialS.Value(qt)); e > 1e-9 {
				t.Errorf("%s/%d shards: sum rel err %g", model.Func, shards, e)
			}
			if e := relErr(snap.Mean(), serialS.Mean()); e > 1e-9 {
				t.Errorf("%s/%d shards: mean rel err %g", model.Func, shards, e)
			}
			if e := relErr(snap.Variance(), serialS.Variance()); e > 1e-6 {
				t.Errorf("%s/%d shards: variance rel err %g", model.Func, shards, e)
			}
			if snap.N() != serialS.N() {
				t.Errorf("%s/%d shards: N %d != %d", model.Func, shards, snap.N(), serialS.N())
			}
			sc.Close()
			ss.Close()
		}
	}
}

// TestShardedHeavyHittersMatchSerial: key routing keeps each key whole on
// one shard, so the dominant key and its estimate stay within the summary's
// error bound of the serial answer.
func TestShardedHeavyHittersMatchSerial(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 100)
	obs := shardedStream(30_000)
	qt := 100 + float64(len(obs))*0.01

	serial := NewHeavyHittersK(model, 64)
	sharded := NewShardedHeavyHittersK(model, 64, ShardOptions{Shards: 4, BatchSize: 128})
	defer sharded.Close()
	for _, o := range obs {
		serial.ObserveN(o.key, o.ti, o.v)
		sharded.ObserveN(o.key, o.ti, o.v)
	}

	wantTop := serial.Top(qt, 1)
	gotTop := sharded.Snapshot().Top(qt, 1)
	if len(wantTop) == 0 || len(gotTop) == 0 || wantTop[0].Key != gotTop[0].Key {
		t.Fatalf("top key mismatch: serial %v, sharded %v", wantTop, gotTop)
	}
	wantC, _ := serial.Estimate(3, qt)
	gotC, gotE := sharded.Snapshot().Estimate(3, qt)
	if math.Abs(gotC-wantC) > wantC*0.02+gotE {
		t.Errorf("heavy key estimate: serial %g, sharded %g (err bound %g)", wantC, gotC, gotE)
	}
	hh := sharded.Query(qt, 0.3)
	if len(hh) == 0 || hh[0].Key != 3 {
		t.Errorf("0.3-heavy hitters = %v, want key 3 first", hh)
	}
}

// TestShardedDistinctMatchSerial: the layered-KMV merge is a key-set union,
// so the sharded estimate tracks the serial sketch closely.
func TestShardedDistinctMatchSerial(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(1), 100)
	obs := shardedStream(20_000)
	qt := 100 + float64(len(obs))*0.01

	serial := NewDistinct(model, 1024, 1.05, 1024)
	sharded := NewShardedDistinct(model, 1024, 1.05, 1024, ShardOptions{Shards: 4})
	defer sharded.Close()
	exact := NewDistinctExact(model)
	for _, o := range obs {
		serial.Observe(o.key, o.ti)
		sharded.Observe(o.key, o.ti)
		exact.Observe(o.key, o.ti)
	}

	want := exact.Value(qt)
	if e := relErr(sharded.Value(qt), want); e > 0.05 {
		t.Errorf("sharded distinct rel err vs exact %g (sharded %g, exact %g, serial sketch %g)",
			e, sharded.Value(qt), want, serial.Value(qt))
	}
}

// TestShardedLifecycle: Close is idempotent, Observe after Close is a
// no-op, and a snapshot taken after Close still reflects everything
// observed before it.
func TestShardedLifecycle(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	c := NewShardedCounter(model, ShardOptions{Shards: 2, BatchSize: 8})
	for i := 0; i < 100; i++ {
		c.Observe(float64(i))
	}
	before := c.Value(100)
	c.Close()
	c.Close() // idempotent
	c.Observe(50)
	if got := c.Value(100); got != before {
		t.Errorf("observe after close changed value: %g -> %g", before, got)
	}
	if n := c.Snapshot().N(); n != 100 {
		t.Errorf("N after close = %d, want 100", n)
	}
}
