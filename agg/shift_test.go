package agg

import (
	"errors"
	"math"
	"testing"

	"forwarddecay/decay"
)

// Shift-invariance for the sketch-backed and witness aggregates: under
// exponential decay a landmark move is a pure log-domain translation, so
// every queried answer must be unchanged — exactly for the per-key and
// witness state, within float tolerance only where a query path itself
// exponentiates differently in the two frames.

func shiftTestModel() decay.Forward {
	return decay.NewForward(decay.NewExp(0.05), 0)
}

func TestMinMaxShiftInvariance(t *testing.T) {
	m := shiftTestModel()
	mx, mxRef := NewMax(m), NewMax(m)
	mn, mnRef := NewMin(m), NewMin(m)
	for i := 0; i < 500; i++ {
		ts, v := float64(i), float64((i*37)%229)
		mx.Observe(ts, v)
		mxRef.Observe(ts, v)
		mn.Observe(ts, v)
		mnRef.Observe(ts, v)
		if i == 250 {
			if err := mx.ShiftLandmark(200); err != nil {
				t.Fatal(err)
			}
			if err := mn.ShiftLandmark(200); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := mx.Value(500), mxRef.Value(500); got != want {
		t.Errorf("Max after shift %v, unshifted %v", got, want)
	}
	if got, want := mn.Value(500), mnRef.Value(500); got != want {
		t.Errorf("Min after shift %v, unshifted %v", got, want)
	}
}

func TestHeavyHittersShiftInvariance(t *testing.T) {
	m := shiftTestModel()
	h, ref := NewHeavyHittersK(m, 32), NewHeavyHittersK(m, 32)
	for i := 0; i < 2000; i++ {
		ts, key := float64(i)/10, uint64(i%11*i%11) // skewed keys
		h.Observe(key, ts)
		ref.Observe(key, ts)
		if i%400 == 399 {
			if err := h.ShiftLandmark(ts - 5); err != nil {
				t.Fatal(err)
			}
		}
	}
	now := 200.0
	got, want := h.Query(now, 0.05), ref.Query(now, 0.05)
	if len(got) != len(want) {
		t.Fatalf("shifted summary reports %d heavy hitters, unshifted %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key {
			t.Fatalf("item %d: key %d vs %d", i, got[i].Key, want[i].Key)
		}
		if math.Abs(got[i].Count-want[i].Count) > 1e-9*want[i].Count {
			t.Errorf("key %d: count %v vs %v", got[i].Key, got[i].Count, want[i].Count)
		}
	}
}

func TestQuantilesShiftInvariance(t *testing.T) {
	m := shiftTestModel()
	q, ref := NewQuantiles(m, 1024, 0.01), NewQuantiles(m, 1024, 0.01)
	for i := 0; i < 3000; i++ {
		ts, v := float64(i)/20, uint64((i*i)%1024)
		q.Observe(v, ts)
		ref.Observe(v, ts)
		if i%700 == 699 {
			if err := q.ShiftLandmark(ts - 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := q.Quantile(phi), ref.Quantile(phi); got != want {
			t.Errorf("quantile %v: shifted %d, unshifted %d", phi, got, want)
		}
	}
	now := 150.0
	if got, want := q.DecayedCount(now), ref.DecayedCount(now); math.Abs(got-want) > 1e-9*want {
		t.Errorf("decayed count %v vs %v", got, want)
	}
}

func TestDistinctShiftInvariance(t *testing.T) {
	m := shiftTestModel()
	de, deRef := NewDistinctExact(m), NewDistinctExact(m)
	da, daRef := NewDistinct(m, 64, 1.05, 256), NewDistinct(m, 64, 1.05, 256)
	for i := 0; i < 1500; i++ {
		ts, key := float64(i)/10, uint64(i%97)
		de.Observe(key, ts)
		deRef.Observe(key, ts)
		da.Observe(key, ts)
		daRef.Observe(key, ts)
		if i%500 == 499 {
			if err := de.ShiftLandmark(ts - 2); err != nil {
				t.Fatal(err)
			}
			if err := da.ShiftLandmark(ts - 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	now := 150.0
	if got, want := de.Value(now), deRef.Value(now); math.Abs(got-want) > 1e-9*want {
		t.Errorf("DistinctExact after shifts %v, unshifted %v", got, want)
	}
	// The dominance sketch shifts only a frame offset, so the estimate is
	// bit-identical, not merely close.
	if got, want := da.Value(now), daRef.Value(now); got != want {
		t.Errorf("Distinct after shifts %v, unshifted %v", got, want)
	}
}

// TestShiftRejectsNonShiftableTyped: every aggregate must refuse a landmark
// shift under polynomial decay (Lemma 1) with the matchable typed error.
func TestShiftRejectsNonShiftableTyped(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 0)
	shifters := map[string]interface{ ShiftLandmark(float64) error }{
		"Counter":       NewCounter(m),
		"Sum":           NewSum(m),
		"Max":           NewMax(m),
		"Min":           NewMin(m),
		"HeavyHitters":  NewHeavyHittersK(m, 8),
		"Quantiles":     NewQuantiles(m, 256, 0.05),
		"DistinctExact": NewDistinctExact(m),
		"Distinct":      NewDistinct(m, 8, 1.1, 64),
	}
	for name, s := range shifters {
		err := s.ShiftLandmark(10)
		var nse *decay.NotShiftableError
		if !errors.As(err, &nse) {
			t.Errorf("%s.ShiftLandmark under poly decay returned %v, want *decay.NotShiftableError", name, err)
		}
	}
}
