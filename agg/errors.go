package agg

import (
	"fmt"
	"math"
)

// NonFiniteError reports a NaN or ±Inf value or timestamp offered to an
// aggregate's Observe path. Folding such an input into decayed state would
// poison every later query (NaN propagates through the scaled sums and
// sketches irreversibly), so the aggregates reject the observation instead
// and record the first rejection.
type NonFiniteError struct {
	// Agg names the aggregate type, e.g. "Sum".
	Agg string
	// Field names the offending input: "value" or "timestamp".
	Field string
	// X is the offending input.
	X float64
}

func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("agg: %s: non-finite %s %v rejected", e.Agg, e.Field, e.X)
}

// IsFinite reports whether x is neither NaN nor ±Inf — the validity
// predicate applied to every value and timestamp at the ingest boundaries.
func IsFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// CheckFinite returns a *NonFiniteError for the first non-finite input, or
// nil. It is the shared boundary check used by gsql tuple posting and
// distrib observation routing; agg's own Observe paths apply it internally.
func CheckFinite(aggName string, ti float64, vals ...float64) error {
	if !IsFinite(ti) {
		return &NonFiniteError{Agg: aggName, Field: "timestamp", X: ti}
	}
	for _, v := range vals {
		if !IsFinite(v) {
			return &NonFiniteError{Agg: aggName, Field: "value", X: v}
		}
	}
	return nil
}

// inputGuard records the first rejected observation. It is embedded by each
// aggregate; the promoted Err method exposes the sticky error.
type inputGuard struct{ rejErr error }

// reject records (once) and reports that an input was rejected. It returns
// the typed error so call sites can both guard and surface it.
func (g *inputGuard) reject(aggName, field string, x float64) error {
	err := &NonFiniteError{Agg: aggName, Field: field, X: x}
	if g.rejErr == nil {
		g.rejErr = err
	}
	return err
}

// Err returns the first *NonFiniteError recorded by an Observe path, or
// nil if every observation so far was finite. Rejected observations are
// skipped — they never reach the decayed state — so a non-nil Err means
// the aggregate's result reflects only the finite prefix of its input.
func (g *inputGuard) Err() error { return g.rejErr }
