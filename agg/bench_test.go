package agg

import (
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// Baseline micro-benchmarks for the decayed aggregates' hot paths, so perf
// changes show up in `go test -bench . ./agg/`.

func benchModel() decay.Forward { return decay.NewForward(decay.NewPoly(2), 0) }

func BenchmarkCounterObserve(b *testing.B) {
	c := NewCounter(benchModel())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(1 + float64(i)*1e-6)
	}
	_ = c.Value(float64(b.N))
}

func BenchmarkCounterObserveExp(b *testing.B) {
	// Exponential decay exercises the periodic log-domain rescaling.
	c := NewCounter(decay.NewForward(decay.NewExp(0.1), 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(float64(i) * 1e-3)
	}
	_ = c.Value(float64(b.N) * 1e-3)
}

func BenchmarkSumObserve(b *testing.B) {
	s := NewSum(benchModel())
	rng := core.NewRNG(1)
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(1+float64(i)*1e-6, vals[i&1023])
	}
	_ = s.Value(float64(b.N))
}

func BenchmarkHeavyHittersObserve(b *testing.B) {
	h := NewHeavyHittersK(benchModel(), 256)
	rng := core.NewRNG(2)
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = rng.Uint64() % 10_000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(keys[i&4095], 1+float64(i)*1e-6)
	}
}

func BenchmarkShardedSumObserve(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "shards=1", 2: "shards=2", 4: "shards=4"}[shards], func(b *testing.B) {
			s := NewShardedSum(benchModel(), ShardOptions{Shards: shards})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Observe(1+float64(i)*1e-6, float64(i&1023))
			}
			s.s.sync()
			b.StopTimer()
			s.Close()
		})
	}
}
