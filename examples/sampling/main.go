// Sampling demonstrates Section V of the paper: drawing samples whose
// inclusion probabilities follow a forward decay function, using the three
// samplers (with replacement, weighted reservoir, priority), and using a
// priority sample to estimate decayed subset counts — compared against the
// prior-art baselines (plain reservoir, Aggarwal's biased reservoir).
//
// Run with: go run ./examples/sampling
package main

import (
	"fmt"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/netgen"
	"forwarddecay/sample"
)

func main() {
	const k = 500
	// Exponential decay with a 30-second half-life, landmark at 0. Because
	// forward and backward exponential decay coincide, this sampler solves
	// the classical "exponentially decayed sample" problem in O(k) space
	// for arbitrary timestamps (Corollary 1 of the paper).
	model := decay.NewForward(decay.NewExpHalfLife(30), 0)

	gen := netgen.New(netgen.DefaultConfig(20_000, 3))
	wrs := sample.NewForwardWRS[float64](model, k, 1)
	pri := sample.NewForwardPriority[uint64](model, k, 2)
	wr := sample.NewForwardWR[float64](model, k, 3)
	res := sample.NewReservoir[float64](k, 4)
	agb := sample.NewAggarwal[float64](k, 5)
	exact80 := agg.NewCounter(model)
	exactRest := agg.NewCounter(model)

	var now float64
	var rawCount float64
	for gen.Now() < 180 { // three minutes of traffic
		p := gen.Next()
		now = p.Time
		wrs.Observe(p.Time, p.Time) // sample the timestamps themselves
		pri.Observe(p.DestKey(), p.Time)
		wr.Observe(p.Time, p.Time)
		res.Add(p.Time)
		agb.Add(p.Time)
		if p.DstPort == 80 {
			exact80.Observe(p.Time)
		} else {
			exactRest.Observe(p.Time)
		}
		rawCount++
	}

	meanAge := func(ts []float64) float64 {
		var s float64
		for _, t := range ts {
			s += now - t
		}
		return s / float64(len(ts))
	}
	fmt.Printf("stream: %.0f packets over %.0f s; exp decay half-life 30 s\n\n", rawCount, now)
	fmt.Printf("mean age of sampled packets (s):\n")
	fmt.Printf("  uniform reservoir (no decay):    %6.1f  (≈ half the stream length)\n", meanAge(res.Sample()))
	fmt.Printf("  forward WRS (exp decay):         %6.1f  (recent items dominate)\n", meanAge(wrs.Sample()))
	fmt.Printf("  forward WR  (with replacement):  %6.1f\n", meanAge(wr.Sample()))
	fmt.Printf("  Aggarwal biased reservoir:       %6.2f\n", meanAge(agb.Sample()))
	fmt.Println("    (Aggarwal's decay rate is fixed at ~1/k per ARRIVAL — milliseconds at this")
	fmt.Println("     packet rate. Forward decay works in timestamps, so the half-life is chosen")
	fmt.Println("     freely — one of the limitations §V-C removes.)")
	fmt.Println()

	// Priority sampling gives unbiased decayed subset-sum estimates: here,
	// the decayed count of packets to each sampled destination.
	// Priority sampling answers ad-hoc subset queries after the fact, with
	// unbiased decayed estimates (§V-B): estimate the decayed count of
	// port-80 traffic from the sample and compare with the exact value.
	est := pri.EstimateDecayedCount(now)
	fmt.Printf("priority-sample estimate of the total decayed count: %.1f (exact %.1f)\n",
		est, exact80.Value(now)+exactRest.Value(now))
	var est80 float64
	for _, it := range pri.Sample(now) {
		if uint16(it.Item) == 80 {
			est80 += it.Weight
		}
	}
	fmt.Printf("ad-hoc subset query 'decayed count of port-80 packets':\n")
	fmt.Printf("  from the k=%d priority sample: %.1f\n", k, est80)
	fmt.Printf("  exact:                         %.1f\n", exact80.Value(now))

	// Distributed operation (§VI-B): two sites sample independently and
	// merge exactly.
	a := sample.NewForwardWRS[int](model, 10, 11)
	b := sample.NewForwardWRS[int](model, 10, 12)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			a.Observe(i, float64(i))
		} else {
			b.Observe(i, float64(i))
		}
	}
	a.Merge(b)
	fmt.Printf("\nmerged two-site WRS sample (k=10): %v\n", a.Sample())
}
