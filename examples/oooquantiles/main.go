// Oooquantiles demonstrates Section VI-B of the paper: forward-decay
// aggregates tolerate out-of-order arrivals with no special handling, and
// summaries built at distributed sites merge into the summary of the union.
// The demo tracks decayed quantiles of packet sizes over a badly reordered
// stream, split across three "monitors", and shows the merged digest agrees
// with a single-site, in-order run.
//
// Run with: go run ./examples/oooquantiles
package main

import (
	"fmt"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/netgen"
)

func main() {
	model := decay.NewForward(decay.NewPoly(2), 0)
	const u = 2048 // packet sizes fit in [0, 2048)

	// Reference: in-order, single site.
	inOrder := netgen.New(netgen.DefaultConfig(20_000, 9))
	ref := agg.NewQuantiles(model, u, 0.02)
	var now float64
	for inOrder.Now() < 60 {
		p := inOrder.Next()
		now = p.Time
		ref.Observe(uint64(p.Len), p.Time)
	}

	// The same traffic, delivered badly out of order (shuffle buffer of
	// 4096 packets) and split across three sites.
	cfg := netgen.DefaultConfig(20_000, 9)
	cfg.OutOfOrder = 4096
	ooo := netgen.New(cfg)
	sites := []*agg.Quantiles{
		agg.NewQuantiles(model, u, 0.02),
		agg.NewQuantiles(model, u, 0.02),
		agg.NewQuantiles(model, u, 0.02),
	}
	i := 0
	inversions := 0
	prev := 0.0
	for ooo.Now() < 60 {
		p := ooo.Next()
		if p.Time < prev {
			inversions++
		}
		prev = p.Time
		sites[i%3].Observe(uint64(p.Len), p.Time)
		i++
	}

	merged := sites[0]
	must(merged.Merge(sites[1]))
	must(merged.Merge(sites[2]))

	fmt.Printf("processed ~%d packets; out-of-order delivery had %d timestamp inversions\n\n", i, inversions)
	fmt.Println("decayed packet-size quantiles (recent minutes weighted quadratically):")
	fmt.Printf("%8s  %18s  %22s\n", "phi", "in-order 1 site", "out-of-order 3 sites")
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("%8.2f  %18d  %22d\n", phi, ref.Quantile(phi), merged.Quantile(phi))
	}
	fmt.Printf("\ndecayed counts at t=%.1f: in-order %.1f, merged %.1f\n",
		now, ref.DecayedCount(now), merged.DecayedCount(now))
	fmt.Println("\nno reordering logic exists anywhere in the library: static weights make order irrelevant (§VI-B)")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
