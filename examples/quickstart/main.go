// Quickstart: a 60-second tour of the forwarddecay public API — decay
// models, decayed aggregates, heavy hitters, quantiles and sampling.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/sample"
)

func main() {
	// A forward decay model: quadratic decay g(n) = n² with the landmark at
	// time 100 — the model of the paper's running example.
	fd := decay.NewForward(decay.NewPoly(2), 100)

	// The paper's Example 1 stream: (timestamp, value) pairs.
	stream := []struct{ ti, v float64 }{
		{105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4},
	}

	fmt.Println("Decayed weights at t=110 (Example 1):")
	for _, it := range stream {
		fmt.Printf("  item (%g, %g): weight %.2f\n", it.ti, it.v, fd.Weight(it.ti, 110))
	}

	// Decayed count, sum, average and variance in constant space
	// (Definition 5 / Theorem 1).
	s := agg.NewSum(fd)
	for _, it := range stream {
		s.Observe(it.ti, it.v)
	}
	fmt.Printf("\nC = %.2f, S = %.2f, A = %.2f (Example 2)\n",
		s.Count(110), s.Value(110), s.Mean())
	fmt.Printf("decayed std dev = %.3f\n", s.StdDev())

	// Decayed heavy hitters via weighted SpaceSaving (Theorem 2).
	hh := agg.NewHeavyHittersK(fd, 16)
	for _, it := range stream {
		hh.Observe(uint64(it.v), it.ti)
	}
	fmt.Println("\nφ=0.2 heavy hitters (Example 3):")
	for _, item := range hh.Query(110, 0.2) {
		fmt.Printf("  value %d: decayed count %.2f\n", item.Key, item.Count)
	}

	// Weighted reservoir sampling under forward decay (Theorem 6): recent
	// items are proportionally more likely to be drawn.
	wrs := sample.NewForwardWRS[float64](fd, 2, 42)
	for _, it := range stream {
		wrs.Observe(it.v, it.ti)
	}
	fmt.Printf("\nsize-2 weighted sample without replacement: %v\n", wrs.Sample())

	// Exponential decay works identically — and because forward and
	// backward exponential decay coincide (§III-A), this is also an
	// exponentially time-decayed counter with a 10-second half-life.
	exp := decay.NewForward(decay.NewExpHalfLife(10), 100)
	c := agg.NewCounter(exp)
	for _, it := range stream {
		c.Observe(it.ti)
	}
	fmt.Printf("\nexp half-life 10s: decayed count %.3f at t=110, %.3f at t=130\n",
		c.Value(110), c.Value(130))
}
