// Netmon is the paper's motivating workload end to end: monitor a
// simulated multi-gigabit link, maintaining per-destination decayed traffic
// volumes and the decayed heavy hitters, with recent packets weighted more
// under quadratic forward decay — then answer the same question in GSQL
// through the streaming engine, exactly as §IV-A's query does.
//
// Run with: go run ./examples/netmon
package main

import (
	"fmt"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/netgen"
	"forwarddecay/udaf"
)

func main() {
	const (
		rate    = 100_000 // packets per second
		seconds = 120
	)
	gen := netgen.New(netgen.DefaultConfig(rate, 7))

	// Library path: quadratic forward decay with the landmark at stream
	// start; one heavy-hitter summary (byte-weighted) plus a global decayed
	// byte counter.
	model := decay.NewForward(decay.NewPoly(2), 0)
	hh := agg.NewHeavyHittersK(model, 200)
	bytes := agg.NewSum(model)

	var now, rawBytes float64
	for gen.Now() < seconds {
		p := gen.Next()
		now = p.Time
		hh.ObserveN(p.DestKey(), p.Time, float64(p.Len))
		bytes.Observe(p.Time, float64(p.Len))
		rawBytes += float64(p.Len)
	}

	fmt.Printf("simulated %d packets over %.0f s (%.2f Gbit/s)\n",
		gen.N(), now, rawBytes*8/now/1e9)
	fmt.Printf("decayed total bytes: %.3g (recent traffic dominates)\n\n", bytes.Value(now))

	fmt.Println("top decayed-volume destinations (φ=2%):")
	for i, item := range hh.Query(now, 0.02) {
		ip := uint32(item.Key >> 16)
		port := uint16(item.Key)
		share := item.Count / bytes.Value(now) * 100
		fmt.Printf("  %2d. %s:%-5d  %6.2f%% of decayed bytes\n", i+1, netgen.FormatIP(ip), port, share)
		if i == 9 {
			break
		}
	}

	// Engine path: the same question as a GSQL query with the decayed sum
	// written in plain arithmetic — the paper's §IV-A query.
	engine := gsql.NewEngine()
	must(engine.RegisterStream(gsql.PacketSchema("TCP")))
	must(udaf.RegisterAll(engine, udaf.Config{Epsilon: 0.005, Phi: 0.02}))
	st, err := engine.Prepare(`
		select tb, dstIP, destPort,
		       sum(float(len)*(time % 60)*(time % 60))/3600
		from TCP
		group by time/60 as tb, dstIP, destPort
		having sum(float(len)*(time % 60)*(time % 60))/3600 > 100000`)
	must(err)

	fmt.Println("\nGSQL per-minute decayed byte volumes (first bucket, top rows):")
	gen2 := netgen.New(netgen.DefaultConfig(rate, 7))
	rows := 0
	run := st.Start(func(row gsql.Tuple) error {
		if rows < 8 {
			fmt.Printf("  tb=%s dst=%s:%s decayed-bytes=%.4g\n",
				row[0], netgen.FormatIP(uint32(row[1].AsInt())), row[2], row[3].AsFloat())
		}
		rows++
		return nil
	}, gsql.Options{})
	for gen2.Now() < 61 { // one closed minute
		must(run.Push(netgen.Tuple(gen2.Next())))
	}
	must(run.Close())
	fmt.Printf("  … %d groups passed the HAVING filter\n", rows)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
