// Latencymetrics shows the forward-decay machinery in its most widespread
// production role: an exponentially-decaying reservoir tracking service
// latency percentiles, the construction popular metrics libraries adopted
// from this line of work. A simulated service degrades sharply; the
// decaying reservoir's p99 reacts within a couple of half-lives, while a
// plain uniform reservoir stays anchored to stale history.
//
// Run with: go run ./examples/latencymetrics
package main

import (
	"fmt"
	"time"

	"forwarddecay/internal/core"
	"forwarddecay/metrics"
	"forwarddecay/sample"
)

func main() {
	clock := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }

	decaying := metrics.NewReservoir(1024, 30*time.Second, metrics.WithClock(now))
	uniform := sample.NewReservoir[float64](1024, 99)
	rng := core.NewRNG(2026)

	// Latency model: log-normal-ish around a base that jumps 10× at t=10min.
	lat := func(minute int) float64 {
		base := 12.0 // ms
		if minute >= 10 {
			base = 120
		}
		return base * (0.5 + rng.Float64()*1.5)
	}

	fmt.Println("minute  decaying p50   decaying p99   uniform p50")
	for minute := 0; minute < 14; minute++ {
		for i := 0; i < 2000; i++ { // ~33 requests/s
			v := lat(minute)
			decaying.Update(v)
			uniform.Add(v)
			clock = clock.Add(30 * time.Millisecond)
		}
		s := decaying.Snapshot()
		up50 := quantile(uniform.Sample(), 0.5)
		marker := ""
		if minute == 10 {
			marker = "   ← regression deployed"
		}
		fmt.Printf("%5d   %9.1f ms   %9.1f ms   %8.1f ms%s\n",
			minute, s.Median(), s.Quantile(0.99), up50, marker)
	}
	fmt.Println("\nthe decaying reservoir's percentiles converge to the new regime within")
	fmt.Println("a couple of 30 s half-lives; the uniform sample's median is still")
	fmt.Println("anchored to the ten minutes of healthy traffic it mostly holds")
}

// quantile computes a simple quantile of an unsorted sample copy.
func quantile(vals []float64, phi float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ { // insertion sort: sample is small
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(phi * float64(len(s)-1))
	return s[idx]
}
